//! mic-metrics driver: run instrumented workloads with the metrics
//! registry on, print the Prometheus snapshot, and (with `--check`)
//! validate the registry's cross-layer invariants.
//!
//! Usage: `metrics [--scale K] [--check] [--out PATH]`
//!
//! - `--scale K` — suite scale divisor (default 64; `K <= 1` means full).
//! - `--out PATH` — write the Prometheus text snapshot here (default:
//!   stdout only).
//! - `--check` — validate and exit nonzero naming every failed check.
//!
//! Two phases, each on a freshly reset registry:
//!
//! 1. **Sim agreement** — for each headline coloring config, run the
//!    engine with bottleneck telemetry and verify the scraped
//!    `mic_sim_stall_cycles_total{cause}` fractions reproduce the
//!    engine's own attribution to 1e-9, that the per-cause stall cycles
//!    sum to the loop-cycle counter (fractions sum to 1), and that the
//!    engine-seconds histogram count equals the runs counter.
//! 2. **Harness consistency** — drive the runtime schedulers, a
//!    resilient sweep, and the workload cache, then verify every chunk
//!    histogram's count equals its chunk counter, the sweep/cache
//!    counters tick as expected, and the snapshot passes its own
//!    self-check.

use mic_bench::cli::Cli;
use mic_eval::graph::stats::LocalityWindows;
use mic_eval::graph::suite::{PaperGraph, Scale};
use mic_eval::metrics;
use mic_eval::runtime::{
    cilk_for, parallel_for_chunks, tbb_parallel_for, Partitioner, Schedule, ThreadPool,
};
use mic_eval::sim::{simulate_region_telemetry, Machine, Policy, Region, StallCause, Work};
use mic_eval::sweep::{try_map_cfg, SweepCfg};
use mic_eval::workload_cache::{self, OrderTag};
use std::path::PathBuf;

/// One named validation outcome.
struct Checks {
    enabled: bool,
    failures: Vec<String>,
    passed: usize,
}

impl Checks {
    fn ok(&mut self, name: &str, pass: bool, detail: impl FnOnce() -> String) {
        if pass {
            self.passed += 1;
        } else {
            let d = detail();
            eprintln!("check FAILED: {name}: {d}");
            self.failures.push(name.to_string());
        }
    }
}

fn main() {
    let mut cli = Cli::parse("metrics", "metrics [--scale K] [--check] [--out PATH]");
    let scale = cli.scale(Scale::Fraction(64));
    let out: Option<PathBuf> = cli.out();
    let mut checks = Checks {
        enabled: cli.check(),
        failures: Vec::new(),
        passed: 0,
    };
    cli.done();

    let m = Machine::knf();
    let threads = *m.thread_grid().last().unwrap();
    let win = LocalityWindows::default();

    // Phase 1: sim metrics must agree with the engine's own telemetry.
    let configs: Vec<(&str, Policy)> = vec![
        ("omp-dyn/100", Policy::OmpDynamic { chunk: 100 }),
        ("cilk/100", Policy::Cilk { grain: 100 }),
        ("tbb-simple/40", Policy::TbbSimple { grain: 40 }),
    ];
    println!("phase 1: sim stall attribution vs metrics ({scale:?}, t={threads})");
    for (label, policy) in &configs {
        let w = workload_cache::coloring(PaperGraph::Hood, scale, OrderTag::Natural, win);
        let regions: Vec<Region> = w.regions(*policy);
        for (ri, region) in regions.iter().enumerate() {
            metrics::reset();
            metrics::set_enabled(true);
            let (_, b) = simulate_region_telemetry(&m, threads, region);
            let snap = metrics::snapshot();
            metrics::set_enabled(false);

            let total = snap.family_total("mic_sim_stall_cycles_total");
            let loop_cycles = snap
                .value("mic_sim_loop_cycles_total", &[])
                .unwrap_or(f64::NAN);
            let mut worst = 0.0f64;
            for (cause, (_, frac)) in StallCause::ALL.iter().zip(b.components()) {
                let v = snap
                    .value("mic_sim_stall_cycles_total", &[("cause", cause.name())])
                    .unwrap_or(0.0);
                let metric_frac = if total > 0.0 { v / total } else { 0.0 };
                worst = worst.max((metric_frac - frac).abs());
            }
            checks.ok(
                &format!("sim fractions {label} region {ri}"),
                worst <= 1e-9,
                || format!("worst |metric - telemetry| = {worst:e}"),
            );
            let frac_sum = if loop_cycles > 0.0 {
                total / loop_cycles
            } else {
                1.0
            };
            checks.ok(
                &format!("stall fractions sum to 1 ({label} region {ri})"),
                (frac_sum - 1.0).abs() <= 1e-9,
                || format!("sum(stall)/loop_cycles = {frac_sum}"),
            );
            let runs = snap.value("mic_sim_runs_total", &[]).unwrap_or(0.0);
            let engine_count = snap
                .hist("mic_sim_engine_seconds", &[])
                .map(|h| h.count as f64)
                .unwrap_or(-1.0);
            checks.ok(
                &format!("engine histogram count == runs ({label} region {ri})"),
                runs == engine_count && runs == 1.0,
                || format!("runs {runs}, histogram count {engine_count}"),
            );
            for problem in snap.self_check() {
                checks.ok("sim snapshot self-check", false, || problem.clone());
            }
        }
        println!("  {label}: ok");
    }

    // Phase 2: harness-wide counters on one fresh registry.
    println!("phase 2: runtime / sweep / cache consistency");
    metrics::reset();
    metrics::set_enabled(true);

    let pool = ThreadPool::new(4);
    for sched in [
        Schedule::Static { chunk: Some(64) },
        Schedule::Dynamic { chunk: 64 },
        Schedule::Guided { min_chunk: 16 },
    ] {
        parallel_for_chunks(&pool, 0..4000, sched, |r, _| {
            std::hint::black_box(r.len());
        });
    }
    cilk_for(&pool, 0..4000, 64, |r, _| {
        std::hint::black_box(r.len());
    });
    for part in [Partitioner::Auto, Partitioner::Affinity] {
        tbb_parallel_for(&pool, 0..4000, part, |r, _| {
            std::hint::black_box(r.len());
        });
    }

    let sweep_items: Vec<u64> = (0..8).collect();
    let cfg = SweepCfg {
        threads: 2,
        retries: 0,
        deadline_ms: None,
    };
    let report = try_map_cfg(&cfg, &sweep_items, |_, &x| x * 2);
    assert!(report.is_complete());

    // One cache store + hit + shape-mismatch miss in a scratch directory.
    let dir = std::env::temp_dir().join(format!("mic-metrics-bin-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let file = dir.join("wl1-metrics-selftest.bin");
    let arr: Vec<Work> = (0..16)
        .map(|i| Work {
            issue: i as f64,
            ..Default::default()
        })
        .collect();
    workload_cache::store_arrays(&file, &[1], &[&arr]);
    let hit = workload_cache::load_arrays(&file, 1, 1).is_some();
    let miss = workload_cache::load_arrays(&file, 5, 1).is_none();
    let _ = std::fs::remove_dir_all(&dir);

    // And one sim run so the snapshot spans all three layers.
    let w = workload_cache::coloring(PaperGraph::Hood, scale, OrderTag::Natural, win);
    let regions = w.regions(Policy::OmpDynamic { chunk: 100 });
    let (_, _) = simulate_region_telemetry(&m, threads, &regions[0]);

    let snap = metrics::snapshot();
    metrics::set_enabled(false);

    // Every chunk-latency histogram must agree with its chunk counter.
    let mut hist_pairs = 0usize;
    for e in &snap.entries {
        if e.name != "mic_runtime_chunks_total" {
            continue;
        }
        let labels: Vec<(&str, &str)> = e
            .labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        let counter = snap.value("mic_runtime_chunks_total", &labels).unwrap();
        let hist_count = snap
            .hist("mic_runtime_chunk_seconds", &labels)
            .map(|h| h.count as f64);
        hist_pairs += 1;
        checks.ok(
            &format!("chunk histogram == chunk counter {:?}", e.labels),
            hist_count == Some(counter),
            || format!("counter {counter}, histogram {hist_count:?}"),
        );
    }
    checks.ok("chunk families cover omp+cilk+tbb", hist_pairs >= 6, || {
        format!("only {hist_pairs} (runtime, sched) label sets present")
    });
    checks.ok(
        "sweep jobs counter",
        snap.value("mic_sweep_jobs_total", &[]) == Some(sweep_items.len() as f64),
        || {
            format!(
                "expected {}, got {:?}",
                sweep_items.len(),
                snap.value("mic_sweep_jobs_total", &[])
            )
        },
    );
    checks.ok(
        "cache hit recorded",
        hit && snap.value("mic_cache_hits_total", &[]) >= Some(1.0),
        || {
            format!(
                "hit={hit}, counter {:?}",
                snap.value("mic_cache_hits_total", &[])
            )
        },
    );
    checks.ok(
        "cache miss recorded",
        miss && snap.value("mic_cache_misses_total", &[]) >= Some(1.0),
        || {
            format!(
                "miss={miss}, counter {:?}",
                snap.value("mic_cache_misses_total", &[])
            )
        },
    );
    checks.ok(
        "engine histogram count == runs (phase 2)",
        snap.value("mic_sim_runs_total", &[])
            == snap
                .hist("mic_sim_engine_seconds", &[])
                .map(|h| h.count as f64),
        || "runs counter and engine-seconds histogram disagree".to_string(),
    );
    for problem in snap.self_check() {
        checks.ok("snapshot self-check", false, || problem.clone());
    }

    let prom = snap.to_prometheus();
    if let Some(path) = &out {
        std::fs::write(path, &prom).expect("write snapshot");
        println!("wrote {} ({} bytes)", path.display(), prom.len());
    } else {
        println!("\n{prom}");
    }

    if checks.enabled {
        if checks.failures.is_empty() {
            println!("check: all {} validations passed", checks.passed);
        } else {
            eprintln!(
                "check FAILED: {} of {} validation(s): {}",
                checks.failures.len(),
                checks.passed + checks.failures.len(),
                checks.failures.join("; ")
            );
            std::process::exit(1);
        }
    }
}
