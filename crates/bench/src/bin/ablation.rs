//! Ablation benches for the design choices the paper discusses: block
//! size, chunk size, locked vs relaxed queues, vertex ordering.
//!
//! Usage: `ablation [--scale K]`.

use mic_eval::experiments::ablation;
use mic_eval::graph::suite::Scale;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = match args.iter().position(|a| a == "--scale") {
        Some(i) => {
            let k: u32 = args[i + 1].parse().expect("--scale needs an integer");
            if k <= 1 {
                Scale::Full
            } else {
                Scale::Fraction(k)
            }
        }
        None => Scale::Full,
    };
    println!("{}", ablation::block_size_sweep(scale).to_ascii());
    println!("{}", ablation::chunk_size_sweep(scale).to_ascii());
    println!("{}", ablation::locked_vs_relaxed(scale).to_ascii());
    println!("{}", ablation::ordering_ablation(scale).to_ascii());
    println!("{}", ablation::placement_ablation(scale).to_ascii());
    println!("{}", ablation::fork_vs_persistent(scale).to_ascii());
}
