//! Ablation benches for the design choices the paper discusses: block
//! size, chunk size, locked vs relaxed queues, vertex ordering.
//!
//! Usage: `ablation [--scale K]`.

use mic_bench::cli::Cli;
use mic_eval::experiments::ablation;
use mic_eval::graph::suite::Scale;

fn main() {
    let mut cli = Cli::parse("ablation", "ablation [--scale K]");
    let scale = cli.scale(Scale::Full);
    cli.done();
    println!("{}", ablation::block_size_sweep(scale).to_ascii());
    println!("{}", ablation::chunk_size_sweep(scale).to_ascii());
    println!("{}", ablation::locked_vs_relaxed(scale).to_ascii());
    println!("{}", ablation::ordering_ablation(scale).to_ascii());
    println!("{}", ablation::placement_ablation(scale).to_ascii());
    println!("{}", ablation::fork_vs_persistent(scale).to_ascii());
}
