//! Regenerate every exhibit of the paper in one run.
//!
//! Usage: `all [--scale K] [--strict] [--write-baseline PATH] [--list]`
//! — the EXPERIMENTS.md record uses the default (full paper-size) scale.
//!
//! This bin owns no exhibit list of its own: it iterates the
//! [`mic_eval::exhibit`] registry (everything except the `extra` group),
//! so registering a new exhibit there is all it takes to appear here, in
//! `BENCH_sweep.json`, and under the baseline gate. `--list` prints the
//! registry table (the README's exhibit table, diffed in CI) and exits.
//!
//! The tables/figures go to stdout exactly as before; a per-exhibit wall
//! time footer goes to stderr, and a machine-readable copy is written to
//! `BENCH_sweep.json` in the working directory (disable with
//! `MIC_BENCH_JSON=0`, or point it elsewhere with `MIC_BENCH_JSON=path`).
//!
//! Observability riders (all off unless asked for):
//!
//! - `MIC_METRICS=1` — run with the metrics registry on; the snapshot is
//!   embedded in the JSON output. `MIC_METRICS=<path>` additionally
//!   writes the Prometheus text snapshot to `<path>`.
//! - `MIC_BASELINE=<path>` — compare this run's per-exhibit wall times
//!   against the committed baseline (tolerance `MIC_BASELINE_TOL`,
//!   default 15 %) and print a per-figure regression table. With
//!   `--strict`, any regression names the figure and exits nonzero.
//! - `--write-baseline PATH` — save this run's timings as a baseline
//!   file for future gates.

use mic_bench::cli::Cli;
use mic_eval::baseline::{self, Baseline, SCHEMA_VERSION};
use mic_eval::exhibit;
use mic_eval::graph::suite::Scale;
use mic_eval::json;
use mic_eval::sweep::RecordedFailure;
use std::path::Path;
use std::time::Instant;

struct Timings {
    exhibits: Vec<(String, f64)>,
}

impl Timings {
    /// Run one exhibit, print its stdout block, record its wall time.
    fn show(&mut self, name: &str, render: impl FnOnce() -> String) {
        let start = Instant::now();
        let text = render();
        self.exhibits
            .push((name.to_string(), start.elapsed().as_secs_f64()));
        println!("{text}");
    }
}

// Panic messages in failure records can contain quotes, backslashes, or
// newlines; escape them with the shared JSON helper.
use json::escape as json_escape;

fn write_json(
    path: &Path,
    scale: Scale,
    threads: usize,
    total_s: f64,
    t: &Timings,
    failures: &[RecordedFailure],
    metrics_json: Option<&str>,
) {
    let mut body = String::from("{\n");
    body.push_str(&format!("  \"schema_version\": {SCHEMA_VERSION},\n"));
    body.push_str(&format!(
        "  \"build\": \"{}\",\n",
        json_escape(&mic_eval::buildinfo::stamp())
    ));
    body.push_str(&format!("  \"scale\": \"{scale:?}\",\n"));
    body.push_str(&format!("  \"sweep_threads\": {threads},\n"));
    body.push_str(&format!("  \"total_seconds\": {total_s:.3},\n"));
    body.push_str("  \"exhibits\": [\n");
    for (i, (name, secs)) in t.exhibits.iter().enumerate() {
        let comma = if i + 1 < t.exhibits.len() { "," } else { "" };
        body.push_str(&format!(
            "    {{\"name\": \"{name}\", \"seconds\": {secs:.3}}}{comma}\n"
        ));
    }
    body.push_str("  ],\n");
    if let Some(m) = metrics_json {
        body.push_str("  \"metrics\": ");
        body.push_str(m.trim_end());
        body.push_str(",\n");
    }
    body.push_str("  \"failures\": [\n");
    for (i, r) in failures.iter().enumerate() {
        let comma = if i + 1 < failures.len() { "," } else { "" };
        body.push_str(&format!(
            "    {{\"context\": \"{}\", \"point\": {}, \"cause\": \"{}\", \"detail\": \"{}\", \"attempts\": {}}}{comma}\n",
            json_escape(&r.context),
            r.failure.point,
            r.failure.cause.kind(),
            json_escape(&r.failure.cause.to_string()),
            r.failure.attempts,
        ));
    }
    body.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(path, body) {
        eprintln!("(could not write {}: {e})", path.display());
    }
}

fn main() {
    let mut cli = Cli::parse(
        "all",
        "all [--scale K] [--strict] [--write-baseline PATH] [--list]",
    );
    let scale = cli.scale(Scale::Full);
    let strict = cli.strict();
    let write_baseline = cli.write_baseline();
    let list = cli.flag("--list");
    let config = cli.config();
    cli.done();

    if list {
        print!("{}", exhibit::registry().list_table());
        return;
    }

    mic_eval::metrics::init_from_env();
    let start = Instant::now();
    let mut t = Timings {
        exhibits: Vec::new(),
    };

    for e in exhibit::registry().in_all() {
        eprintln!("== {} ==", e.title);
        t.show(e.id, || (e.run)(scale));
    }

    let total_s = start.elapsed().as_secs_f64();
    let threads = mic_eval::sweep::default_threads();
    eprintln!("== Timing ({threads} sweep threads) ==");
    for (name, secs) in &t.exhibits {
        eprintln!("{name:<28} {secs:>8.3} s");
    }
    eprintln!("{:<28} {total_s:>8.3} s", "total");
    let failures = mic_eval::sweep::take_failures();
    if failures.is_empty() {
        eprintln!("== Failures: none ==");
    } else {
        eprintln!("== Failures: {} point(s) degraded ==", failures.len());
        for r in &failures {
            eprintln!("{:<28} {}", r.context, r.failure);
        }
    }
    // Metrics rider: snapshot once, embed in the JSON, optionally export
    // the Prometheus text form. With MIC_METRICS unset this whole block is
    // inert and the JSON payload is byte-identical to a metrics-free build.
    let metrics_json = if mic_eval::metrics::enabled() {
        let snap = mic_eval::metrics::snapshot();
        for problem in snap.self_check() {
            eprintln!("metrics self-check: {problem}");
        }
        if let Some(path) = mic_eval::metrics::snapshot_path() {
            match std::fs::write(&path, snap.to_prometheus()) {
                Ok(()) => eprintln!("(metrics snapshot written to {})", path.display()),
                Err(e) => eprintln!("(could not write {}: {e})", path.display()),
            }
        }
        Some(snap.to_json())
    } else {
        None
    };

    if let Some(path) = &config.bench_json {
        write_json(
            path,
            scale,
            threads,
            total_s,
            &t,
            &failures,
            metrics_json.as_deref(),
        );
        eprintln!("(timings written to {})", path.display());
    }

    let current = Baseline {
        scale: format!("{scale:?}"),
        total_seconds: total_s,
        exhibits: t.exhibits.clone(),
    };
    if let Some(path) = &write_baseline {
        match std::fs::write(path, current.to_json()) {
            Ok(()) => eprintln!("(baseline written to {path})"),
            Err(e) => {
                eprintln!("could not write baseline {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    // Baseline regression gate (MIC_BASELINE / MIC_BASELINE_TOL).
    if let Some(path) = baseline::baseline_path() {
        let tol = baseline::tol_from_env();
        match Baseline::load(&path) {
            Ok(reference) => {
                let report =
                    baseline::compare_known(&current, &reference, tol, &exhibit::known_ids());
                eprintln!(
                    "== Baseline gate ({} at {:.0}% tolerance) ==",
                    path.display(),
                    tol * 100.0
                );
                eprint!("{}", report.to_table());
                if !report.ok() {
                    let names = report.regressions().join(", ");
                    if strict {
                        eprintln!("baseline gate FAILED: regressed exhibit(s): {names}");
                        std::process::exit(1);
                    }
                    eprintln!("baseline gate: regressed exhibit(s): {names} (not --strict)");
                } else {
                    eprintln!("baseline gate: ok");
                }
            }
            Err(e) => {
                eprintln!("baseline gate: cannot load reference: {e}");
                if strict {
                    std::process::exit(1);
                }
            }
        }
    } else if strict {
        eprintln!("--strict requires MIC_BASELINE to point at a baseline file");
        std::process::exit(1);
    }
}
