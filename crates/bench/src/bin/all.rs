//! Regenerate every exhibit of the paper in one run.
//!
//! Usage: `all [--scale K]` — the EXPERIMENTS.md record uses the default
//! (full paper-size) scale.

use mic_eval::experiments::{ablation, fig1, fig2, fig3, fig4, table1};
use mic_eval::graph::suite::Scale;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = match args.iter().position(|a| a == "--scale") {
        Some(i) => {
            let k: u32 = args[i + 1].parse().expect("--scale needs an integer");
            if k <= 1 { Scale::Full } else { Scale::Fraction(k) }
        }
        None => Scale::Full,
    };

    eprintln!("== Table I ==");
    println!("{}", table1::render(&table1::table1(scale)));

    for p in [fig1::Panel::OpenMp, fig1::Panel::CilkPlus, fig1::Panel::Tbb] {
        eprintln!("== Figure 1 {p:?} ==");
        println!("{}", fig1::fig1(p, scale).to_ascii());
    }

    eprintln!("== Figure 2 ==");
    println!("{}", fig2::fig2(scale).to_ascii());

    for p in [fig3::Panel::OpenMp, fig3::Panel::CilkPlus, fig3::Panel::Tbb] {
        eprintln!("== Figure 3 {p:?} ==");
        println!("{}", fig3::fig3(p, scale).to_ascii());
    }

    for p in [fig4::Panel::Pwtk, fig4::Panel::Inline1, fig4::Panel::AllKnf, fig4::Panel::AllCpu] {
        eprintln!("== Figure 4 {p:?} ==");
        println!("{}", fig4::fig4(p, scale).to_ascii());
    }

    eprintln!("== Ablations ==");
    println!("{}", ablation::block_size_sweep(scale).to_ascii());
    println!("{}", ablation::chunk_size_sweep(scale).to_ascii());
    println!("{}", ablation::locked_vs_relaxed(scale).to_ascii());
    println!("{}", ablation::ordering_ablation(scale).to_ascii());
    println!("{}", ablation::placement_ablation(scale).to_ascii());
    println!("{}", ablation::fork_vs_persistent(scale).to_ascii());
}
