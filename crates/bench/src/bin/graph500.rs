//! Graph 500-flavored BFS run: RMAT graphs (the benchmark the paper cites
//! as *the* reference for parallel BFS), traversed natively by every
//! frontier variant with validation, plus projected KNF scalability.
//!
//! Usage: `graph500 [scale] [edge_factor]` (defaults 16, 16).

use mic_bench::cli::Cli;
use mic_eval::bfs::instrument::{instrument, SimVariant};
use mic_eval::bfs::{check_levels, parallel_bfs, BfsVariant};
use mic_eval::graph::generators::{rmat, RmatProbs};
use mic_eval::graph::stats::LocalityWindows;
use mic_eval::runtime::ThreadPool;
use mic_eval::sim::{bfs_model_speedup, simulate, Machine, Policy};
use std::time::Instant;

fn main() {
    let cli = Cli::parse("graph500", "graph500 [scale] [edge_factor]");
    let pos = cli.positionals();
    let scale: u32 = pos.first().and_then(|s| s.parse().ok()).unwrap_or(16);
    let edge_factor: usize = pos.get(1).and_then(|s| s.parse().ok()).unwrap_or(16);

    eprintln!("generating RMAT scale {scale}, edge factor {edge_factor}...");
    let t0 = Instant::now();
    let g = rmat(scale, edge_factor, RmatProbs::graph500(), 42);
    eprintln!(
        "  {} vertices, {} edges in {:.2?}",
        g.num_vertices(),
        g.num_edges(),
        t0.elapsed()
    );

    // Native traversals with Graph500-style validation, 4 sources.
    let pool = ThreadPool::new(4);
    let sources = [0u32, 1, 2, 3].map(|k| (g.num_vertices() as u32 / 4) * k + 5);
    println!(
        "{:<24} {:>12} {:>14}",
        "variant", "median ms", "MTEPS (native)"
    );
    for variant in BfsVariant::paper_set() {
        let mut times = Vec::new();
        let mut edges_touched = 0usize;
        for &s in &sources {
            let s = s.min(g.num_vertices() as u32 - 1);
            let t = Instant::now();
            let r = parallel_bfs(&pool, &g, s, variant);
            times.push(t.elapsed().as_secs_f64() * 1e3);
            check_levels(&g, s, &r.levels).expect("validation failed");
            edges_touched = r
                .levels
                .iter()
                .enumerate()
                .filter(|(_, &l)| l != mic_eval::bfs::UNREACHED)
                .map(|(v, _)| g.degree(v as u32))
                .sum();
        }
        times.sort_by(f64::total_cmp);
        let med = times[times.len() / 2];
        println!(
            "{:<24} {:>12.2} {:>14.1}",
            variant.name(),
            med,
            edges_touched as f64 / med / 1e3
        );
    }

    // Simulated KNF scalability of the block-relaxed variant on this RMAT
    // graph (scale-free level structure: short and very wide).
    let src = 5u32.min(g.num_vertices() as u32 - 1);
    let w = instrument(
        &g,
        src,
        LocalityWindows::default(),
        SimVariant::Block {
            block: 32,
            relaxed: true,
        },
    );
    let regions = w.regions(Policy::OmpDynamic { chunk: 32 });
    let m = Machine::knf();
    let base = simulate(&m, 1, &regions).cycles;
    println!(
        "\nsimulated KNF speedups (levels: {:?}...):",
        &w.widths[..w.widths.len().min(8)]
    );
    println!("{:>8} {:>10} {:>10}", "threads", "simulated", "model");
    for t in [31usize, 61, 121] {
        println!(
            "{t:>8} {:>10.1} {:>10.1}",
            base / simulate(&m, t, &regions).cycles,
            bfs_model_speedup(&w.widths, t)
        );
    }
}
