//! mic-trace driver: run the headline coloring configurations with full
//! tracing, print the per-point stall-attribution table for the whole
//! thread grid, and export a Chrome `trace_event` timeline.
//!
//! Usage: `trace [--scale K] [--out PATH] [--check]`
//!
//! - `--scale K` — suite scale divisor (default 8; `K <= 1` means full).
//! - `--out PATH` — write the Chrome trace JSON here. `MIC_TRACE=PATH`
//!   does the same (the flag wins); with neither, no file is written.
//! - `--check` — validate the run: the emitted JSON must parse, and every
//!   traced region's counter totals must match the engine's bottleneck
//!   telemetry. Exits nonzero on any failure (the CI smoke step).
//!
//! Open the output in `chrome://tracing` or <https://ui.perfetto.dev>.

use mic_bench::cli::Cli;
use mic_eval::graph::stats::LocalityWindows;
use mic_eval::graph::suite::{PaperGraph, Scale};
use mic_eval::native::run_coloring;
use mic_eval::runtime::{capture_native_trace, RuntimeModel, Schedule, ThreadPool};
use mic_eval::sim::{simulate_region_telemetry, Machine, Policy, Region, StallCause};
use mic_eval::trace::{
    chrome_trace_json, stall_sweep, trace_path, trace_simulation, validate_json, TracePart,
};
use mic_eval::workload_cache::{self, OrderTag};
use std::path::PathBuf;

fn main() {
    let mut cli = Cli::parse("trace", "trace [--scale K] [--out PATH] [--check]");
    let scale = cli.scale(Scale::Fraction(8));
    let out: Option<PathBuf> = cli.out().or_else(trace_path);
    let check = cli.check();
    cli.done();

    let m = Machine::knf();
    let win = LocalityWindows::default();
    let grid = m.thread_grid();
    let t_trace = *grid.last().unwrap();

    // The headline coloring configurations of Figures 1–2.
    let configs: Vec<(String, Vec<Region>)> = [
        (
            "hood natural omp-dyn/100",
            OrderTag::Natural,
            Policy::OmpDynamic { chunk: 100 },
        ),
        (
            "hood natural cilk/100",
            OrderTag::Natural,
            Policy::Cilk { grain: 100 },
        ),
        (
            "hood natural tbb-simple/40",
            OrderTag::Natural,
            Policy::TbbSimple { grain: 40 },
        ),
        (
            "hood shuffled omp-dyn/100",
            OrderTag::Random { seed: 5 },
            Policy::OmpDynamic { chunk: 100 },
        ),
    ]
    .into_iter()
    .map(|(label, order, policy)| {
        let w = workload_cache::coloring(PaperGraph::Hood, scale, order, win);
        (label.to_string(), w.regions(policy))
    })
    .collect();

    println!("stall attribution per sweep point (coloring, {scale:?} scale, KNF):\n");
    let table = stall_sweep(&m, &grid, &configs);
    print!("{}", table.to_ascii());

    // Full chunk-level traces at the top of the grid, one lane per config.
    let mut failures = 0usize;
    let mut failing_configs: Vec<String> = Vec::new();
    let mut parts: Vec<TracePart> = Vec::new();
    for (label, regions) in &configs {
        let (_, part) = trace_simulation(&format!("{label} t={t_trace}"), &m, t_trace, regions);
        if check {
            let mismatches = check_counters(&m, t_trace, label, regions, &part);
            if mismatches > 0 {
                failing_configs.push(label.clone());
            }
            failures += mismatches;
        }
        parts.push(part);
    }

    // One real run of the native coloring kernel on a small pool, so the
    // export also shows real chunk→worker assignment and steals.
    let g = workload_cache::graph(PaperGraph::Hood, scale, OrderTag::Natural);
    let pool = ThreadPool::new(4);
    let (timed, native) = capture_native_trace(|| {
        run_coloring(
            &pool,
            &g,
            RuntimeModel::OpenMp(Schedule::Dynamic { chunk: 100 }),
        )
    });
    println!(
        "\nnative coloring (4 workers): {} colors in {:?}, {} native events captured",
        timed.output.0,
        timed.elapsed,
        native.len()
    );

    let json = chrome_trace_json(&parts, &native);
    if let Some(path) = &out {
        mic_eval::trace::write_chrome_trace(path, &parts, &native).expect("write trace file");
        println!("wrote {} ({} bytes)", path.display(), json.len());
    }
    if check {
        match validate_json(&json) {
            Ok(()) => println!("check: emitted JSON parses"),
            Err(e) => {
                eprintln!("check FAILED: emitted JSON invalid: {e}");
                failures += 1;
            }
        }
        if let Some(path) = &out {
            let on_disk = std::fs::read_to_string(path).expect("read back trace file");
            if let Err(e) = validate_json(&on_disk) {
                eprintln!("check FAILED: file {} invalid: {e}", path.display());
                failures += 1;
            }
        }
    }
    // Degraded sweep points are reported, not fatal: under benign injected
    // faults (stalls) a `--check` run must still pass.
    let degraded = mic_eval::sweep::take_failures();
    if !degraded.is_empty() {
        eprintln!("\n{} sweep point(s) degraded:", degraded.len());
        for r in &degraded {
            eprintln!("  {:<24} {}", r.context, r.failure);
        }
    }
    if check {
        if failures > 0 {
            if !failing_configs.is_empty() {
                eprintln!(
                    "check FAILED: counter mismatches in config(s): {}",
                    failing_configs.join(", ")
                );
            }
            eprintln!("check FAILED: {failures} problem(s)");
            std::process::exit(1);
        }
        println!("check: counter totals match telemetry for all regions");
    }
}

/// Every traced region's counter totals, normalized, must reproduce the
/// engine's bottleneck fractions. Returns the number of mismatches.
fn check_counters(
    m: &Machine,
    threads: usize,
    label: &str,
    regions: &[Region],
    part: &TracePart,
) -> usize {
    let mut failures = 0;
    for (ri, (reg, r)) in part.regions.iter().zip(regions).enumerate() {
        let (_, b) = simulate_region_telemetry(m, threads, r);
        let totals = reg.counter_totals();
        let sum = totals.total();
        for (cause, (name, frac)) in StallCause::ALL.iter().zip(b.components()) {
            let counter_frac = if sum > 0.0 {
                totals.get(*cause) / sum
            } else {
                0.0
            };
            if (counter_frac - frac).abs() > 1e-6 {
                eprintln!(
                    "check FAILED: {label} region {ri} {name}: \
                     counters say {counter_frac}, telemetry says {frac}"
                );
                failures += 1;
            }
        }
    }
    failures
}
