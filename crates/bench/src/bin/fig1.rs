//! Regenerate Figure 1: coloring speedups on naturally ordered graphs.
//!
//! Usage: `fig1 [a|b|c] [--scale K]` (no panel = all three).

use mic_eval::experiments::fig1::{fig1, Panel};
use mic_eval::graph::suite::Scale;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = match args.iter().position(|a| a == "--scale") {
        Some(i) => {
            let k: u32 = args[i + 1].parse().expect("--scale needs an integer");
            if k <= 1 {
                Scale::Full
            } else {
                Scale::Fraction(k)
            }
        }
        None => Scale::Full,
    };
    let panels: Vec<Panel> = args
        .iter()
        .skip(1)
        .filter_map(|a| {
            a.chars()
                .next()
                .and_then(Panel::from_char)
                .filter(|_| a.len() == 1)
        })
        .collect();
    let panels = if panels.is_empty() {
        vec![Panel::OpenMp, Panel::CilkPlus, Panel::Tbb]
    } else {
        panels
    };
    for p in panels {
        let fig = fig1(p, scale);
        println!("{}", fig.to_ascii());
    }
}
