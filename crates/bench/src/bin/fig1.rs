//! Regenerate Figure 1: coloring speedups on naturally ordered graphs.
//!
//! Usage: `fig1 [a|b|c] [--scale K]` (no panel = all three).

use mic_bench::cli::{panels, Cli};
use mic_eval::experiments::fig1::{fig1, Panel};
use mic_eval::graph::suite::Scale;

fn main() {
    let mut cli = Cli::parse("fig1", "fig1 [a|b|c] [--scale K]");
    let scale = cli.scale(Scale::Full);
    let picked = panels(
        &cli.positionals(),
        Panel::from_char,
        &[Panel::OpenMp, Panel::CilkPlus, Panel::Tbb],
    );
    for p in picked {
        let fig = fig1(p, scale);
        println!("{}", fig.to_ascii());
    }
}
