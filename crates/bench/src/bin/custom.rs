//! Run the full kernel battery on a user-provided Matrix Market file —
//! e.g. the *real* UF Sparse Matrix Collection graphs the paper used.
//!
//! Usage: `custom <path.mtx> [--threads N]`.

use mic_bench::cli::Cli;
use mic_eval::bfs::instrument::SimVariant;
use mic_eval::bfs::{bfs, parallel_bfs, seq::table1_source, BfsVariant};
use mic_eval::coloring::{check_proper, iterative_coloring, seq::greedy_color};
use mic_eval::graph::io::read_matrix_market_path;
use mic_eval::graph::stats::{stats, LocalityWindows};
use mic_eval::runtime::{RuntimeModel, Schedule, ThreadPool};
use mic_eval::sim::{bfs_model_speedup, simulate, Machine, Policy};

fn main() {
    let mut cli = Cli::parse("custom", "custom <path.mtx> [--threads N]");
    let threads = cli.threads(4);
    let pos = cli.positionals();
    let Some(path) = pos.first() else {
        eprintln!("usage: custom <path.mtx> [--threads N]");
        std::process::exit(2);
    };

    eprintln!("reading {path}...");
    let g = read_matrix_market_path(path).unwrap_or_else(|e| {
        eprintln!("failed to read {path}: {e}");
        std::process::exit(1);
    });
    let st = stats(&g);
    println!(
        "graph: |V| = {}, |E| = {}, Δ = {}, components = {}, locality = {:?}",
        st.num_vertices, st.num_edges, st.max_degree, st.components, st.locality
    );

    let pool = ThreadPool::new(threads);

    // Table-I style properties.
    let colors = greedy_color(&g);
    let src = table1_source(&g);
    let levels = bfs(&g, src);
    println!(
        "#Color (seq greedy) = {}, #Level (BFS from |V|/2) = {}",
        colors.num_colors, levels.num_levels
    );

    // Parallel coloring.
    let r = iterative_coloring(&pool, &g, RuntimeModel::OpenMp(Schedule::dynamic100()));
    check_proper(&g, &r.colors).expect("parallel coloring invalid");
    println!(
        "parallel coloring: {} colors in {} rounds",
        r.num_colors, r.rounds
    );

    // Parallel BFS (block-relaxed), validated.
    let pr = parallel_bfs(
        &pool,
        &g,
        src,
        BfsVariant::OmpBlock {
            sched: Schedule::Dynamic { chunk: 32 },
            block: 32,
            relaxed: true,
        },
    );
    assert_eq!(
        pr.levels, levels.levels,
        "parallel BFS must match sequential"
    );
    println!("parallel BFS matches sequential ({} levels)", pr.num_levels);

    // Simulated KNF scalability.
    let w = mic_eval::bfs::instrument::instrument(
        &g,
        src,
        LocalityWindows::default(),
        SimVariant::Block {
            block: 32,
            relaxed: true,
        },
    );
    let regions = w.regions(Policy::OmpDynamic { chunk: 32 });
    let m = Machine::knf();
    let base = simulate(&m, 1, &regions).cycles;
    println!("\nsimulated KNF BFS speedups:");
    println!("{:>8} {:>10} {:>10}", "threads", "simulated", "model");
    for t in [31usize, 61, 121] {
        println!(
            "{t:>8} {:>10.1} {:>10.1}",
            base / simulate(&m, t, &regions).cycles,
            bfs_model_speedup(&w.widths, t)
        );
    }
}
