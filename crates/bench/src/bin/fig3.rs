//! Regenerate Figure 3: irregular-computation speedups at iter 1/3/5/10.
//!
//! Usage: `fig3 [a|b|c] [--scale K]` (no panel = all three).

use mic_bench::cli::{panels, Cli};
use mic_eval::experiments::fig3::{fig3, Panel};
use mic_eval::graph::suite::Scale;

fn main() {
    let mut cli = Cli::parse("fig3", "fig3 [a|b|c] [--scale K]");
    let scale = cli.scale(Scale::Full);
    let picked = panels(
        &cli.positionals(),
        Panel::from_char,
        &[Panel::OpenMp, Panel::CilkPlus, Panel::Tbb],
    );
    for p in picked {
        println!("{}", fig3(p, scale).to_ascii());
    }
}
