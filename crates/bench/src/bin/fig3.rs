//! Regenerate Figure 3: irregular-computation speedups at iter 1/3/5/10.
//!
//! Usage: `fig3 [a|b|c] [--scale K]` (no panel = all three).

use mic_eval::experiments::fig3::{fig3, Panel};
use mic_eval::graph::suite::Scale;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = match args.iter().position(|a| a == "--scale") {
        Some(i) => {
            let k: u32 = args[i + 1].parse().expect("--scale needs an integer");
            if k <= 1 {
                Scale::Full
            } else {
                Scale::Fraction(k)
            }
        }
        None => Scale::Full,
    };
    let panels: Vec<Panel> = args
        .iter()
        .skip(1)
        .filter_map(|a| {
            a.chars()
                .next()
                .and_then(Panel::from_char)
                .filter(|_| a.len() == 1)
        })
        .collect();
    let panels = if panels.is_empty() {
        vec![Panel::OpenMp, Panel::CilkPlus, Panel::Tbb]
    } else {
        panels
    };
    for p in panels {
        println!("{}", fig3(p, scale).to_ascii());
    }
}
