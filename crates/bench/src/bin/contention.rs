//! Contention microbenchmark for the lock-free hot-path structures:
//! throughput of the MPMC injector, the Chase–Lev deque, and the serve
//! admission path at 1..N threads, each against a faithful locked
//! baseline (the `Mutex<VecDeque>` designs they replaced).
//!
//! Usage: `contention [--threads N] [--ops N] [--check] [--out PATH]`
//!
//! - `--threads N` — largest thread count in the sweep (default 8; the
//!   sweep is 1, 2, 4, … up to N).
//! - `--ops N` — items moved through each structure per measurement
//!   (default 100000).
//! - `--out PATH` — where to write the JSON exhibit (default
//!   `BENCH_contention.json`).
//! - `--check` — validate conservation invariants (items in == items
//!   out on every run, retry counters sane) and exit nonzero on failure.
//!
//! Thread counts here are *total* participants (producers + consumers /
//! owner + thieves), so `--threads 8` exercises the structures the way
//! an 8-worker pool or an 8-client serve storm would. Every run counts
//! what it moved; the conservation check makes the benchmark double as a
//! stress test, which is why CI runs `contention --check` as a smoke
//! job.

use mic_bench::cli::Cli;
use mic_eval::runtime::{BoundedQueue, EventCount, Injector, Steal, WsDeque};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Version stamp for `BENCH_contention.json`.
const SCHEMA_VERSION: u64 = 1;

/// Admission bound for the admission-path exhibits (the serve default).
const QUEUE_CAP: usize = 64;

/// One measured configuration.
struct Sample {
    structure: &'static str,
    threads: usize,
    lockfree_ops_per_s: f64,
    locked_ops_per_s: f64,
    /// Items that crossed the lock-free structure (== ops when the
    /// conservation invariant holds).
    moved: u64,
    /// CAS retries the lock-free run accumulated (contention telemetry).
    retries: u64,
}

impl Sample {
    fn speedup(&self) -> f64 {
        if self.locked_ops_per_s > 0.0 {
            self.lockfree_ops_per_s / self.locked_ops_per_s
        } else {
            f64::NAN
        }
    }
}

/// items-moved + retry telemetry returned by each lock-free run.
struct RunOut {
    secs: f64,
    moved: u64,
    retries: u64,
}

/// Trials per measurement; throughput takes the fastest (scheduler noise
/// on small hosts only ever slows a run down, never speeds it up).
const TRIALS: usize = 3;

/// Best-of-[`TRIALS`] wrapper. Throughput is the fastest trial, but a
/// conservation violation in *any* trial is preserved in `moved` (and the
/// largest retry count in `retries`) so `--check` still sees it.
fn best_of<F: Fn() -> RunOut>(ops: u64, f: F) -> RunOut {
    let mut out = RunOut {
        secs: f64::INFINITY,
        moved: ops,
        retries: 0,
    };
    for _ in 0..TRIALS {
        let r = f();
        out.secs = out.secs.min(r.secs);
        if r.moved != ops {
            out.moved = r.moved;
        }
        out.retries = out.retries.max(r.retries);
    }
    out
}

// ---------------------------------------------------------------- injector

/// N threads, each publishing then stealing its share of `ops` items
/// through one shared injector — the engines' per-published-item traffic,
/// with every participant making progress (as in a real region: workers
/// that fail to steal have local work; nobody pure-spins).
fn run_injector(threads: usize, ops: u64) -> RunOut {
    let inj: Injector<u64> = Injector::new();
    let moved = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let inj = &inj;
            let moved = &moved;
            let share = ops / threads as u64 + u64::from(t == 0) * (ops % threads as u64);
            s.spawn(move || {
                for i in 0..share {
                    inj.push(i);
                    loop {
                        match inj.steal() {
                            Steal::Success(_) => {
                                moved.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            // Someone else consumed our item: that is
                            // still global progress; stop waiting.
                            Steal::Empty => break,
                            Steal::Retry => std::thread::yield_now(),
                        }
                    }
                }
            });
        }
    });
    // Anything left (picked up by nobody because a producer saw Empty
    // after a sibling consumed its item) drains here.
    loop {
        match inj.steal() {
            Steal::Success(_) => {
                moved.fetch_add(1, Ordering::Relaxed);
            }
            Steal::Empty => break,
            Steal::Retry => {}
        }
    }
    RunOut {
        secs: start.elapsed().as_secs_f64(),
        moved: moved.load(Ordering::Relaxed),
        retries: inj.retries(),
    }
}

/// The locked design the injector replaced, verbatim: the
/// crossbeam-deque shim's `Mutex<VecDeque>` (blocking `lock` + poison
/// branch on push, `try_lock` surfacing `Retry` on steal) driven the way
/// the old engines drove it — every publish was preceded by an
/// occupancy probe under the lock (`if injector.is_empty() { publish }
/// else { keep local }`, and the probe cost its lock cycle on either
/// branch). The lock-free design needs no probe: spill decisions moved
/// to the owner's deque.
fn run_injector_locked(threads: usize, ops: u64) -> RunOut {
    let q: Mutex<VecDeque<u64>> = Mutex::new(VecDeque::new());
    let moved = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let q = &q;
            let moved = &moved;
            let share = ops / threads as u64 + u64::from(t == 0) * (ops % threads as u64);
            s.spawn(move || {
                for i in 0..share {
                    let hungry = q.lock().unwrap_or_else(|e| e.into_inner()).is_empty();
                    std::hint::black_box(hungry);
                    q.lock().unwrap_or_else(|e| e.into_inner()).push_back(i);
                    loop {
                        match q.try_lock() {
                            Ok(mut g) => {
                                // Success and Empty both end the attempt,
                                // as in the lock-free run.
                                if g.pop_front().is_some() {
                                    moved.fetch_add(1, Ordering::Relaxed);
                                }
                                break;
                            }
                            Err(std::sync::TryLockError::WouldBlock) => {
                                std::thread::yield_now(); // Steal::Retry
                            }
                            Err(std::sync::TryLockError::Poisoned(e)) => {
                                if e.into_inner().pop_front().is_some() {
                                    moved.fetch_add(1, Ordering::Relaxed);
                                }
                                break;
                            }
                        }
                    }
                }
            });
        }
    });
    while q
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .pop_front()
        .is_some()
    {
        moved.fetch_add(1, Ordering::Relaxed);
    }
    RunOut {
        secs: start.elapsed().as_secs_f64(),
        moved: moved.load(Ordering::Relaxed),
        retries: 0,
    }
}

// ------------------------------------------------------------------ deque

/// One owner pushing/popping `ops` items, `threads - 1` thieves stealing.
fn run_deque(threads: usize, ops: u64) -> RunOut {
    let d: WsDeque<u64> = WsDeque::new(256);
    let moved = AtomicU64::new(0);
    let done = AtomicBool::new(false);
    let start = Instant::now();
    std::thread::scope(|s| {
        for _ in 1..threads {
            let d = &d;
            let moved = &moved;
            let done = &done;
            s.spawn(move || loop {
                match d.steal() {
                    Steal::Success(_) => {
                        moved.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {
                        if done.load(Ordering::Acquire) && d.is_empty() {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            });
        }
        let mut next = 0u64;
        while next < ops {
            // SAFETY: this thread is the deque's sole owner.
            match unsafe { d.push(next) } {
                Ok(()) => next += 1,
                Err(_) => {
                    if unsafe { d.pop() }.is_some() {
                        moved.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        while unsafe { d.pop() }.is_some() {
            moved.fetch_add(1, Ordering::Relaxed);
        }
        done.store(true, Ordering::Release);
    });
    RunOut {
        secs: start.elapsed().as_secs_f64(),
        moved: moved.load(Ordering::Relaxed),
        retries: d.retries(),
    }
}

/// Locked stand-in for the deque: owner and thieves share one mutexed
/// deque, owner at the back, thieves at the front.
fn run_deque_locked(threads: usize, ops: u64) -> RunOut {
    let d: Mutex<VecDeque<u64>> = Mutex::new(VecDeque::new());
    let moved = AtomicU64::new(0);
    let done = AtomicBool::new(false);
    let start = Instant::now();
    std::thread::scope(|s| {
        for _ in 1..threads {
            let d = &d;
            let moved = &moved;
            let done = &done;
            s.spawn(move || loop {
                let got = d.lock().unwrap().pop_front();
                match got {
                    Some(_) => {
                        moved.fetch_add(1, Ordering::Relaxed);
                    }
                    None => {
                        if done.load(Ordering::Acquire) && d.lock().unwrap().is_empty() {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            });
        }
        let mut next = 0u64;
        while next < ops {
            let mut q = d.lock().unwrap();
            if q.len() < 256 {
                q.push_back(next);
                next += 1;
            } else {
                let got = q.pop_back();
                drop(q);
                if got.is_some() {
                    moved.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        loop {
            let got = d.lock().unwrap().pop_back();
            if got.is_some() {
                moved.fetch_add(1, Ordering::Relaxed);
            } else {
                break;
            }
        }
        done.store(true, Ordering::Release);
    });
    RunOut {
        secs: start.elapsed().as_secs_f64(),
        moved: moved.load(Ordering::Relaxed),
        retries: 0,
    }
}

// -------------------------------------------------------------- admission

/// The serve admission path: `threads - 1` producers claim a depth ticket
/// against `QUEUE_CAP` (over → shed, retry after yielding) and push onto
/// the bounded ring; one consumer drains in batches, parking on an
/// event-count when idle — exactly the dispatcher/executor split.
fn run_admission(threads: usize, ops: u64) -> RunOut {
    let q: BoundedQueue<u64> = BoundedQueue::new(QUEUE_CAP);
    let depth = AtomicUsize::new(0);
    let wake = EventCount::new();
    let consumed = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let producers = (threads - 1).max(1) as u64;
    let start = Instant::now();
    std::thread::scope(|s| {
        let consumer_q = &q;
        let consumer_depth = &depth;
        let consumer_wake = &wake;
        let consumer_consumed = &consumed;
        let consumer_stop = &stop;
        s.spawn(move || loop {
            consumer_wake
                .park_until(|| consumer_stop.load(Ordering::Acquire) || !consumer_q.is_empty());
            while consumer_q.pop().is_some() {
                consumer_depth.fetch_sub(1, Ordering::AcqRel);
                consumer_consumed.fetch_add(1, Ordering::Relaxed);
            }
            if consumer_stop.load(Ordering::Acquire) && consumer_q.is_empty() {
                break;
            }
        });
        std::thread::scope(|inner| {
            for t in 0..producers {
                let q = &q;
                let depth = &depth;
                let wake = &wake;
                let share = ops / producers + u64::from(t == 0) * (ops % producers);
                inner.spawn(move || {
                    for i in 0..share {
                        loop {
                            let ticket = depth.fetch_add(1, Ordering::AcqRel);
                            if ticket >= QUEUE_CAP {
                                depth.fetch_sub(1, Ordering::AcqRel);
                                std::thread::yield_now(); // shed: back off
                                continue;
                            }
                            q.push(i).expect("ring sized above ticket bound");
                            wake.notify();
                            break;
                        }
                    }
                });
            }
        });
        stop.store(true, Ordering::Release);
        wake.notify();
    });
    RunOut {
        secs: start.elapsed().as_secs_f64(),
        moved: consumed.load(Ordering::Relaxed),
        retries: q.retries(),
    }
}

/// The locked design the admission path replaced: one mutex guarding the
/// queue with the cap checked under it, a condvar waking the consumer —
/// the old dispatcher verbatim.
fn run_admission_locked(threads: usize, ops: u64) -> RunOut {
    let q: Mutex<VecDeque<u64>> = Mutex::new(VecDeque::new());
    let wake = Condvar::new();
    let consumed = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let producers = (threads - 1).max(1) as u64;
    let start = Instant::now();
    std::thread::scope(|s| {
        let cq = &q;
        let cwake = &wake;
        let cconsumed = &consumed;
        let cstop = &stop;
        s.spawn(move || loop {
            let mut guard = cq.lock().unwrap();
            while guard.is_empty() && !cstop.load(Ordering::Acquire) {
                guard = cwake.wait(guard).unwrap();
            }
            while guard.pop_front().is_some() {
                cconsumed.fetch_add(1, Ordering::Relaxed);
            }
            let empty = guard.is_empty();
            drop(guard);
            if cstop.load(Ordering::Acquire) && empty {
                break;
            }
        });
        std::thread::scope(|inner| {
            for t in 0..producers {
                let q = &q;
                let wake = &wake;
                let share = ops / producers + u64::from(t == 0) * (ops % producers);
                inner.spawn(move || {
                    for i in 0..share {
                        loop {
                            let mut guard = q.lock().unwrap();
                            if guard.len() >= QUEUE_CAP {
                                drop(guard);
                                std::thread::yield_now(); // shed: back off
                                continue;
                            }
                            guard.push_back(i);
                            drop(guard);
                            wake.notify_one();
                            break;
                        }
                    }
                });
            }
        });
        stop.store(true, Ordering::Release);
        wake.notify_all();
    });
    RunOut {
        secs: start.elapsed().as_secs_f64(),
        moved: consumed.load(Ordering::Relaxed),
        retries: 0,
    }
}

// ------------------------------------------------------------------- main

fn render_json(samples: &[Sample], ops: u64) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"schema_version\": {SCHEMA_VERSION},\n"));
    out.push_str(&format!(
        "  \"build\": \"{}\",\n",
        mic_eval::buildinfo::stamp()
    ));
    out.push_str("  \"bench\": \"contention\",\n");
    out.push_str(&format!("  \"ops\": {ops},\n"));
    out.push_str("  \"exhibits\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let comma = if i + 1 < samples.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"structure\": \"{}\", \"threads\": {}, \"lockfree_ops_per_s\": {:.0}, \
             \"locked_ops_per_s\": {:.0}, \"speedup\": {:.3}, \"moved\": {}, \"retries\": {}}}{comma}\n",
            s.structure,
            s.threads,
            s.lockfree_ops_per_s,
            s.locked_ops_per_s,
            s.speedup(),
            s.moved,
            s.retries,
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let mut cli = Cli::parse(
        "contention",
        "contention [--threads N] [--ops N] [--check] [--out PATH]",
    );
    let max_threads = cli.threads(8);
    let ops: u64 = cli
        .opt_parse("--ops", "a positive integer")
        .unwrap_or(100_000);
    let check = cli.check();
    let out = cli
        .out()
        .unwrap_or_else(|| std::path::PathBuf::from("BENCH_contention.json"));
    cli.done();

    let mut thread_counts = Vec::new();
    let mut t = 1;
    while t <= max_threads {
        thread_counts.push(t);
        t *= 2;
    }
    if *thread_counts.last().unwrap() != max_threads {
        thread_counts.push(max_threads);
    }

    let mut samples = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    println!("structure     threads   lock-free ops/s      locked ops/s   speedup   retries");
    for &threads in &thread_counts {
        let configs: [(&'static str, RunOut, RunOut); 3] = [
            (
                "injector",
                best_of(ops, || run_injector(threads, ops)),
                best_of(ops, || run_injector_locked(threads, ops)),
            ),
            (
                "deque",
                best_of(ops, || run_deque(threads, ops)),
                best_of(ops, || run_deque_locked(threads, ops)),
            ),
            (
                "admission",
                best_of(ops, || run_admission(threads, ops)),
                best_of(ops, || run_admission_locked(threads, ops)),
            ),
        ];
        for (structure, free, locked) in configs {
            // Conservation: every item pushed must come out, on both sides.
            if free.moved != ops {
                failures.push(format!(
                    "{structure}/{threads}t lock-free moved {} of {ops}",
                    free.moved
                ));
            }
            if locked.moved != ops {
                failures.push(format!(
                    "{structure}/{threads}t locked moved {} of {ops}",
                    locked.moved
                ));
            }
            // Retry counters must stay sane (a runaway would approach the
            // counter range long before it wrapped).
            if free.retries > ops.saturating_mul(10_000) {
                failures.push(format!(
                    "{structure}/{threads}t retry counter implausible: {}",
                    free.retries
                ));
            }
            let sample = Sample {
                structure,
                threads,
                lockfree_ops_per_s: ops as f64 / free.secs,
                locked_ops_per_s: ops as f64 / locked.secs,
                moved: free.moved,
                retries: free.retries,
            };
            println!(
                "{structure:<12} {threads:>8} {:>17.0} {:>17.0} {:>8.2}x {:>9}",
                sample.lockfree_ops_per_s,
                sample.locked_ops_per_s,
                sample.speedup(),
                sample.retries,
            );
            samples.push(sample);
        }
    }

    let json = render_json(&samples, ops);
    match std::fs::write(&out, &json) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => {
            eprintln!("could not write {}: {e}", out.display());
            std::process::exit(1);
        }
    }

    if check {
        if failures.is_empty() {
            println!(
                "check: all conservation invariants held across {} run(s)",
                samples.len() * 2 * TRIALS
            );
        } else {
            for f in &failures {
                eprintln!("check FAILED: {f}");
            }
            std::process::exit(1);
        }
    }
}
