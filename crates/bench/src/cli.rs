//! The one argument parser behind every bench binary.
//!
//! Each bin used to hand-roll the same `--scale` loop with slightly
//! different `expect` messages; this module replaces the copies with one
//! set of semantics:
//!
//! - `--help` / `-h` print the bin's usage line and exit 0;
//! - `--scale K` parses a positive integer divisor (`K <= 1` = full
//!   paper size) — [`Cli::scale`] takes the bin's default;
//! - `--check`, `--strict` are shared boolean flags; `--out PATH`,
//!   `--write-baseline PATH`, `--threads N` are shared valued flags;
//! - a flag missing its value, or an unparsable value, prints the usage
//!   line and exits 2 (instead of a panic backtrace);
//! - unconsumed `--flags` are rejected by [`Cli::positionals`] /
//!   [`Cli::done`], so typos fail loudly.
//!
//! [`Cli::parse`] also installs the environment
//! [`SuiteConfig`](mic_eval::config::SuiteConfig), making the typed
//! config the single knob path for every bin; flags a bin exposes on top
//! (e.g. `--out`) override the config per the builder-over-env rule.

use mic_eval::config::SuiteConfig;
use mic_eval::graph::suite::Scale;
use std::path::PathBuf;
use std::str::FromStr;
use std::sync::Arc;

/// Parsed command line of a bench bin. Consume flags with the accessor
/// methods, then call [`positionals`](Cli::positionals) (or
/// [`done`](Cli::done)) to reject leftovers.
pub struct Cli {
    bin: &'static str,
    usage: &'static str,
    args: Vec<String>,
}

impl Cli {
    /// Parse the process arguments for `bin`. Handles `--help`, installs
    /// the environment [`SuiteConfig`] process-wide, and returns the
    /// remaining arguments for the accessors below.
    pub fn parse(bin: &'static str, usage: &'static str) -> Cli {
        Self::parse_from(bin, usage, std::env::args().skip(1).collect())
    }

    /// [`Cli::parse`] over an explicit argument vector (unit tests).
    pub fn parse_from(bin: &'static str, usage: &'static str, args: Vec<String>) -> Cli {
        if args.iter().any(|a| a == "--help" || a == "-h") {
            println!("usage: {usage}");
            std::process::exit(0);
        }
        SuiteConfig::from_env().install();
        Cli { bin, usage, args }
    }

    /// The installed suite configuration (env knobs, typed).
    pub fn config(&self) -> Arc<SuiteConfig> {
        mic_eval::config::current()
    }

    fn die(&self, msg: &str) -> ! {
        eprintln!("{}: {msg}", self.bin);
        eprintln!("usage: {}", self.usage);
        std::process::exit(2);
    }

    /// Consume a boolean flag; true if it was present.
    pub fn flag(&mut self, name: &str) -> bool {
        match self.args.iter().position(|a| a == name) {
            Some(i) => {
                self.args.remove(i);
                true
            }
            None => false,
        }
    }

    /// Consume `name VALUE`; `None` when the flag is absent, usage error
    /// when the value is missing.
    pub fn opt(&mut self, name: &str) -> Option<String> {
        let i = self.args.iter().position(|a| a == name)?;
        if i + 1 >= self.args.len() || self.args[i + 1].starts_with("--") {
            self.die(&format!("{name} needs a value"));
        }
        let value = self.args.remove(i + 1);
        self.args.remove(i);
        Some(value)
    }

    /// [`opt`](Cli::opt) parsed as `T`; usage error naming the flag on a
    /// bad value.
    pub fn opt_parse<T: FromStr>(&mut self, name: &str, want: &str) -> Option<T> {
        let raw = self.opt(name)?;
        match raw.parse::<T>() {
            Ok(v) => Some(v),
            Err(_) => self.die(&format!("{name} needs {want}, got {raw:?}")),
        }
    }

    /// `--scale K` with the bin's default: `K <= 1` means the full paper
    /// size, larger values divide the suite.
    pub fn scale(&mut self, default: Scale) -> Scale {
        match self.opt_parse::<u32>("--scale", "a positive integer divisor") {
            Some(k) if k <= 1 => Scale::Full,
            Some(k) => Scale::Fraction(k),
            None => default,
        }
    }

    /// `--threads N` with a default.
    pub fn threads(&mut self, default: usize) -> usize {
        self.opt_parse::<usize>("--threads", "a positive integer")
            .filter(|&n| n >= 1)
            .unwrap_or(default)
    }

    /// `--out PATH`.
    pub fn out(&mut self) -> Option<PathBuf> {
        self.opt("--out").map(PathBuf::from)
    }

    /// `--check` (validate and exit nonzero on failure).
    pub fn check(&mut self) -> bool {
        self.flag("--check")
    }

    /// `--strict` (gate failures exit nonzero).
    pub fn strict(&mut self) -> bool {
        self.flag("--strict")
    }

    /// `--write-baseline PATH`.
    pub fn write_baseline(&mut self) -> Option<String> {
        self.opt("--write-baseline")
    }

    /// Remaining positional arguments; any leftover `--flag` is a usage
    /// error (it was not consumed by the bin, so it is a typo).
    pub fn positionals(self) -> Vec<String> {
        if let Some(bad) = self.args.iter().find(|a| a.starts_with("--")) {
            self.die(&format!("unknown flag {bad}"));
        }
        self.args
    }

    /// Assert no arguments remain (bins without positionals).
    pub fn done(self) {
        if let Some(bad) = self.args.first() {
            self.die(&format!("unexpected argument {bad:?}"));
        }
    }
}

/// Parse single-letter panel positionals (`a`, `b`, `c`, ...) with a
/// default set — the shape shared by the `fig1`/`fig3`/`fig4` bins.
pub fn panels<P: Copy>(
    positionals: &[String],
    from_char: impl Fn(char) -> Option<P>,
    default: &[P],
) -> Vec<P> {
    let picked: Vec<P> = positionals
        .iter()
        .filter_map(|a| {
            a.chars()
                .next()
                .and_then(&from_char)
                .filter(|_| a.len() == 1)
        })
        .collect();
    if picked.is_empty() {
        default.to_vec()
    } else {
        picked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cli(args: &[&str]) -> Cli {
        Cli::parse_from(
            "test",
            "test [--scale K]",
            args.iter().map(|s| s.to_string()).collect(),
        )
    }

    #[test]
    fn scale_grammar() {
        assert_eq!(cli(&[]).scale(Scale::Full), Scale::Full);
        assert_eq!(
            cli(&["--scale", "64"]).scale(Scale::Full),
            Scale::Fraction(64)
        );
        assert_eq!(
            cli(&["--scale", "1"]).scale(Scale::Fraction(4)),
            Scale::Full
        );
        assert_eq!(cli(&[]).scale(Scale::Fraction(8)), Scale::Fraction(8));
    }

    #[test]
    fn flags_and_options_consume() {
        let mut c = cli(&["--strict", "--out", "x.json", "a", "--check"]);
        assert!(c.strict());
        assert!(c.check());
        assert_eq!(c.out(), Some(PathBuf::from("x.json")));
        assert!(!c.flag("--strict"), "consumed flags do not match twice");
        assert_eq!(c.positionals(), vec!["a".to_string()]);
    }

    #[test]
    fn threads_default_applies() {
        assert_eq!(cli(&[]).threads(4), 4);
        assert_eq!(cli(&["--threads", "9"]).threads(4), 9);
    }

    #[test]
    fn panel_selection() {
        let from = |c: char| match c {
            'a' => Some(0usize),
            'b' => Some(1),
            _ => None,
        };
        assert_eq!(panels(&[], from, &[0, 1]), vec![0, 1]);
        assert_eq!(panels(&["b".into()], from, &[0, 1]), vec![1]);
        assert_eq!(panels(&["ab".into()], from, &[0, 1]), vec![0, 1]);
    }
}
