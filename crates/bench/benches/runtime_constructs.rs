//! Runtime-construct microbenchmarks: per-chunk dispatch cost of each
//! scheduling discipline (the quantity the simulator's `SchedCosts`
//! abstracts), plus the pipeline and the TLS/reduction helpers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mic_eval::runtime::{
    cilk_for, parallel_for_chunks, run_pipeline, tbb_parallel_for, Partitioner, PerWorker,
    ReducerMax, Schedule, Stage, ThreadPool,
};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

const N: usize = 200_000;

fn bench_constructs(c: &mut Criterion) {
    let pool = ThreadPool::new(4);
    let mut group = c.benchmark_group("runtime_constructs");
    group.throughput(Throughput::Elements(N as u64));
    group.sample_size(20);

    let work = |r: std::ops::Range<usize>| -> u64 {
        let mut s = 0u64;
        for i in r {
            s = s.wrapping_add((i as u64).wrapping_mul(2654435761));
        }
        s
    };

    for (name, sched) in [
        ("static", Schedule::Static { chunk: None }),
        ("static_40", Schedule::Static { chunk: Some(40) }),
        ("dynamic_100", Schedule::Dynamic { chunk: 100 }),
        ("guided_100", Schedule::Guided { min_chunk: 100 }),
    ] {
        group.bench_with_input(BenchmarkId::new("openmp", name), &sched, |b, &sched| {
            b.iter(|| {
                let acc = AtomicU64::new(0);
                parallel_for_chunks(&pool, 0..N, sched, |r, _| {
                    acc.fetch_add(work(r), Ordering::Relaxed);
                });
                black_box(acc.into_inner())
            })
        });
    }

    group.bench_function("cilk_grain_100", |b| {
        b.iter(|| {
            let acc = AtomicU64::new(0);
            cilk_for(&pool, 0..N, 100, |r, _| {
                acc.fetch_add(work(r), Ordering::Relaxed);
            });
            black_box(acc.into_inner())
        })
    });

    for (name, part) in [
        ("simple_40", Partitioner::Simple { grain: 40 }),
        ("auto", Partitioner::Auto),
        ("affinity", Partitioner::Affinity),
    ] {
        group.bench_with_input(BenchmarkId::new("tbb", name), &part, |b, &part| {
            b.iter(|| {
                let acc = AtomicU64::new(0);
                tbb_parallel_for(&pool, 0..N, part, |r, _| {
                    acc.fetch_add(work(r), Ordering::Relaxed);
                });
                black_box(acc.into_inner())
            })
        });
    }

    group.bench_function("per_worker_reduction", |b| {
        b.iter(|| {
            let mut red = ReducerMax::new(4, 0u64);
            let mut tls: PerWorker<u64> = PerWorker::new(4, |_| 0);
            parallel_for_chunks(&pool, 0..N, Schedule::Dynamic { chunk: 128 }, |r, ctx| {
                let w = work(r);
                tls.with(ctx, |t| *t = t.wrapping_add(w));
                red.update(ctx, w);
            });
            black_box((red.get(), tls.take_values().len()))
        })
    });

    group.finish();

    let mut pgroup = c.benchmark_group("pipeline");
    pgroup.sample_size(15);
    pgroup.bench_function("three_stage_1000_tokens", |b| {
        b.iter(|| {
            let mut i = 0u64;
            let mut out = 0u64;
            run_pipeline(
                &pool,
                move || {
                    if i < 1000 {
                        i += 1;
                        Some(i)
                    } else {
                        None
                    }
                },
                vec![
                    Stage::parallel(|v: u64| v.wrapping_mul(2654435761)),
                    Stage::serial(|v: u64| v ^ 0xDEAD),
                    Stage::parallel(|v: u64| v.rotate_left(7)),
                ],
                |v| out = out.wrapping_add(v),
                16,
            );
            black_box(out)
        })
    });
    pgroup.finish();
}

criterion_group!(benches, bench_constructs);
criterion_main!(benches);
