//! Native coloring benchmarks: sequential greedy vs parallel speculative
//! under each runtime model (Figure 1's kernel, measured on this host).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mic_eval::coloring::{iterative_coloring, seq::greedy_color};
use mic_eval::graph::suite::{build, PaperGraph, Scale};
use mic_eval::runtime::{Partitioner, RuntimeModel, Schedule, ThreadPool};
use std::hint::black_box;

fn bench_coloring(c: &mut Criterion) {
    let g = build(PaperGraph::Hood, Scale::Fraction(32));
    let pool = ThreadPool::new(4);
    let mut group = c.benchmark_group("coloring");
    group.sample_size(20);

    group.bench_function("seq_greedy", |b| {
        b.iter(|| black_box(greedy_color(black_box(&g)).num_colors))
    });

    for (name, model) in [
        (
            "openmp_dynamic100",
            RuntimeModel::OpenMp(Schedule::Dynamic { chunk: 100 }),
        ),
        (
            "openmp_static",
            RuntimeModel::OpenMp(Schedule::Static { chunk: None }),
        ),
        (
            "openmp_guided",
            RuntimeModel::OpenMp(Schedule::Guided { min_chunk: 100 }),
        ),
        ("cilk_holder100", RuntimeModel::CilkHolder { grain: 100 }),
        (
            "tbb_simple40",
            RuntimeModel::Tbb(Partitioner::Simple { grain: 40 }),
        ),
        ("tbb_auto", RuntimeModel::Tbb(Partitioner::Auto)),
    ] {
        group.bench_with_input(BenchmarkId::new("parallel", name), &model, |b, &model| {
            b.iter(|| black_box(iterative_coloring(&pool, &g, model).num_colors))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_coloring);
criterion_main!(benches);
