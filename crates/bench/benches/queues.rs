//! Data-structure microbenchmarks: the paper's block-accessed queue
//! against the Leiserson–Schardl bag and a plain vector, plus the block
//! size tradeoff ("not so small so that we do not use atomics too often").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mic_eval::bfs::queue::Bag;
use mic_eval::runtime::{BlockQueue, ThreadPool};
use std::hint::black_box;

const N: usize = 100_000;

fn bench_queues(c: &mut Criterion) {
    let pool = ThreadPool::new(4);
    let mut group = c.benchmark_group("queues");
    group.throughput(Throughput::Elements(N as u64));
    group.sample_size(20);

    for block in [1usize, 8, 32, 128] {
        group.bench_with_input(
            BenchmarkId::new("block_queue_push", block),
            &block,
            |b, &bl| {
                b.iter(|| {
                    let q: BlockQueue<u32> = BlockQueue::with_writers(N, bl, 4, u32::MAX);
                    let qr = &q;
                    pool.run(|ctx| {
                        let mut w = qr.writer();
                        let mut i = ctx.id;
                        while i < N {
                            w.push(i as u32);
                            i += ctx.num_threads;
                        }
                    });
                    black_box(q.raw_len())
                })
            },
        );
    }

    group.bench_function("bag_insert_union", |b| {
        b.iter(|| {
            let mut bags: Vec<Bag<u32>> = (0..4).map(|_| Bag::new(64)).collect();
            for i in 0..N {
                bags[i % 4].insert(i as u32);
            }
            let mut total = Bag::new(64);
            for bag in bags {
                total.union(bag);
            }
            black_box(total.len())
        })
    });

    group.bench_function("vec_push_baseline", |b| {
        b.iter(|| {
            let mut v = Vec::with_capacity(N);
            for i in 0..N {
                v.push(i as u32);
            }
            black_box(v.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_queues);
criterion_main!(benches);
