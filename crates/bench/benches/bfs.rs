//! Native BFS benchmarks: the frontier data structures of Figure 4,
//! measured on this host.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mic_eval::bfs::{
    bfs, direction::hybrid_bfs, direction::Hybrid, parallel_bfs, seq::table1_source, BfsVariant,
};
use mic_eval::graph::suite::{build, PaperGraph, Scale};
use mic_eval::runtime::ThreadPool;
use std::hint::black_box;

fn bench_bfs(c: &mut Criterion) {
    let g = build(PaperGraph::Hood, Scale::Fraction(32));
    let src = table1_source(&g);
    let pool = ThreadPool::new(4);
    let mut group = c.benchmark_group("bfs");
    group.sample_size(20);

    group.bench_function("sequential", |b| {
        b.iter(|| black_box(bfs(&g, src).num_levels))
    });
    group.bench_function("direction_optimizing", |b| {
        b.iter(|| black_box(hybrid_bfs(&g, src, Hybrid::default()).num_levels))
    });

    for variant in BfsVariant::paper_set() {
        group.bench_with_input(
            BenchmarkId::new("parallel", variant.name()),
            &variant,
            |b, &variant| b.iter(|| black_box(parallel_bfs(&pool, &g, src, variant).num_levels)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_bfs);
criterion_main!(benches);
