//! Simulator throughput: how fast the fluid discrete-event engine chews
//! through a figure-sized sweep (this bounds how long `--bin all` takes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mic_eval::coloring::instrument::instrument;
use mic_eval::graph::stats::LocalityWindows;
use mic_eval::graph::suite::{build, PaperGraph, Scale};
use mic_eval::sim::{simulate, Machine, Policy};
use std::hint::black_box;

fn bench_sim(c: &mut Criterion) {
    let g = build(PaperGraph::Hood, Scale::Fraction(8));
    let w = instrument(&g, LocalityWindows::default());
    let machine = Machine::knf();
    let mut group = c.benchmark_group("sim_engine");
    group.sample_size(20);

    for t in [1usize, 31, 121] {
        let regions = w.regions(Policy::OmpDynamic { chunk: 100 });
        group.bench_with_input(BenchmarkId::new("coloring_region", t), &t, |b, &t| {
            b.iter(|| black_box(simulate(&machine, t, &regions).cycles))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
