//! Simulator throughput: how fast the fluid discrete-event engine chews
//! through a figure-sized sweep (this bounds how long `--bin all` takes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mic_eval::coloring::instrument::instrument;
use mic_eval::graph::stats::LocalityWindows;
use mic_eval::graph::suite::{build, PaperGraph, Scale};
use mic_eval::sim::{simulate, simulate_with_scratch, Machine, Policy, Region, SimScratch};
use mic_eval::sweep;
use std::hint::black_box;

fn bench_sim(c: &mut Criterion) {
    let g = build(PaperGraph::Hood, Scale::Fraction(8));
    let w = instrument(&g, LocalityWindows::default());
    let machine = Machine::knf();
    let mut group = c.benchmark_group("sim_engine");
    group.sample_size(20);

    for t in [1usize, 31, 121] {
        // The regions are reused across iterations, as the figure drivers
        // reuse them across a thread grid: the Work prefix sums are
        // computed on the first call and cached in the Region thereafter.
        let regions = w.regions(Policy::OmpDynamic { chunk: 100 });
        group.bench_with_input(BenchmarkId::new("coloring_region", t), &t, |b, &t| {
            b.iter(|| black_box(simulate(&machine, t, &regions).cycles))
        });
    }

    // Allocation-free engine loop: same simulation, caller-owned scratch.
    let regions = w.regions(Policy::OmpDynamic { chunk: 100 });
    let mut scratch = SimScratch::default();
    group.bench_function("coloring_region_scratch/121", |b| {
        b.iter(|| black_box(simulate_with_scratch(&machine, 121, &regions, &mut scratch).cycles))
    });
    group.finish();
}

/// A figure-shaped cross-product — every coloring variant on every suite
/// graph over the whole thread grid — run through the serial reference
/// loop and through the parallel sweep harness. This is the unit of work
/// `--bin all` repeats per exhibit.
fn bench_full_sweep(c: &mut Criterion) {
    let machine = Machine::knf();
    let grid = machine.thread_grid();
    let policies = [
        Policy::OmpDynamic { chunk: 100 },
        Policy::OmpStatic { chunk: Some(40) },
        Policy::OmpGuided { min_chunk: 100 },
    ];
    let region_sets: Vec<Vec<Region>> = PaperGraph::all()
        .iter()
        .flat_map(|&pg| {
            let w = instrument(&build(pg, Scale::Fraction(64)), LocalityWindows::default());
            policies
                .iter()
                .map(move |&p| w.regions(p))
                .collect::<Vec<_>>()
        })
        .collect();
    let run = |_i: usize, regions: &Vec<Region>| -> f64 {
        let mut scratch = SimScratch::default();
        grid.iter()
            .map(|&t| simulate_with_scratch(&machine, t, regions, &mut scratch).cycles)
            .sum()
    };

    let mut group = c.benchmark_group("full_sweep");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| black_box(sweep::map_serial(&region_sets, run)))
    });
    let threads = sweep::default_threads().max(2);
    group.bench_function(BenchmarkId::new("parallel", threads), |b| {
        b.iter(|| black_box(sweep::map_with(threads, &region_sets, run)))
    });
    group.finish();
}

criterion_group!(benches, bench_sim, bench_full_sweep);
criterion_main!(benches);
