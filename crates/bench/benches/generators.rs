//! Graph-construction benchmarks: generators, CSR build, permutation.

use criterion::{criterion_group, criterion_main, Criterion};
use mic_eval::graph::generators::{erdos_renyi_gnm, rgg3d_with_avg_degree, rmat, Box3, RmatProbs};
use mic_eval::graph::ordering::{apply, Ordering};
use mic_eval::graph::suite::{build, PaperGraph, Scale};
use std::hint::black_box;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(10);

    group.bench_function("rgg3d_20k", |b| {
        b.iter(|| {
            black_box(rgg3d_with_avg_degree(
                20_000,
                Box3::new(8.0, 1.0, 1.0),
                30.0,
                1,
            ))
        })
    });
    group.bench_function("rmat_s12", |b| {
        b.iter(|| black_box(rmat(12, 16, RmatProbs::graph500(), 1)))
    });
    group.bench_function("erdos_renyi_20k", |b| {
        b.iter(|| black_box(erdos_renyi_gnm(20_000, 200_000, 1)))
    });
    group.bench_function("suite_hood_frac64", |b| {
        b.iter(|| black_box(build(PaperGraph::Hood, Scale::Fraction(64))))
    });

    let g = build(PaperGraph::Hood, Scale::Fraction(64));
    group.bench_function("permute_shuffle", |b| {
        b.iter(|| black_box(apply(&g, Ordering::Random { seed: 2 }).0.num_edges()))
    });
    group.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
