//! Criterion benches for the extension kernels: SSSP, betweenness,
//! components, triangles, MIS, k-core, prefix scan.

use criterion::{criterion_group, criterion_main, Criterion};
use mic_eval::bfs::centrality::{parallel_betweenness, Sources};
use mic_eval::bfs::components::components_parallel;
use mic_eval::bfs::kcore::kcore;
use mic_eval::bfs::persistent::persistent_bfs;
use mic_eval::bfs::sssp::{default_delta, delta_stepping};
use mic_eval::coloring::mis::luby_mis;
use mic_eval::graph::suite::{build, PaperGraph, Scale};
use mic_eval::graph::weights::EdgeWeights;
use mic_eval::irregular::triangles::triangles;
use mic_eval::runtime::{exclusive_scan, RuntimeModel, Schedule, ThreadPool};
use std::hint::black_box;

fn bench_extras(c: &mut Criterion) {
    let g = build(PaperGraph::Hood, Scale::Fraction(64));
    let pool = ThreadPool::new(4);
    let model = RuntimeModel::OpenMp(Schedule::dynamic100());
    let mut group = c.benchmark_group("kernels_extra");
    group.sample_size(10);

    let w = EdgeWeights::random_symmetric(&g, 0.1, 2.0, 3);
    let delta = default_delta(&g, &w);
    group.bench_function("delta_stepping", |b| {
        b.iter(|| black_box(delta_stepping(&pool, &g, &w, 0, delta, model).phases))
    });

    let sample: Vec<u32> = (0..g.num_vertices() as u32).step_by(200).collect();
    group.bench_function("betweenness_sampled", |b| {
        b.iter(|| {
            black_box(parallel_betweenness(&pool, &g, &Sources::Sample(sample.clone()), model)[0])
        })
    });

    group.bench_function("components", |b| {
        b.iter(|| black_box(components_parallel(&pool, &g, model).count))
    });

    group.bench_function("triangles", |b| {
        b.iter(|| black_box(triangles(&pool, &g, model)))
    });

    group.bench_function("luby_mis", |b| {
        b.iter(|| black_box(luby_mis(&pool, &g, model, 7).rounds))
    });

    group.bench_function("kcore", |b| b.iter(|| black_box(kcore(&g).degeneracy)));

    group.bench_function("persistent_bfs", |b| {
        let src = mic_eval::bfs::seq::table1_source(&g);
        b.iter(|| black_box(persistent_bfs(&pool, &g, src, 32, 16, true).num_levels))
    });

    group.bench_function("exclusive_scan_1m", |b| {
        let mut v: Vec<u64> = (0..1_000_000u64).map(|i| i % 7).collect();
        b.iter(|| {
            black_box(exclusive_scan(&pool, &mut v));
        })
    });

    group.finish();
}

criterion_group!(benches, bench_extras);
criterion_main!(benches);
