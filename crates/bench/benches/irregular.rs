//! Native irregular-kernel benchmarks: the compute-to-communication knob
//! of Figure 3, measured on this host.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mic_eval::graph::suite::{build, PaperGraph, Scale};
use mic_eval::irregular::kernel::{irregular_inplace, irregular_jacobi};
use mic_eval::runtime::{RuntimeModel, Schedule, ThreadPool};
use std::hint::black_box;

fn bench_irregular(c: &mut Criterion) {
    let g = build(PaperGraph::Auto, Scale::Fraction(32));
    let n = g.num_vertices();
    let pool = ThreadPool::new(4);
    let model = RuntimeModel::OpenMp(Schedule::Dynamic { chunk: 100 });
    let mut group = c.benchmark_group("irregular");
    group.sample_size(15);

    for iter in [1usize, 3, 10] {
        group.bench_with_input(BenchmarkId::new("inplace", iter), &iter, |b, &iter| {
            b.iter(|| {
                let mut state: Vec<f64> = (0..n).map(|i| (i % 97) as f64).collect();
                irregular_inplace(&pool, &g, &mut state, iter, model);
                black_box(state[0])
            })
        });
    }
    group.bench_function("jacobi_iter3", |b| {
        let state: Vec<f64> = (0..n).map(|i| (i % 97) as f64).collect();
        let mut out = vec![0.0; n];
        b.iter(|| {
            irregular_jacobi(&pool, &g, &state, &mut out, 3, model);
            black_box(out[0])
        })
    });
    group.finish();
}

criterion_group!(benches, bench_irregular);
criterion_main!(benches);
