//! Concurrent on-disk workload-cache writes: many threads hammer one cache
//! key while readers poll it. With the old shared `.bin.tmp` name, two
//! racing writers could rename a half-written file into place and a reader
//! would see a torn entry under the *final* name; with per-writer unique
//! tmp names every observed file must be a complete, internally consistent
//! snapshot from exactly one writer.

use mic_eval::sim::Work;
use mic_eval::workload_cache::{load_arrays, store_arrays};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Fault plans are process-global; serialize the tests in this file so the
/// injected short-read schedule can never leak into the torn-file races.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// A payload whose every Work value is derived from its tag, so a file
/// mixing bytes from two writers fails the consistency check even though
/// all candidate payloads have identical lengths (same serialized size —
/// the dangerous case for torn renames).
fn payload(tag: u64) -> Vec<Work> {
    (0..64)
        .map(|i| Work {
            issue: 1.0 + tag as f64,
            l1: i as f64,
            dram: (tag % 7) as f64 * 0.25,
            ..Default::default()
        })
        .collect()
}

fn check_consistent(meta: &[u64], arrays: &[std::sync::Arc<Vec<Work>>]) {
    assert_eq!(meta.len(), 1);
    assert_eq!(arrays.len(), 1);
    let tag = meta[0];
    let expect = payload(tag);
    assert_eq!(arrays[0].len(), expect.len());
    for (got, want) in arrays[0].iter().zip(&expect) {
        assert_eq!(got, want, "file mixes bytes from different writers");
    }
}

#[test]
fn concurrent_writers_never_leave_a_torn_file() {
    let _guard = serial();
    let dir = std::env::temp_dir().join(format!("mic-cache-stress-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("wl1-stress-key.bin");
    let writers = 8;
    let rounds = 30;
    let first_store_done = AtomicBool::new(false);

    std::thread::scope(|s| {
        for w in 0..writers {
            let path = &path;
            let first_store_done = &first_store_done;
            s.spawn(move || {
                for r in 0..rounds {
                    let tag = (w * rounds + r) as u64;
                    let arr = payload(tag);
                    store_arrays(path, &[tag], &[&arr]);
                    first_store_done.store(true, Ordering::Release);
                    // Immediately read back: must always parse as a
                    // complete file (some writer's snapshot, not
                    // necessarily ours).
                    let (meta, arrays) =
                        load_arrays(path, 1, 1).expect("file must parse after any store");
                    check_consistent(&meta, &arrays);
                }
            });
        }
        // A dedicated reader polling while writers race.
        s.spawn(|| {
            let mut seen = 0u32;
            while seen < 200 {
                if first_store_done.load(Ordering::Acquire) {
                    let (meta, arrays) =
                        load_arrays(&path, 1, 1).expect("reader saw unparsable file");
                    check_consistent(&meta, &arrays);
                    seen += 1;
                }
                std::hint::spin_loop();
            }
        });
    });

    // After the dust settles: the final file parses, and no tmp files
    // were renamed over it or left holding a claim on the final name.
    let (meta, arrays) = load_arrays(&path, 1, 1).expect("final file must parse");
    check_consistent(&meta, &arrays);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A writer killed mid-write (simulated by truncating the file at every
/// offset) must never hand the reader data: the checksum rejects every
/// prefix, the file is quarantined, and a recompute-and-store round
/// restores a loadable entry.
#[test]
fn killed_writer_truncations_all_quarantine_then_recompute_recovers() {
    let _guard = serial();
    let dir = std::env::temp_dir().join(format!("mic-cache-kill-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("wl1-kill-key.bin");
    let arr = payload(3);
    store_arrays(&path, &[3], &[&arr]);
    let good = std::fs::read(&path).unwrap();
    // Every strict prefix is a possible kill point. Step 7 keeps the test
    // fast while still hitting header, meta, payload, and checksum cuts.
    for cut in (0..good.len()).step_by(7) {
        std::fs::write(&path, &good[..cut]).unwrap();
        assert!(
            load_arrays(&path, 1, 1).is_none(),
            "a {cut}-byte torn file must never load"
        );
        assert!(!path.exists(), "torn file (cut {cut}) must be quarantined");
        // The recovery path every caller takes: recompute + store + load.
        store_arrays(&path, &[3], &[&arr]);
        let (meta, arrays) = load_arrays(&path, 1, 1).expect("recompute must recover");
        check_consistent(&meta, &arrays);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A reader that observes a short read (injected fault) while a stalled
/// writer holds the file must quarantine and recompute rather than
/// consume the truncated view; once the fault clears, the recomputed
/// entry loads cleanly and later stores still work.
#[test]
fn stalled_writer_short_read_is_quarantined_and_recomputed() {
    let _guard = serial();
    use mic_eval::fault::{with_plan, FaultClass, FaultPlan};
    let dir = std::env::temp_dir().join(format!("mic-cache-stall-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("wl1-stall-key.bin");
    let arr = payload(9);
    store_arrays(&path, &[9], &[&arr]);
    with_plan(
        FaultPlan::with_rate(5, FaultClass::CacheShortRead, 1.0),
        || {
            assert!(
                load_arrays(&path, 1, 1).is_none(),
                "short read must be treated as corruption, not data"
            );
        },
    );
    assert!(!path.exists(), "short-read file is moved aside");
    assert!(
        std::path::PathBuf::from(format!("{}.corrupt", path.display())).exists(),
        "evidence must be preserved"
    );
    store_arrays(&path, &[9], &[&arr]);
    let (meta, arrays) = load_arrays(&path, 1, 1).expect("recompute after fault clears");
    check_consistent(&meta, &arrays);
    let _ = std::fs::remove_dir_all(&dir);
}
