//! Concurrent on-disk workload-cache writes: many threads hammer one cache
//! key while readers poll it. With the old shared `.bin.tmp` name, two
//! racing writers could rename a half-written file into place and a reader
//! would see a torn entry under the *final* name; with per-writer unique
//! tmp names every observed file must be a complete, internally consistent
//! snapshot from exactly one writer.

use mic_eval::sim::Work;
use mic_eval::workload_cache::{load_arrays, store_arrays};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Fault plans are process-global; serialize the tests in this file so the
/// injected short-read schedule can never leak into the torn-file races.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// A payload whose every Work value is derived from its tag, so a file
/// mixing bytes from two writers fails the consistency check even though
/// all candidate payloads have identical lengths (same serialized size —
/// the dangerous case for torn renames).
fn payload(tag: u64) -> Vec<Work> {
    (0..64)
        .map(|i| Work {
            issue: 1.0 + tag as f64,
            l1: i as f64,
            dram: (tag % 7) as f64 * 0.25,
            ..Default::default()
        })
        .collect()
}

fn check_consistent(meta: &[u64], arrays: &[std::sync::Arc<Vec<Work>>]) {
    assert_eq!(meta.len(), 1);
    assert_eq!(arrays.len(), 1);
    let tag = meta[0];
    let expect = payload(tag);
    assert_eq!(arrays[0].len(), expect.len());
    for (got, want) in arrays[0].iter().zip(&expect) {
        assert_eq!(got, want, "file mixes bytes from different writers");
    }
}

#[test]
fn concurrent_writers_never_leave_a_torn_file() {
    let _guard = serial();
    let dir = std::env::temp_dir().join(format!("mic-cache-stress-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("wl1-stress-key.bin");
    let writers = 8;
    let rounds = 30;
    let first_store_done = AtomicBool::new(false);

    std::thread::scope(|s| {
        for w in 0..writers {
            let path = &path;
            let first_store_done = &first_store_done;
            s.spawn(move || {
                for r in 0..rounds {
                    let tag = (w * rounds + r) as u64;
                    let arr = payload(tag);
                    store_arrays(path, &[tag], &[&arr]);
                    first_store_done.store(true, Ordering::Release);
                    // Immediately read back: must always parse as a
                    // complete file (some writer's snapshot, not
                    // necessarily ours).
                    let (meta, arrays) =
                        load_arrays(path, 1, 1).expect("file must parse after any store");
                    check_consistent(&meta, &arrays);
                }
            });
        }
        // A dedicated reader polling while writers race.
        s.spawn(|| {
            let mut seen = 0u32;
            while seen < 200 {
                if first_store_done.load(Ordering::Acquire) {
                    let (meta, arrays) =
                        load_arrays(&path, 1, 1).expect("reader saw unparsable file");
                    check_consistent(&meta, &arrays);
                    seen += 1;
                }
                std::hint::spin_loop();
            }
        });
    });

    // After the dust settles: the final file parses, and no tmp files
    // were renamed over it or left holding a claim on the final name.
    let (meta, arrays) = load_arrays(&path, 1, 1).expect("final file must parse");
    check_consistent(&meta, &arrays);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A writer killed mid-write (simulated by truncating the file at every
/// offset) must never hand the reader data: the checksum rejects every
/// prefix, the file is quarantined, and a recompute-and-store round
/// restores a loadable entry.
#[test]
fn killed_writer_truncations_all_quarantine_then_recompute_recovers() {
    let _guard = serial();
    let dir = std::env::temp_dir().join(format!("mic-cache-kill-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("wl1-kill-key.bin");
    let arr = payload(3);
    store_arrays(&path, &[3], &[&arr]);
    let good = std::fs::read(&path).unwrap();
    // Every strict prefix is a possible kill point. Step 7 keeps the test
    // fast while still hitting header, meta, payload, and checksum cuts.
    for cut in (0..good.len()).step_by(7) {
        std::fs::write(&path, &good[..cut]).unwrap();
        assert!(
            load_arrays(&path, 1, 1).is_none(),
            "a {cut}-byte torn file must never load"
        );
        assert!(!path.exists(), "torn file (cut {cut}) must be quarantined");
        // The recovery path every caller takes: recompute + store + load.
        store_arrays(&path, &[3], &[&arr]);
        let (meta, arrays) = load_arrays(&path, 1, 1).expect("recompute must recover");
        check_consistent(&meta, &arrays);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Repeated corruption of one cache key must preserve *every* piece of
/// evidence: the second quarantine claims `.corrupt.1` instead of
/// clobbering the `.corrupt` from the first event.
#[test]
fn repeated_quarantines_keep_distinct_evidence_files() {
    let _guard = serial();
    let dir = std::env::temp_dir().join(format!("mic-cache-evidence-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("wl1-evidence-key.bin");
    let arr = payload(21);
    let mut evidence_bytes = Vec::new();
    for round in 0..2u8 {
        store_arrays(&path, &[21], &[&arr]);
        let mut bytes = std::fs::read(&path).unwrap();
        // Distinct corruption per round, so the evidence files differ.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10 + round;
        std::fs::write(&path, &bytes).unwrap();
        evidence_bytes.push(bytes);
        assert!(load_arrays(&path, 1, 1).is_none());
        assert!(!path.exists(), "round {round}: corrupt file moved aside");
    }
    let first = std::path::PathBuf::from(format!("{}.corrupt", path.display()));
    let second = std::path::PathBuf::from(format!("{}.corrupt.1", path.display()));
    assert!(first.exists(), "first evidence file must exist");
    assert!(second.exists(), "second event must claim the next suffix");
    assert_eq!(std::fs::read(&first).unwrap(), evidence_bytes[0]);
    assert_eq!(std::fs::read(&second).unwrap(), evidence_bytes[1]);
    let _ = std::fs::remove_dir_all(&dir);
}

/// With `MIC_STORE` pointing at a spill file, a stored workload survives
/// deletion of its `.bin` cache file: the durable store tier answers the
/// load, bit-identical, across what amounts to a cold restart of the
/// file cache.
#[test]
fn store_tier_serves_workloads_after_file_cache_loss() {
    let _guard = serial();
    use mic_eval::config::SuiteConfig;
    let dir = std::env::temp_dir().join(format!("mic-cache-spill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("wl1-spill-key.bin");
    SuiteConfig::default()
        .store_path(Some(dir.join("spill.pg")))
        .store_page(512)
        .install();
    let arr = payload(33);
    store_arrays(&path, &[33], &[&arr]);
    std::fs::remove_file(&path).expect("file-tier entry exists");
    let (meta, arrays) =
        load_arrays(&path, 1, 1).expect("store tier must answer after the cache file is gone");
    check_consistent(&meta, &arrays);
    // Restore the env-derived config so later tests see the default tiers.
    SuiteConfig::from_env().install();
    assert!(
        load_arrays(&path, 1, 1).is_none(),
        "with the store tier off and the file gone, the entry is a miss"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Crash-mid-persist matrix on the store file itself: truncate it at
/// every page boundary (plus cuts through both header slots) and reload.
/// Whatever state the "crash" left, the cache must hand back either the
/// exact workload or a miss-and-recompute — never corrupt arrays.
#[test]
fn store_file_crash_matrix_recovers_or_misses_never_corrupts() {
    let _guard = serial();
    use mic_eval::config::SuiteConfig;
    let dir = std::env::temp_dir().join(format!("mic-cache-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("wl1-crash-key.bin");
    let store_file = dir.join("spill.pg");
    SuiteConfig::default()
        .store_path(Some(store_file.clone()))
        .store_page(512)
        .install();
    let arr = payload(44);
    store_arrays(&path, &[44], &[&arr]);
    let golden = std::fs::read(&store_file).unwrap();
    // Page boundaries (pages start at 4096, 512-byte pages) + cuts through
    // header slot A (offset 0), slot B (offset 512), and mid-page.
    let mut cuts: Vec<usize> = (0..golden.len()).step_by(512).collect();
    cuts.extend([17, 300, 800, 4200, golden.len() - 1]);
    for cut in cuts {
        let cut = cut.min(golden.len());
        std::fs::write(&store_file, &golden[..cut]).unwrap();
        // Force the load through the store tier alone.
        let _ = std::fs::remove_file(&path);
        if let Some((meta, arrays)) = load_arrays(&path, 1, 1) {
            check_consistent(&meta, &arrays);
            assert_eq!(meta[0], 44, "cut {cut}: wrong entry surfaced");
        }
        // The recovery path every caller takes: recompute, store, reload.
        store_arrays(&path, &[44], &[&arr]);
        let (meta, arrays) =
            load_arrays(&path, 1, 1).unwrap_or_else(|| panic!("cut {cut}: recompute must recover"));
        check_consistent(&meta, &arrays);
    }
    SuiteConfig::from_env().install();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A reader that observes a short read (injected fault) while a stalled
/// writer holds the file must quarantine and recompute rather than
/// consume the truncated view; once the fault clears, the recomputed
/// entry loads cleanly and later stores still work.
#[test]
fn stalled_writer_short_read_is_quarantined_and_recomputed() {
    let _guard = serial();
    use mic_eval::fault::{with_plan, FaultClass, FaultPlan};
    let dir = std::env::temp_dir().join(format!("mic-cache-stall-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("wl1-stall-key.bin");
    let arr = payload(9);
    store_arrays(&path, &[9], &[&arr]);
    with_plan(
        FaultPlan::with_rate(5, FaultClass::CacheShortRead, 1.0),
        || {
            assert!(
                load_arrays(&path, 1, 1).is_none(),
                "short read must be treated as corruption, not data"
            );
        },
    );
    assert!(!path.exists(), "short-read file is moved aside");
    assert!(
        std::path::PathBuf::from(format!("{}.corrupt", path.display())).exists(),
        "evidence must be preserved"
    );
    store_arrays(&path, &[9], &[&arr]);
    let (meta, arrays) = load_arrays(&path, 1, 1).expect("recompute after fault clears");
    check_consistent(&meta, &arrays);
    let _ = std::fs::remove_dir_all(&dir);
}
