//! Concurrent on-disk workload-cache writes: many threads hammer one cache
//! key while readers poll it. With the old shared `.bin.tmp` name, two
//! racing writers could rename a half-written file into place and a reader
//! would see a torn entry under the *final* name; with per-writer unique
//! tmp names every observed file must be a complete, internally consistent
//! snapshot from exactly one writer.

use mic_eval::sim::Work;
use mic_eval::workload_cache::{load_arrays, store_arrays};
use std::sync::atomic::{AtomicBool, Ordering};

/// A payload whose every Work value is derived from its tag, so a file
/// mixing bytes from two writers fails the consistency check even though
/// all candidate payloads have identical lengths (same serialized size —
/// the dangerous case for torn renames).
fn payload(tag: u64) -> Vec<Work> {
    (0..64)
        .map(|i| Work {
            issue: 1.0 + tag as f64,
            l1: i as f64,
            dram: (tag % 7) as f64 * 0.25,
            ..Default::default()
        })
        .collect()
}

fn check_consistent(meta: &[u64], arrays: &[std::sync::Arc<Vec<Work>>]) {
    assert_eq!(meta.len(), 1);
    assert_eq!(arrays.len(), 1);
    let tag = meta[0];
    let expect = payload(tag);
    assert_eq!(arrays[0].len(), expect.len());
    for (got, want) in arrays[0].iter().zip(&expect) {
        assert_eq!(got, want, "file mixes bytes from different writers");
    }
}

#[test]
fn concurrent_writers_never_leave_a_torn_file() {
    let dir = std::env::temp_dir().join(format!("mic-cache-stress-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("wl1-stress-key.bin");
    let writers = 8;
    let rounds = 30;
    let first_store_done = AtomicBool::new(false);

    std::thread::scope(|s| {
        for w in 0..writers {
            let path = &path;
            let first_store_done = &first_store_done;
            s.spawn(move || {
                for r in 0..rounds {
                    let tag = (w * rounds + r) as u64;
                    let arr = payload(tag);
                    store_arrays(path, &[tag], &[&arr]);
                    first_store_done.store(true, Ordering::Release);
                    // Immediately read back: must always parse as a
                    // complete file (some writer's snapshot, not
                    // necessarily ours).
                    let (meta, arrays) =
                        load_arrays(path, 1, 1).expect("file must parse after any store");
                    check_consistent(&meta, &arrays);
                }
            });
        }
        // A dedicated reader polling while writers race.
        s.spawn(|| {
            let mut seen = 0u32;
            while seen < 200 {
                if first_store_done.load(Ordering::Acquire) {
                    let (meta, arrays) =
                        load_arrays(&path, 1, 1).expect("reader saw unparsable file");
                    check_consistent(&meta, &arrays);
                    seen += 1;
                }
                std::hint::spin_loop();
            }
        });
    });

    // After the dust settles: the final file parses, and no tmp files
    // were renamed over it or left holding a claim on the final name.
    let (meta, arrays) = load_arrays(&path, 1, 1).expect("final file must parse");
    check_consistent(&meta, &arrays);
    let _ = std::fs::remove_dir_all(&dir);
}
