//! Chaos matrix for the resilient sweep: under every job-site fault class
//! and several seeds, a sweep must still complete, report each lost point
//! exactly once, and leave every surviving point bit-identical to the
//! fault-free run. This is the test CI drives under `MIC_FAULT` too.

use mic_eval::fault::{with_plan, FaultPlan};
use mic_eval::sweep::{self, SweepCfg};
use std::sync::Mutex;

/// Plans are process-global; serialize the whole file so the no-plan test
/// can never observe a neighbour's installed schedule.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// A deterministic job with enough floating-point work that any corruption
/// of the result would show up in the bit pattern.
fn job(i: usize, x: &u64) -> f64 {
    let mut acc = (*x as f64).sqrt() + i as f64;
    for k in 1..20u64 {
        acc += ((*x + k) as f64).ln() * 0.125;
    }
    acc
}

fn items() -> Vec<u64> {
    (1..=24u64).map(|v| v * 37 + 5).collect()
}

fn cfg() -> SweepCfg {
    SweepCfg {
        threads: 4,
        retries: 2,
        deadline_ms: None,
    }
}

/// Fault-free reference, computed serially.
fn baseline(items: &[u64]) -> Vec<f64> {
    sweep::map_serial(items, job)
}

#[test]
fn matrix_completes_and_successes_are_bit_identical() {
    let _guard = serial();
    let items = items();
    let base = baseline(&items);
    // Stall/slow sleeps are shortened so the whole matrix stays fast.
    let specs = [
        "job-panic@0.3",
        "job-stall@0.25:2",
        "job-slow@0.6:1",
        "job-panic@0.2,job-slow@0.3:1",
    ];
    for seed in [1u64, 7, 42] {
        for spec in specs {
            let plan = FaultPlan::parse(&format!("{seed}:{spec}")).expect("valid spec");
            let report = with_plan(plan, || sweep::try_map_cfg(&cfg(), &items, job));
            assert_eq!(
                report.results.len(),
                items.len(),
                "seed {seed} spec {spec}: sweep must cover every point"
            );
            // Every lost point is reported exactly once; every reported
            // point is actually lost.
            let lost: Vec<usize> = report
                .results
                .iter()
                .enumerate()
                .filter_map(|(i, r)| r.is_none().then_some(i))
                .collect();
            let mut reported: Vec<usize> = report.failures.iter().map(|f| f.point).collect();
            reported.sort_unstable();
            reported.dedup();
            assert_eq!(
                reported.len(),
                report.failures.len(),
                "seed {seed} spec {spec}: duplicate failure records"
            );
            assert_eq!(
                lost, reported,
                "seed {seed} spec {spec}: failures must match the None points"
            );
            // Survivors are bit-identical to the fault-free run.
            for (i, r) in report.results.iter().enumerate() {
                if let Some(v) = r {
                    assert_eq!(
                        v.to_bits(),
                        base[i].to_bits(),
                        "seed {seed} spec {spec}: point {i} drifted under faults"
                    );
                }
            }
        }
    }
}

#[test]
fn same_seed_reproduces_the_same_schedule() {
    let _guard = serial();
    let items = items();
    let run = || {
        let plan = FaultPlan::parse("42:job-panic@0.35").unwrap();
        with_plan(plan, || sweep::try_map_cfg(&cfg(), &items, job))
    };
    let (a, b) = (run(), run());
    let pattern = |r: &sweep::SweepReport<f64>| -> Vec<Option<u64>> {
        r.results.iter().map(|v| v.map(f64::to_bits)).collect()
    };
    assert_eq!(
        pattern(&a),
        pattern(&b),
        "same seed must fail the same points"
    );
    let records = |r: &sweep::SweepReport<f64>| -> Vec<(usize, &'static str, u32)> {
        r.failures
            .iter()
            .map(|f| (f.point, f.cause.kind(), f.attempts))
            .collect()
    };
    assert_eq!(records(&a), records(&b));
    // And a different seed produces a different schedule (with 24 points
    // at 35% the chance of an identical pattern is negligible).
    let other = with_plan(FaultPlan::parse("43:job-panic@0.35").unwrap(), || {
        sweep::try_map_cfg(&cfg(), &items, job)
    });
    assert_ne!(pattern(&a), pattern(&other), "seed must matter");
}

/// The acceptance scenario from the failure-model spec: one point forced
/// to panic on every attempt, one point forced over the deadline. The
/// sweep completes the rest, retries per the configuration, and reports
/// both losses as structured records.
#[test]
fn forced_panic_and_deadline_point_degrade_cleanly() {
    let _guard = serial();
    let items = items();
    let base = baseline(&items);
    let plan = FaultPlan::parse("7:job-panic#3,job-stall#9:80").unwrap();
    let cfg = SweepCfg {
        threads: 4,
        retries: 2,
        deadline_ms: Some(20),
    };
    let report = with_plan(plan, || sweep::try_map_cfg(&cfg, &items, job));
    assert_eq!(report.results.len(), items.len());
    for (i, r) in report.results.iter().enumerate() {
        match i {
            3 | 9 => assert!(r.is_none(), "targeted point {i} must be lost"),
            _ => assert_eq!(
                r.expect("untargeted point must survive").to_bits(),
                base[i].to_bits()
            ),
        }
    }
    assert_eq!(report.failures.len(), 2);
    let by_point = |p: usize| report.failures.iter().find(|f| f.point == p).unwrap();
    let panic_rec = by_point(3);
    assert_eq!(panic_rec.cause.kind(), "panic");
    // Targeted rules fire on every attempt: 1 try + `retries` retries.
    assert_eq!(panic_rec.attempts, cfg.retries + 1);
    assert!(
        panic_rec.cause.to_string().contains("sweep point 3"),
        "panic cause should carry the injected message, got {}",
        panic_rec.cause
    );
    let deadline_rec = by_point(9);
    assert_eq!(deadline_rec.cause.kind(), "deadline");
    assert_eq!(deadline_rec.attempts, cfg.retries + 1);
    assert!(deadline_rec.cause.to_string().contains("20"));
}

#[test]
fn no_plan_is_bit_identical_with_no_failures() {
    let _guard = serial();
    let items = items();
    let base = baseline(&items);
    // A zero-rate plan never fires; installing it also masks any plan the
    // environment provided (CI runs this binary under MIC_FAULT), so the
    // sweep below really does run fault-free.
    let never = FaultPlan::parse("1:job-panic@0.0").unwrap();
    let report = with_plan(never, || sweep::try_map_cfg(&cfg(), &items, job));
    assert!(report.failures.is_empty());
    let got: Vec<u64> = report
        .results
        .into_iter()
        .map(|r| r.expect("no faults, no losses").to_bits())
        .collect();
    let want: Vec<u64> = base.iter().map(|v| v.to_bits()).collect();
    assert_eq!(got, want);
}

/// `map_degraded` under injection: full-length output, fallback values at
/// the lost points, and the failures land in the global registry under
/// the caller's context label.
#[test]
fn map_degraded_records_failures_under_context() {
    let _guard = serial();
    let items = items();
    let base = baseline(&items);
    let plan = FaultPlan::parse("11:job-panic#5").unwrap();
    let out = with_plan(plan, || {
        sweep::with_context("fault-matrix-test", || {
            sweep::map_degraded(&items, job, |_, _| f64::NAN)
        })
    });
    assert_eq!(out.len(), items.len());
    assert!(out[5].is_nan(), "lost point must take the fallback");
    for (i, v) in out.iter().enumerate() {
        if i != 5 {
            assert_eq!(v.to_bits(), base[i].to_bits());
        }
    }
    let recorded = sweep::take_failures();
    let ours: Vec<_> = recorded
        .iter()
        .filter(|r| r.context == "fault-matrix-test")
        .collect();
    assert_eq!(
        ours.len(),
        1,
        "exactly one recorded failure, got {recorded:?}"
    );
    assert_eq!(ours[0].failure.point, 5);
    assert!(sweep::take_failures().is_empty(), "take must drain");
}
