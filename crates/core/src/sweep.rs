//! Parallel sweep harness for the experiment drivers.
//!
//! Every figure is a cross-product — (variant × graph × thread-grid) — of
//! *independent, pure* simulation jobs. This module fans those jobs out
//! over `mic-runtime`'s own [`ThreadPool`] (the reproduction's parallel
//! runtime drives its own evaluation) while keeping the output
//! **deterministic**: each job writes its result into the slot indexed by
//! its input position, so the assembled vector is identical for any worker
//! count and any interleaving — bit-for-bit equal to the serial reference
//! (see `tests/sweep_determinism.rs`).
//!
//! Worker count comes from `MIC_SWEEP_THREADS` (default: the machine's
//! available parallelism, capped at 16). `MIC_SWEEP_THREADS=1` forces the
//! plain serial loop, which is also used automatically for empty and
//! single-item inputs.
//!
//! Jobs may themselves run parallel regions on *other* pools (the native
//! kernels in `experiments::extras` do); cross-pool nesting is supported
//! by the runtime. A job must not call back into the sweep that spawned
//! it, but nested `sweep::map` calls are fine — each map drives its own
//! pool.

use mic_runtime::ThreadPool;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Worker count for [`map`]: `MIC_SWEEP_THREADS` if set and positive,
/// otherwise available parallelism capped at 16. A set-but-unusable value
/// (unparsable, or `0`) is rejected with a one-line warning on stderr —
/// silently falling back used to make `MIC_SWEEP_THREADS=O` typos
/// indistinguishable from the default.
pub fn default_threads() -> usize {
    let fallback = || {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(16)
    };
    match std::env::var("MIC_SWEEP_THREADS") {
        Err(_) => fallback(),
        Ok(raw) => match parse_sweep_threads(&raw) {
            Ok(n) => n,
            Err(rejected) => {
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| {
                    eprintln!(
                        "mic-eval: ignoring MIC_SWEEP_THREADS={rejected:?} \
                         (need a positive integer); using default"
                    );
                });
                fallback()
            }
        },
    }
}

/// Parse a `MIC_SWEEP_THREADS` value: empty means "unset" (use the
/// default, no warning); anything else must be a positive integer, and is
/// returned as `Err` verbatim otherwise so the caller can name it.
fn parse_sweep_threads(raw: &str) -> Result<usize, &str> {
    if raw.is_empty() {
        return Ok(std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(16));
    }
    match raw.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(raw),
    }
}

/// `f` applied to every item, results in input order, fanned out over
/// [`default_threads`] workers.
pub fn map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send + Sync,
    F: Fn(usize, &T) -> R + Sync,
{
    map_with(default_threads(), items, f)
}

/// The serial reference: a plain in-order loop. [`map_with`] must produce
/// exactly this, for any worker count.
pub fn map_serial<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    F: Fn(usize, &T) -> R,
{
    items.iter().enumerate().map(|(i, t)| f(i, t)).collect()
}

/// `f` applied to every item on `threads` pool workers, results in input
/// order. Jobs are claimed dynamically (an atomic cursor), so stragglers
/// do not serialize the sweep; each result lands in its input-index slot,
/// making the output independent of the execution interleaving.
pub fn map_with<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send + Sync,
    F: Fn(usize, &T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return map_serial(items, f);
    }
    let pool = ThreadPool::new(threads.min(items.len()));
    let slots: Vec<OnceLock<R>> = items.iter().map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    pool.run(|_ctx| loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= items.len() {
            break;
        }
        let value = f(i, &items[i]);
        if slots[i].set(value).is_err() {
            unreachable!("sweep slot {i} claimed twice");
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("sweep job dropped without a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parallel_matches_serial_in_order() {
        let items: Vec<u64> = (0..257).collect();
        let f = |i: usize, &x: &u64| -> u64 { x * x + i as u64 };
        let serial = map_serial(&items, f);
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(map_with(threads, &items, f), serial, "threads={threads}");
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let n = 100;
        let counters: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let items: Vec<usize> = (0..n).collect();
        let out = map_with(7, &items, |i, &x| {
            counters[i].fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out, items);
        assert!(counters.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(map_with(8, &empty, |_, &x| x).is_empty());
        assert_eq!(map_with(8, &[41u32], |_, &x| x + 1), vec![42]);
    }

    #[test]
    fn nested_maps_use_distinct_pools() {
        let outer: Vec<usize> = (0..4).collect();
        let sums = map_with(2, &outer, |_, &base| {
            let inner: Vec<usize> = (0..8).collect();
            map_with(2, &inner, |_, &x| base * 100 + x)
                .iter()
                .sum::<usize>()
        });
        let expect: Vec<usize> = (0..4)
            .map(|b| (0..8).map(|x| b * 100 + x).sum::<usize>())
            .collect();
        assert_eq!(sums, expect);
    }

    #[test]
    fn sweep_threads_parsing() {
        assert_eq!(parse_sweep_threads("4"), Ok(4));
        assert_eq!(parse_sweep_threads(" 12 "), Ok(12));
        assert!(parse_sweep_threads("").is_ok(), "empty means unset");
        assert_eq!(parse_sweep_threads("0"), Err("0"));
        assert_eq!(parse_sweep_threads("O"), Err("O"));
        assert_eq!(parse_sweep_threads("-3"), Err("-3"));
        assert_eq!(parse_sweep_threads("4.5"), Err("4.5"));
    }

    #[test]
    fn job_panic_propagates() {
        let items: Vec<usize> = (0..16).collect();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            map_with(4, &items, |_, &x| {
                if x == 9 {
                    panic!("job failure");
                }
                x
            })
        }));
        assert!(r.is_err());
    }
}
