//! Parallel sweep harness for the experiment drivers.
//!
//! Every figure is a cross-product — (variant × graph × thread-grid) — of
//! *independent, pure* simulation jobs. This module fans those jobs out
//! over `mic-runtime`'s own [`ThreadPool`] (the reproduction's parallel
//! runtime drives its own evaluation) while keeping the output
//! **deterministic**: each job writes its result into the slot indexed by
//! its input position, so the assembled vector is identical for any worker
//! count and any interleaving — bit-for-bit equal to the serial reference
//! (see `tests/sweep_determinism.rs`).
//!
//! Worker count comes from `MIC_SWEEP_THREADS` (default: the machine's
//! available parallelism, capped at 16). `MIC_SWEEP_THREADS=1` forces the
//! plain serial loop, which is also used automatically for empty and
//! single-item inputs.
//!
//! Two failure disciplines:
//!
//! - **Strict** ([`map`], [`map_with`]): a panicking job propagates to the
//!   caller, as a plain `rayon`-style harness would. Used where a partial
//!   result is useless (workload construction).
//! - **Resilient** ([`try_map`], [`map_degraded`]): every job runs
//!   panic-isolated with retry-with-backoff (`MIC_SWEEP_RETRIES`, default
//!   2 retries) and an optional deadline (`MIC_SWEEP_DEADLINE_MS`); a job
//!   that still fails is reported as a structured [`JobFailure`] — the
//!   sweep completes every other point. The deadline is *cooperative*: a
//!   wedged job is detected when it returns (its result is discarded and
//!   the attempt counts as failed), not cancelled mid-flight. This path is
//!   also the only one subject to `MIC_FAULT` injection (see
//!   [`crate::fault`]), so figure sweeps degrade under chaos testing while
//!   workload builders stay exact.
//!
//! Jobs may themselves run parallel regions on *other* pools (the native
//! kernels in `experiments::extras` do); cross-pool nesting is supported
//! by the runtime. A job must not call back into the sweep that spawned
//! it, but nested `sweep::map` calls are fine — each map drives its own
//! pool.

use crate::fault::{self, Fault, FaultClass, FaultPlan};
use mic_runtime::ThreadPool;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Worker count for [`map`]: the installed [`crate::config`]'s
/// `sweep_threads` (from `MIC_SWEEP_THREADS` or the builder), otherwise
/// available parallelism capped at 16. A set-but-unusable env value
/// (unparsable, or `0`) is rejected with a one-line warning on stderr —
/// silently falling back used to make `MIC_SWEEP_THREADS=O` typos
/// indistinguishable from the default.
pub fn default_threads() -> usize {
    crate::config::current().effective_sweep_threads()
}

// ---------------------------------------------------------------------------
// Failure records.

/// Why a sweep job ultimately failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FailureCause {
    /// The job panicked; the payload message is kept.
    Panic(String),
    /// The job returned, but only after its cooperative deadline.
    Deadline { limit_ms: u64 },
}

impl FailureCause {
    /// Short machine-readable kind ("panic" / "deadline") for JSON output.
    pub fn kind(&self) -> &'static str {
        match self {
            FailureCause::Panic(_) => "panic",
            FailureCause::Deadline { .. } => "deadline",
        }
    }
}

impl std::fmt::Display for FailureCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureCause::Panic(msg) => write!(f, "panic: {msg}"),
            FailureCause::Deadline { limit_ms } => {
                write!(f, "deadline: exceeded {limit_ms} ms")
            }
        }
    }
}

/// One sweep point that failed every attempt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobFailure {
    /// Input index of the failed job.
    pub point: usize,
    /// What went wrong on the final attempt.
    pub cause: FailureCause,
    /// Total attempts made (1 + retries).
    pub attempts: u32,
}

impl std::fmt::Display for JobFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "point {}: {} after {} attempt(s)",
            self.point, self.cause, self.attempts
        )
    }
}

/// Result of a resilient sweep: per-point values (`None` where the job
/// failed every attempt) plus the structured failure records, in point
/// order.
#[derive(Debug)]
pub struct SweepReport<R> {
    pub results: Vec<Option<R>>,
    pub failures: Vec<JobFailure>,
}

impl<R> SweepReport<R> {
    /// Replace failed points with `fallback(index)`, consuming the report.
    pub fn into_degraded(self, mut fallback: impl FnMut(usize) -> R) -> Vec<R> {
        self.results
            .into_iter()
            .enumerate()
            .map(|(i, v)| v.unwrap_or_else(|| fallback(i)))
            .collect()
    }

    /// All points succeeded.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Knobs of the resilient path, normally read from the environment
/// ([`SweepCfg::from_env`]) but injectable for tests so parallel test
/// binaries never race on env vars.
#[derive(Clone, Copy, Debug)]
pub struct SweepCfg {
    /// Pool worker count.
    pub threads: usize,
    /// Re-runs after a failed first attempt (`MIC_SWEEP_RETRIES`).
    pub retries: u32,
    /// Cooperative per-attempt deadline (`MIC_SWEEP_DEADLINE_MS`; unset or
    /// 0 = none).
    pub deadline_ms: Option<u64>,
}

impl SweepCfg {
    /// The installed [`crate::config`]'s sweep knobs (env-configured
    /// unless a builder config was installed).
    pub fn from_env() -> SweepCfg {
        SweepCfg::from_config(&crate::config::current())
    }

    /// The sweep knobs of an explicit [`SuiteConfig`](crate::config::SuiteConfig).
    pub fn from_config(cfg: &crate::config::SuiteConfig) -> SweepCfg {
        SweepCfg {
            threads: cfg.effective_sweep_threads(),
            retries: cfg.sweep_retries,
            deadline_ms: cfg.sweep_deadline_ms,
        }
    }
}

// ---------------------------------------------------------------------------
// Global failure registry: figure drivers record their degraded points
// here (labelled with the exhibit being built, see [`with_context`]) and
// the bench binaries drain it for their failure-summary footers and
// `BENCH_sweep.json`.

/// A [`JobFailure`] plus the sweep-context label active when it happened.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecordedFailure {
    /// e.g. `"fig1"` — empty when no context was set.
    pub context: String,
    pub failure: JobFailure,
}

fn registry() -> &'static Mutex<Vec<RecordedFailure>> {
    static REGISTRY: OnceLock<Mutex<Vec<RecordedFailure>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Drain every failure recorded (by [`map_degraded`]) since the last call.
pub fn take_failures() -> Vec<RecordedFailure> {
    std::mem::take(&mut *registry().lock().unwrap_or_else(|e| e.into_inner()))
}

thread_local! {
    static CONTEXT: std::cell::RefCell<String> = const { std::cell::RefCell::new(String::new()) };
}

/// Run `f` with `label` as the sweep-context label (attached to any
/// failure recorded on this thread). Restores the previous label.
pub fn with_context<R>(label: &str, f: impl FnOnce() -> R) -> R {
    let previous = CONTEXT.with(|c| std::mem::replace(&mut *c.borrow_mut(), label.to_string()));
    let result = f();
    CONTEXT.with(|c| *c.borrow_mut() = previous);
    result
}

fn current_context() -> String {
    CONTEXT.with(|c| c.borrow().clone())
}

// ---------------------------------------------------------------------------
// Strict maps.

/// `f` applied to every item, results in input order, fanned out over
/// [`default_threads`] workers. Strict: a job panic propagates (after the
/// other jobs finish); never subject to fault injection.
pub fn map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send + Sync,
    F: Fn(usize, &T) -> R + Sync,
{
    map_with(default_threads(), items, f)
}

/// The serial reference: a plain in-order loop. [`map_with`] must produce
/// exactly this, for any worker count.
pub fn map_serial<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    F: Fn(usize, &T) -> R,
{
    items.iter().enumerate().map(|(i, t)| f(i, t)).collect()
}

/// `f` applied to every item on `threads` pool workers, results in input
/// order. Jobs are claimed dynamically (an atomic cursor), so stragglers
/// do not serialize the sweep; each result lands in its input-index slot,
/// making the output independent of the execution interleaving.
///
/// Strict failure discipline: if any job panicked, this panics with a
/// message naming the job and cause (a dropped-without-result slot is
/// re-run serially first, so it can no longer abort the process with an
/// anonymous `expect`).
pub fn map_with<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send + Sync,
    F: Fn(usize, &T) -> R + Sync,
{
    let cfg = SweepCfg {
        threads,
        retries: 0,
        deadline_ms: None,
    };
    let report = run_report(&cfg, None, None, items, &f);
    if let Some(failure) = report.failures.first() {
        panic!("sweep job failed ({failure})");
    }
    report
        .results
        .into_iter()
        .map(|s| s.expect("no failure recorded, so every slot is filled"))
        .collect()
}

// ---------------------------------------------------------------------------
// Resilient maps.

/// Resilient sweep with the environment configuration: every job runs
/// panic-isolated with retry/backoff and the optional deadline; failed
/// points come back as [`JobFailure`] records instead of aborting the
/// sweep. Subject to `MIC_FAULT` injection.
pub fn try_map<T, R, F>(items: &[T], f: F) -> SweepReport<R>
where
    T: Sync,
    R: Send + Sync,
    F: Fn(usize, &T) -> R + Sync,
{
    fault::init_from_env();
    crate::metrics::init_from_env();
    try_map_cfg(&SweepCfg::from_env(), items, f)
}

/// [`try_map`] with an explicit configuration (tests use this to avoid
/// racing on process-global environment variables).
pub fn try_map_cfg<T, R, F>(cfg: &SweepCfg, items: &[T], f: F) -> SweepReport<R>
where
    T: Sync,
    R: Send + Sync,
    F: Fn(usize, &T) -> R + Sync,
{
    run_report(cfg, fault::active(), None, items, &f)
}

/// [`try_map_cfg`] fanned over a caller-owned [`ThreadPool`] instead of a
/// pool created per call. Long-lived consumers (the `mic-serve` batch
/// executor) run every sweep on one shared pool, so requests share warm
/// worker threads rather than paying a pool spawn per batch.
/// `cfg.threads` is ignored for fan-out (the pool's worker count rules);
/// retry/deadline semantics are identical to [`try_map_cfg`].
pub fn try_map_shared<T, R, F>(
    pool: &ThreadPool,
    cfg: &SweepCfg,
    items: &[T],
    f: F,
) -> SweepReport<R>
where
    T: Sync,
    R: Send + Sync,
    F: Fn(usize, &T) -> R + Sync,
{
    fault::init_from_env();
    crate::metrics::init_from_env();
    run_report(cfg, fault::active(), Some(pool), items, &f)
}

/// Resilient sweep for figure drivers: failed points degrade to
/// `fallback(index, item)` (typically NaN-shaped), the failures are
/// recorded in the global registry under the current [`with_context`]
/// label, and the sweep always returns a full-length vector.
pub fn map_degraded<T, R, F, G>(items: &[T], f: F, fallback: G) -> Vec<R>
where
    T: Sync,
    R: Send + Sync,
    F: Fn(usize, &T) -> R + Sync,
    G: Fn(usize, &T) -> R,
{
    let report = try_map(items, f);
    if !report.failures.is_empty() {
        let context = current_context();
        let label = if context.is_empty() {
            "sweep"
        } else {
            &context
        };
        for failure in &report.failures {
            eprintln!("mic-eval: {label}: degraded {failure}");
        }
        let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        reg.extend(report.failures.iter().map(|failure| RecordedFailure {
            context: context.clone(),
            failure: failure.clone(),
        }));
    }
    report.into_degraded(|i| fallback(i, &items[i]))
}

// ---------------------------------------------------------------------------
// The engine shared by both disciplines.

type Slot<R> = OnceLock<Result<R, JobFailure>>;

/// Run every job once (strict: `retries == 0`, no plan) or with the
/// resilient attempt loop, fanned over a pool (`shared` if given, else a
/// fresh pool sized by `cfg.threads`), then serially re-run any slot left
/// empty (worker-level faults can abort a pool region before every job is
/// claimed). The output is in input order either way.
fn run_report<T, R, F>(
    cfg: &SweepCfg,
    plan: Option<Arc<FaultPlan>>,
    shared: Option<&ThreadPool>,
    items: &[T],
    f: &F,
) -> SweepReport<R>
where
    T: Sync,
    R: Send + Sync,
    F: Fn(usize, &T) -> R + Sync,
{
    let plan = plan.as_deref();
    let slots: Vec<Slot<R>> = items.iter().map(|_| OnceLock::new()).collect();
    let parallel = items.len() > 1 && (shared.is_some() || cfg.threads > 1);
    if parallel {
        let fresh;
        let pool = match shared {
            Some(p) => p,
            None => {
                fresh = ThreadPool::new(cfg.threads.min(items.len()));
                &fresh
            }
        };
        let next = AtomicUsize::new(0);
        // Worker-level faults (or a job panic on the strict path, where
        // `run_attempts` does not retry but still isolates) may abort the
        // region; the serial sweep below fills whatever was left.
        let _ = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(|_ctx| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let outcome = run_attempts(cfg, plan, i, &items[i], f);
                if slots[i].set(outcome).is_err() {
                    unreachable!("sweep slot {i} claimed twice");
                }
            });
        }));
    }
    // Serial pass: everything (single-threaded / tiny inputs), or only the
    // gaps a faulted pool region left behind. No pool is involved, so
    // worker faults cannot starve this pass — the sweep always completes.
    for (i, slot) in slots.iter().enumerate() {
        if slot.get().is_none() {
            let _ = slot.set(run_attempts(cfg, plan, i, &items[i], f));
        }
    }
    let mut results = Vec::with_capacity(items.len());
    let mut failures = Vec::new();
    for slot in slots {
        match slot.into_inner().expect("all slots filled above") {
            Ok(v) => results.push(Some(v)),
            Err(failure) => {
                failures.push(failure);
                results.push(None);
            }
        }
    }
    SweepReport { results, failures }
}

/// One job through the attempt loop: injection, panic isolation, the
/// cooperative deadline, and exponential backoff between attempts.
fn run_attempts<T, R, F>(
    cfg: &SweepCfg,
    plan: Option<&FaultPlan>,
    i: usize,
    item: &T,
    f: &F,
) -> Result<R, JobFailure>
where
    F: Fn(usize, &T) -> R,
{
    let metrics_on = crate::metrics::enabled();
    if metrics_on {
        sweep_counter("mic_sweep_jobs_total", "Sweep jobs started.").inc();
    }
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        if metrics_on && attempts > 1 {
            sweep_counter("mic_sweep_retries_total", "Sweep job re-attempts.").inc();
        }
        let injected = plan.and_then(|p| job_fault(p, i as u64, (attempts - 1) as u64));
        if let Some((class, _)) = injected {
            fault::count_injection_at(class, i as u64);
        }
        let injected = injected.map(|(_, fault)| fault);
        let started = Instant::now();
        let outcome: Result<R, Box<dyn std::any::Any + Send>> = match injected {
            Some(Fault::Panic) => Err(Box::new(format!(
                "mic-fault: injected job-panic at sweep point {i} (attempt {attempts})"
            ))),
            Some(Fault::SleepMs(ms)) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                panic::catch_unwind(AssertUnwindSafe(|| f(i, item)))
            }
            Some(Fault::Die) | None => panic::catch_unwind(AssertUnwindSafe(|| f(i, item))),
        };
        let cause = match outcome {
            Ok(value) => {
                let elapsed_ms = started.elapsed().as_millis() as u64;
                match cfg.deadline_ms {
                    Some(limit_ms) if elapsed_ms > limit_ms => {
                        // Cooperative deadline: the value arrived too late
                        // to trust a live sweep with, so it is discarded
                        // and the attempt counts as failed.
                        if metrics_on {
                            sweep_counter(
                                "mic_sweep_deadline_hits_total",
                                "Attempts whose result arrived after the cooperative deadline.",
                            )
                            .inc();
                        }
                        FailureCause::Deadline { limit_ms }
                    }
                    _ => return Ok(value),
                }
            }
            Err(payload) => FailureCause::Panic(payload_message(&payload)),
        };
        if attempts > cfg.retries {
            if metrics_on {
                crate::metrics::counter(
                    "mic_sweep_failures_total",
                    "Sweep jobs that failed every attempt, by final cause.",
                    &[("cause", cause.kind())],
                )
                .inc();
            }
            if mic_obs::enabled() {
                mic_obs::flight::record(
                    mic_obs::flight::EventKind::SweepFailure,
                    i as u64,
                    attempts as u64,
                    0,
                );
            }
            return Err(JobFailure {
                point: i,
                cause,
                attempts,
            });
        }
        // 10ms, 20ms, 40ms, ... capped — enough to ride out transient
        // contention without stretching a chaos run into minutes.
        let backoff_ms = (10u64 << (attempts - 1).min(4)).min(100);
        std::thread::sleep(std::time::Duration::from_millis(backoff_ms));
    }
}

/// Unlabeled sweep counter (all labeled families go through
/// [`crate::metrics::counter`] directly).
fn sweep_counter(name: &str, help: &'static str) -> std::sync::Arc<mic_metrics::Counter> {
    crate::metrics::counter(name, help, &[])
}

/// The job-site fault decision: the first matching job class wins. The
/// class rides along so the injection can be counted per class.
fn job_fault(plan: &FaultPlan, site: u64, attempt: u64) -> Option<(FaultClass, Fault)> {
    for class in [
        FaultClass::JobPanic,
        FaultClass::JobStall,
        FaultClass::JobSlow,
    ] {
        if let Some(fault) = plan.decide(class, site, attempt) {
            return Some((class, fault));
        }
    }
    None
}

fn payload_message(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn cfg(threads: usize, retries: u32, deadline_ms: Option<u64>) -> SweepCfg {
        SweepCfg {
            threads,
            retries,
            deadline_ms,
        }
    }

    #[test]
    fn parallel_matches_serial_in_order() {
        let items: Vec<u64> = (0..257).collect();
        let f = |i: usize, &x: &u64| -> u64 { x * x + i as u64 };
        let serial = map_serial(&items, f);
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(map_with(threads, &items, f), serial, "threads={threads}");
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let n = 100;
        let counters: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let items: Vec<usize> = (0..n).collect();
        let out = map_with(7, &items, |i, &x| {
            counters[i].fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out, items);
        assert!(counters.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(map_with(8, &empty, |_, &x| x).is_empty());
        assert_eq!(map_with(8, &[41u32], |_, &x| x + 1), vec![42]);
    }

    #[test]
    fn nested_maps_use_distinct_pools() {
        let outer: Vec<usize> = (0..4).collect();
        let sums = map_with(2, &outer, |_, &base| {
            let inner: Vec<usize> = (0..8).collect();
            map_with(2, &inner, |_, &x| base * 100 + x)
                .iter()
                .sum::<usize>()
        });
        let expect: Vec<usize> = (0..4)
            .map(|b| (0..8).map(|x| b * 100 + x).sum::<usize>())
            .collect();
        assert_eq!(sums, expect);
    }

    // MIC_SWEEP_THREADS grammar is pinned in `crate::env::tests`
    // (`positive_usize_grammar`), where the shared parser now lives.

    #[test]
    fn job_panic_propagates() {
        let items: Vec<usize> = (0..16).collect();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            map_with(4, &items, |_, &x| {
                if x == 9 {
                    panic!("job failure");
                }
                x
            })
        }));
        let msg = payload_message(&r.unwrap_err());
        assert!(
            msg.contains("point 9") && msg.contains("job failure"),
            "strict map must name the failed job: {msg}"
        );
    }

    #[test]
    fn try_map_isolates_panics_and_reports_once() {
        let items: Vec<usize> = (0..32).collect();
        for threads in [1, 4] {
            let report = try_map_cfg(&cfg(threads, 0, None), &items, |_, &x| {
                if x == 5 || x == 20 {
                    panic!("bad point {x}");
                }
                x * 2
            });
            assert_eq!(report.results.len(), 32);
            let failed: Vec<usize> = report.failures.iter().map(|f| f.point).collect();
            assert_eq!(failed, vec![5, 20], "threads={threads}");
            for f in &report.failures {
                assert_eq!(f.attempts, 1);
                assert!(matches!(&f.cause, FailureCause::Panic(m) if m.contains("bad point")));
            }
            for (i, v) in report.results.iter().enumerate() {
                if i == 5 || i == 20 {
                    assert!(v.is_none());
                } else {
                    assert_eq!(*v, Some(i * 2));
                }
            }
        }
    }

    #[test]
    fn retries_retry_and_then_give_up() {
        let tries = AtomicUsize::new(0);
        let report = try_map_cfg(&cfg(1, 2, None), &[()], |_, _| {
            // Fails twice, succeeds on the third attempt.
            if tries.fetch_add(1, Ordering::SeqCst) < 2 {
                panic!("transient");
            }
            7u32
        });
        assert!(report.is_complete());
        assert_eq!(report.results, vec![Some(7)]);
        assert_eq!(tries.load(Ordering::SeqCst), 3);

        let report = try_map_cfg(&cfg(1, 2, None), &[()], |_, _| -> u32 {
            panic!("permanent")
        });
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].attempts, 3, "1 attempt + 2 retries");
    }

    #[test]
    fn deadline_discards_late_results() {
        let report = try_map_cfg(&cfg(1, 0, Some(5)), &[30u64, 0], |_, &ms| {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            ms * 10
        });
        assert_eq!(report.results[0], None, "late result must be discarded");
        assert_eq!(report.results[1], Some(0));
        assert_eq!(
            report.failures,
            vec![JobFailure {
                point: 0,
                cause: FailureCause::Deadline { limit_ms: 5 },
                attempts: 1
            }]
        );
    }

    #[test]
    fn map_degraded_fills_fallbacks_and_records() {
        let _ = take_failures();
        let items: Vec<usize> = (0..8).collect();
        let out = with_context("unit-test", || {
            crate::fault::with_plan(
                FaultPlan::at_index(1, crate::fault::FaultClass::JobPanic, 3),
                || map_degraded(&items, |_, &x| x as f64, |_, _| f64::NAN),
            )
        });
        assert_eq!(out.len(), 8);
        assert!(out[3].is_nan(), "failed point degrades to the fallback");
        assert!(out
            .iter()
            .enumerate()
            .all(|(i, v)| i == 3 || *v == i as f64));
        let recorded = take_failures();
        assert_eq!(recorded.len(), 1);
        assert_eq!(recorded[0].context, "unit-test");
        assert_eq!(recorded[0].failure.point, 3);
        assert_eq!(
            recorded[0].failure.attempts, 3,
            "targeted faults exhaust retries"
        );
        assert!(take_failures().is_empty(), "take drains the registry");
    }

    #[test]
    fn shared_pool_matches_serial_and_is_reusable() {
        let pool = ThreadPool::new(4);
        let items: Vec<u64> = (0..97).collect();
        let f = |i: usize, &x: &u64| x * 3 + i as u64;
        let serial = map_serial(&items, f);
        for _ in 0..3 {
            let report = try_map_shared(&pool, &cfg(1, 0, None), &items, f);
            assert!(report.is_complete());
            let got: Vec<u64> = report.results.into_iter().map(|v| v.unwrap()).collect();
            assert_eq!(got, serial);
        }
        // Panic isolation holds on the shared pool too, and the pool
        // survives for the next batch.
        let report = try_map_shared(&pool, &cfg(1, 0, None), &items, |_, &x| {
            if x == 13 {
                panic!("bad point");
            }
            x
        });
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].point, 13);
        assert!(try_map_shared(&pool, &cfg(1, 0, None), &items, f).is_complete());
    }

    #[test]
    fn strict_map_ignores_fault_injection() {
        let items: Vec<usize> = (0..16).collect();
        let out = crate::fault::with_plan(
            FaultPlan::with_rate(9, crate::fault::FaultClass::JobPanic, 1.0),
            || map_with(4, &items, |_, &x| x + 1),
        );
        assert_eq!(out, (1..=16).collect::<Vec<_>>());
    }

    #[test]
    fn injected_panics_hit_try_map_deterministically() {
        let items: Vec<usize> = (0..64).collect();
        let plan = FaultPlan::with_rate(77, crate::fault::FaultClass::JobPanic, 0.25);
        let run = || {
            crate::fault::with_plan(plan.clone(), || {
                try_map_cfg(&cfg(4, 0, None), &items, |_, &x| x)
            })
        };
        let a = run();
        let b = run();
        assert!(!a.failures.is_empty(), "rate 0.25 over 64 jobs must fire");
        assert_eq!(a.failures, b.failures, "same seed, same failed points");
        let fail_set: Vec<usize> = a.failures.iter().map(|f| f.point).collect();
        for (i, v) in a.results.iter().enumerate() {
            assert_eq!(v.is_none(), fail_set.contains(&i));
        }
    }
}
