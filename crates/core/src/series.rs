//! Figure/series containers and text rendering.

/// One curve: a label and y-values over the shared x-grid of its figure.
#[derive(Clone, Debug)]
pub struct Series {
    pub label: String,
    pub y: Vec<f64>,
}

impl Series {
    pub fn new(label: impl Into<String>, y: Vec<f64>) -> Self {
        Series {
            label: label.into(),
            y,
        }
    }

    /// Peak value and the x-index where it occurs.
    pub fn peak(&self) -> (usize, f64) {
        self.y
            .iter()
            .copied()
            .enumerate()
            .fold(
                (0, f64::NEG_INFINITY),
                |acc, (i, v)| if v > acc.1 { (i, v) } else { acc },
            )
    }
}

/// A figure: an x-grid (thread counts, usually) plus several series.
#[derive(Clone, Debug)]
pub struct Figure {
    pub title: String,
    pub xlabel: String,
    pub ylabel: String,
    pub x: Vec<usize>,
    pub series: Vec<Series>,
}

impl Figure {
    pub fn new(title: impl Into<String>, x: Vec<usize>) -> Self {
        Figure {
            title: title.into(),
            xlabel: "number of threads".into(),
            ylabel: "speedup".into(),
            x,
            series: Vec::new(),
        }
    }

    /// Add a curve; its length must match the x-grid.
    pub fn push(&mut self, s: Series) {
        assert_eq!(
            s.y.len(),
            self.x.len(),
            "series '{}' length mismatch",
            s.label
        );
        self.series.push(s);
    }

    /// Find a series by label.
    pub fn get(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// Render as a fixed-width ASCII table (x rows, one column per series).
    pub fn to_ascii(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {}\n", self.title));
        out.push_str(&format!("# y: {}\n", self.ylabel));
        let w = 22usize;
        out.push_str(&format!(
            "{:>8}",
            self.xlabel.split_whitespace().last().unwrap_or("x")
        ));
        for s in &self.series {
            let lbl = if s.label.len() > w {
                &s.label[..w]
            } else {
                &s.label
            };
            out.push_str(&format!(" {lbl:>w$}"));
        }
        out.push('\n');
        for (i, &x) in self.x.iter().enumerate() {
            out.push_str(&format!("{x:>8}"));
            for s in &self.series {
                out.push_str(&format!(" {:>w$.2}", s.y[i]));
            }
            out.push('\n');
        }
        out
    }

    /// Render as a self-contained gnuplot script (inline data blocks);
    /// pipe to `gnuplot` to get a PNG next to the paper's figure.
    pub fn to_gnuplot(&self, output_png: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "set terminal pngcairo size 800,600
set output '{output_png}'
"
        ));
        out.push_str(&format!(
            "set title \"{}\"
set xlabel \"{}\"
set ylabel \"{}\"
set key top left
",
            self.title.replace('"', "'"),
            self.xlabel,
            self.ylabel
        ));
        let plots: Vec<String> = self
            .series
            .iter()
            .map(|s| {
                format!(
                    "'-' using 1:2 with linespoints title \"{}\"",
                    s.label.replace('"', "'")
                )
            })
            .collect();
        out.push_str(&format!(
            "plot {}
",
            plots.join(", ")
        ));
        for s in &self.series {
            for (&x, &y) in self.x.iter().zip(&s.y) {
                out.push_str(&format!(
                    "{x} {y}
"
                ));
            }
            out.push_str(
                "e
",
            );
        }
        out
    }

    /// Render as CSV (`x,label1,label2,...`).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push('x');
        for s in &self.series {
            out.push(',');
            out.push_str(&s.label.replace(',', ";"));
        }
        out.push('\n');
        for (i, &x) in self.x.iter().enumerate() {
            out.push_str(&x.to_string());
            for s in &self.series {
                out.push_str(&format!(",{:.4}", s.y[i]));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Figure {
        let mut f = Figure::new("demo", vec![1, 11, 21]);
        f.push(Series::new("a", vec![1.0, 9.5, 17.0]));
        f.push(Series::new("b", vec![1.0, 8.0, 21.5]));
        f
    }

    #[test]
    fn ascii_contains_all_points() {
        let t = sample().to_ascii();
        assert!(t.contains("demo"));
        assert!(t.contains("9.50"));
        assert!(t.contains("21.50"));
        assert_eq!(t.lines().count(), 2 + 1 + 3);
    }

    #[test]
    fn csv_roundtrips_grid() {
        let c = sample().to_csv();
        let lines: Vec<&str> = c.lines().collect();
        assert_eq!(lines[0], "x,a,b");
        assert!(lines[1].starts_with("1,"));
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn gnuplot_script_well_formed() {
        let g = sample().to_gnuplot("out.png");
        assert!(g.contains("set output 'out.png'"));
        assert!(g.contains("plot "));
        // One inline data block terminator per series.
        assert_eq!(g.matches("\ne\n").count(), 2);
        assert!(g.contains("1 1"));
    }

    #[test]
    fn peak_found() {
        let f = sample();
        assert_eq!(f.get("a").unwrap().peak(), (2, 17.0));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_series_rejected() {
        let mut f = Figure::new("x", vec![1, 2]);
        f.push(Series::new("bad", vec![1.0]));
    }
}
