//! mic-trace export layer: Chrome `trace_event` JSON and stall-attribution
//! tables on top of the simulator's [`TraceSink`](mic_sim::TraceSink)
//! telemetry and the runtime's native event capture.
//!
//! Two consumers are served:
//!
//! - **Timelines** — [`chrome_trace_json`] renders recorded simulation
//!   traces (one process lane per traced run, one thread lane per simulated
//!   hardware thread, chunks colored by their attributed stall cause) plus
//!   any native scheduling events into the Chrome `trace_event` format, so
//!   a run can be opened in `chrome://tracing` or Perfetto. Set the
//!   `MIC_TRACE` environment variable to a file path to make the bench
//!   binaries write one (see [`trace_path`]).
//! - **Tables** — [`stall_sweep`] runs the engine's bottleneck telemetry
//!   for *every* point of a (config × thread-grid) sweep and returns a
//!   [`StallTable`], the per-point "why" breakdown behind each figure. The
//!   sweep fans out over [`crate::sweep`] and is deterministic: the table
//!   is bit-identical for any worker count.
//!
//! Simulated timestamps are in **cycles**, written directly into the
//! trace's microsecond fields (the viewer's time unit is nominal; relative
//! magnitudes are what matter). Native events are real microseconds on a
//! separate process lane, so the two clocks never mix in one lane.

use crate::sweep;
use mic_runtime::trace::{NativeEvent, NativeEventKind};
use mic_sim::trace::RegionTrace;
use mic_sim::{
    simulate_region_telemetry, simulate_traced, Bottleneck, Machine, RecordingSink, Region,
    SimReport, SimScratch, StallCause,
};
use std::path::{Path, PathBuf};

/// The trace output file requested via `MIC_TRACE` (through
/// [`crate::config`]), if any. Unset, empty and `0` all mean "tracing
/// off".
pub fn trace_path() -> Option<PathBuf> {
    crate::config::current().trace.clone()
}

/// One traced simulation run: a labeled sequence of region traces, shown
/// as its own process lane in the Chrome export.
#[derive(Clone, Debug)]
pub struct TracePart {
    /// Lane label, e.g. `"coloring hood omp-dynamic t=121"`.
    pub label: String,
    /// Simulated thread count (lane count in the viewer).
    pub threads: usize,
    /// Per-region traces, in simulation order.
    pub regions: Vec<RegionTrace>,
}

/// Simulate `regions` with recording enabled and return both the ordinary
/// report and the captured trace as a labeled part.
pub fn trace_simulation(
    label: &str,
    m: &Machine,
    threads: usize,
    regions: &[Region],
) -> (SimReport, TracePart) {
    let mut sink = RecordingSink::default();
    let mut scratch = SimScratch::new();
    let report = simulate_traced(m, threads, regions, &mut scratch, &mut sink);
    (
        report,
        TracePart {
            label: label.to_string(),
            threads,
            regions: sink.regions,
        },
    )
}

/// Total cycles and cycle-weighted bottleneck breakdown of a multi-region
/// workload at one thread count — the aggregation behind the `why` binary,
/// shared so tables and binaries agree by construction.
pub fn aggregate_breakdown(m: &Machine, threads: usize, regions: &[Region]) -> (f64, Bottleneck) {
    let mut total = 0.0;
    let mut acc = [0.0f64; 7];
    for r in regions {
        let (c, b) = simulate_region_telemetry(m, threads, r);
        total += c;
        for (slot, (_, v)) in acc.iter_mut().zip(b.components()) {
            *slot += v * c;
        }
    }
    if total > 0.0 {
        for v in &mut acc {
            *v /= total;
        }
    }
    let [latency, issue, fpu, l2_bandwidth, dram_bandwidth, atomics, background] = acc;
    (
        total,
        Bottleneck {
            latency,
            issue,
            fpu,
            l2_bandwidth,
            dram_bandwidth,
            atomics,
            background,
        },
    )
}

/// One sweep point with its attribution breakdown.
#[derive(Clone, Debug)]
pub struct StallPoint {
    pub label: String,
    pub threads: usize,
    pub cycles: f64,
    pub breakdown: Bottleneck,
}

/// The per-point stall-attribution table of a sweep.
#[derive(Clone, Debug, Default)]
pub struct StallTable {
    pub points: Vec<StallPoint>,
}

impl StallTable {
    /// Render as a fixed-width ASCII table, one row per sweep point.
    pub fn to_ascii(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<40} {:>7} {:>14} {:<14} {:>5} {:>5} {:>5} {:>5} {:>5} {:>5} {:>5}\n",
            "config",
            "threads",
            "cycles",
            "bound-by",
            "lat%",
            "iss%",
            "fpu%",
            "l2bw%",
            "dram%",
            "atom%",
            "bg%",
        ));
        for p in &self.points {
            let b = &p.breakdown;
            out.push_str(&format!(
                "{:<40} {:>7} {:>14.0} {:<14} {:>5.1} {:>5.1} {:>5.1} {:>5.1} {:>5.1} {:>5.1} {:>5.1}\n",
                p.label,
                p.threads,
                p.cycles,
                b.dominant(),
                b.latency * 100.0,
                b.issue * 100.0,
                b.fpu * 100.0,
                b.l2_bandwidth * 100.0,
                b.dram_bandwidth * 100.0,
                b.atomics * 100.0,
                b.background * 100.0,
            ));
        }
        out
    }
}

/// Stall-attribution breakdown for every (config × thread-grid) point,
/// computed in parallel over the sweep harness with deterministic output.
pub fn stall_sweep(m: &Machine, grid: &[usize], configs: &[(String, Vec<Region>)]) -> StallTable {
    stall_sweep_with(sweep::default_threads(), m, grid, configs)
}

/// [`stall_sweep`] with an explicit sweep worker count (the table is
/// identical for any count; tests pin that).
pub fn stall_sweep_with(
    workers: usize,
    m: &Machine,
    grid: &[usize],
    configs: &[(String, Vec<Region>)],
) -> StallTable {
    let jobs: Vec<(usize, usize)> = configs
        .iter()
        .enumerate()
        .flat_map(|(ci, _)| grid.iter().map(move |&t| (ci, t)))
        .collect();
    let points = sweep::map_with(workers, &jobs, |_, &(ci, t)| {
        let (label, regions) = &configs[ci];
        let (cycles, breakdown) = aggregate_breakdown(m, t, regions);
        StallPoint {
            label: label.clone(),
            threads: t,
            cycles,
            breakdown,
        }
    });
    StallTable { points }
}

// ---------------------------------------------------------------------------
// Chrome trace_event export
// ---------------------------------------------------------------------------

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// JSON number: finite floats render via Rust's shortest round-trip
/// `Display` (always valid JSON); non-finite values must not reach the
/// export (the engine asserts) but degrade to 0 rather than emit `NaN`.
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".into()
    }
}

fn meta_event(out: &mut Vec<String>, what: &str, pid: usize, tid: usize, name: &str) {
    out.push(format!(
        "{{\"name\":\"{what}\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":\"{}\"}}}}",
        escape_json(name)
    ));
}

/// Render traced simulations and native runtime events as one Chrome
/// `trace_event` JSON document (load in `chrome://tracing` or Perfetto).
///
/// Each [`TracePart`] becomes a process lane (pid = part index + 1): one
/// thread lane per simulated hardware thread showing its chunks (named by
/// iteration range, with the attributed stall cause in `args`), a `region`
/// lane spanning each region under its policy name, and a counter track
/// with the per-cause cycle totals at each region boundary. Native events,
/// if any, go on one further process lane in real microseconds.
pub fn chrome_trace_json(parts: &[TracePart], native: &[NativeEvent]) -> String {
    chrome_trace_json_with_spans(parts, native, &[])
}

/// [`chrome_trace_json`] plus a "requests" process lane rendering per-
/// request spans from the [`mic_obs`] span store: one timeline row per
/// serving shard (row 0 for spans with no shard), each span an `X` event
/// named by its kind with the trace/span/parent ids in `args`.
pub fn chrome_trace_json_with_spans(
    parts: &[TracePart],
    native: &[NativeEvent],
    spans: &[mic_obs::span::Span],
) -> String {
    let mut ev: Vec<String> = Vec::new();
    for (pi, part) in parts.iter().enumerate() {
        let pid = pi + 1;
        meta_event(&mut ev, "process_name", pid, 0, &part.label);
        // Name each simulated thread lane by its placement, recovered from
        // the chunk events (threads that never ran a chunk keep defaults).
        let mut placement: Vec<Option<(usize, usize)>> = vec![None; part.threads];
        for reg in &part.regions {
            for c in &reg.chunks {
                if c.thread < placement.len() {
                    placement[c.thread] = Some((c.core, c.smt_slot));
                }
            }
        }
        for (tid, p) in placement.iter().enumerate() {
            if let Some((core, slot)) = p {
                meta_event(
                    &mut ev,
                    "thread_name",
                    pid,
                    tid,
                    &format!("core {core} smt {slot}"),
                );
            }
        }
        let region_lane = part.threads;
        meta_event(&mut ev, "thread_name", pid, region_lane, "region");
        let mut offset = 0.0f64;
        for (ri, reg) in part.regions.iter().enumerate() {
            let policy = reg.policy.map_or("?", |p| p.name());
            ev.push(format!(
                "{{\"name\":\"{policy}\",\"cat\":\"sim\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{pid},\"tid\":{region_lane},\"args\":{{\"region\":{ri},\"iters\":{},\"threads\":{}}}}}",
                num(offset),
                num(reg.region_cycles),
                reg.iters,
                reg.threads,
            ));
            // The event loop starts after the serial prefix + fork; place
            // chunk events so the barrier gap is visible at the lane tail.
            let loop_offset = offset + (reg.region_cycles - reg.loop_cycles);
            for c in &reg.chunks {
                ev.push(format!(
                    "{{\"name\":\"chunk {}..{}\",\"cat\":\"sim\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{pid},\"tid\":{},\"args\":{{\"cause\":\"{}\",\"region\":{ri}}}}}",
                    c.iter_start,
                    c.iter_end,
                    num(loop_offset + c.start),
                    num(c.end - c.start),
                    c.thread,
                    c.cause.name(),
                ));
            }
            let totals = reg.counter_totals();
            let args: Vec<String> = StallCause::ALL
                .iter()
                .map(|&cause| format!("\"{}\":{}", cause.name(), num(totals.get(cause))))
                .collect();
            ev.push(format!(
                "{{\"name\":\"stall cycles\",\"ph\":\"C\",\"ts\":{},\"pid\":{pid},\"tid\":0,\"args\":{{{}}}}}",
                num(offset + reg.region_cycles),
                args.join(","),
            ));
            offset += reg.region_cycles;
        }
    }
    if !native.is_empty() {
        let pid = parts.len() + 1;
        meta_event(&mut ev, "process_name", pid, 0, "native runtime");
        // One timeline row per (lane, worker) pair. Lane 0 (the default)
        // keeps the bare worker id; serve shard lanes land at
        // `lane * 1024 + worker` and are named "shard-N/worker-M", so two
        // shards' dispatcher pools never interleave on one row.
        let mut rows: Vec<(usize, usize)> = native.iter().map(|e| (e.lane, e.worker)).collect();
        rows.sort_unstable();
        rows.dedup();
        for &(lane, worker) in &rows {
            if lane > 0 {
                meta_event(
                    &mut ev,
                    "thread_name",
                    pid,
                    lane * 1024 + worker,
                    &format!("shard-{}/worker-{worker}", lane - 1),
                );
            }
        }
        let tid = |e: &NativeEvent| {
            if e.lane > 0 {
                e.lane * 1024 + e.worker
            } else {
                e.worker
            }
        };
        for e in native {
            match e.kind {
                NativeEventKind::Chunk { lo, hi } => ev.push(format!(
                    "{{\"name\":\"chunk {lo}..{hi}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{pid},\"tid\":{}}}",
                    e.runtime,
                    num(e.start_us),
                    num(e.end_us - e.start_us),
                    tid(e),
                )),
                NativeEventKind::Region { epoch } => ev.push(format!(
                    "{{\"name\":\"region\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{pid},\"tid\":{},\"args\":{{\"epoch\":{epoch}}}}}",
                    e.runtime,
                    num(e.start_us),
                    num(e.end_us - e.start_us),
                    tid(e),
                )),
                NativeEventKind::Steal { victim } => ev.push(format!(
                    "{{\"name\":\"steal\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{pid},\"tid\":{},\"args\":{{\"victim\":{}}}}}",
                    e.runtime,
                    num(e.start_us),
                    tid(e),
                    if victim == usize::MAX { -1i64 } else { victim as i64 },
                )),
            }
        }
    }
    if !spans.is_empty() {
        let pid = parts.len() + 2;
        meta_event(&mut ev, "process_name", pid, 0, "requests");
        let mut shards: Vec<usize> = spans.iter().filter_map(|s| s.shard).collect();
        shards.sort_unstable();
        shards.dedup();
        for sh in shards {
            meta_event(&mut ev, "thread_name", pid, sh + 1, &format!("shard-{sh}"));
        }
        for sp in spans {
            ev.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"request\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{pid},\"tid\":{},\"args\":{{\"trace\":\"{}\",\"span\":\"{}\",\"parent\":\"{}\"}}}}",
                sp.kind.name(),
                num(sp.start_us),
                num(sp.end_us - sp.start_us),
                sp.shard.map_or(0, |sh| sh + 1),
                mic_obs::trace_hex(sp.trace),
                mic_obs::span_hex(sp.id),
                mic_obs::span_hex(sp.parent),
            ));
        }
    }
    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n{}\n]}}\n",
        ev.join(",\n")
    )
}

/// Write [`chrome_trace_json`] to `path`, creating parent directories.
pub fn write_chrome_trace(
    path: &Path,
    parts: &[TracePart],
    native: &[NativeEvent],
) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(path, chrome_trace_json(parts, native))
}

// ---------------------------------------------------------------------------
// Minimal JSON validator (no dependency, no value tree): used by tests and
// the `trace --check` smoke step to prove the emitted file parses.
// ---------------------------------------------------------------------------

/// Check that `s` is one syntactically complete JSON value. Returns the
/// byte offset of the first problem on failure.
pub fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut i = 0usize;
    skip_ws(b, &mut i);
    value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing data at byte {i}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while matches!(b.get(*i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
        *i += 1;
    }
}

fn expect(b: &[u8], i: &mut usize, c: u8) -> Result<(), String> {
    if b.get(*i) == Some(&c) {
        *i += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *i))
    }
}

fn value(b: &[u8], i: &mut usize) -> Result<(), String> {
    match b.get(*i) {
        Some(b'{') => object(b, i),
        Some(b'[') => array(b, i),
        Some(b'"') => string(b, i),
        Some(b't') => literal(b, i, b"true"),
        Some(b'f') => literal(b, i, b"false"),
        Some(b'n') => literal(b, i, b"null"),
        Some(b'-' | b'0'..=b'9') => number(b, i),
        _ => Err(format!("expected a value at byte {}", *i)),
    }
}

fn literal(b: &[u8], i: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b.get(*i..*i + lit.len()) == Some(lit) {
        *i += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {}", *i))
    }
}

fn object(b: &[u8], i: &mut usize) -> Result<(), String> {
    expect(b, i, b'{')?;
    skip_ws(b, i);
    if b.get(*i) == Some(&b'}') {
        *i += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, i);
        string(b, i)?;
        skip_ws(b, i);
        expect(b, i, b':')?;
        skip_ws(b, i);
        value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b'}') => {
                *i += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *i)),
        }
    }
}

fn array(b: &[u8], i: &mut usize) -> Result<(), String> {
    expect(b, i, b'[')?;
    skip_ws(b, i);
    if b.get(*i) == Some(&b']') {
        *i += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, i);
        value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b']') => {
                *i += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *i)),
        }
    }
}

fn string(b: &[u8], i: &mut usize) -> Result<(), String> {
    expect(b, i, b'"')?;
    loop {
        match b.get(*i) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *i += 1;
                return Ok(());
            }
            Some(b'\\') => {
                *i += 1;
                match b.get(*i) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *i += 1,
                    Some(b'u') => {
                        *i += 1;
                        for _ in 0..4 {
                            if !b.get(*i).is_some_and(u8::is_ascii_hexdigit) {
                                return Err(format!("bad \\u escape at byte {}", *i));
                            }
                            *i += 1;
                        }
                    }
                    _ => return Err(format!("bad escape at byte {}", *i)),
                }
            }
            Some(c) if *c < 0x20 => return Err(format!("raw control char at byte {}", *i)),
            Some(_) => *i += 1,
        }
    }
}

fn number(b: &[u8], i: &mut usize) -> Result<(), String> {
    let start = *i;
    if b.get(*i) == Some(&b'-') {
        *i += 1;
    }
    let mut digits = 0;
    while b.get(*i).is_some_and(u8::is_ascii_digit) {
        *i += 1;
        digits += 1;
    }
    if digits == 0 {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*i) == Some(&b'.') {
        *i += 1;
        let mut frac = 0;
        while b.get(*i).is_some_and(u8::is_ascii_digit) {
            *i += 1;
            frac += 1;
        }
        if frac == 0 {
            return Err(format!("bad number at byte {start}"));
        }
    }
    if matches!(b.get(*i), Some(b'e' | b'E')) {
        *i += 1;
        if matches!(b.get(*i), Some(b'+' | b'-')) {
            *i += 1;
        }
        let mut exp = 0;
        while b.get(*i).is_some_and(u8::is_ascii_digit) {
            *i += 1;
            exp += 1;
        }
        if exp == 0 {
            return Err(format!("bad number at byte {start}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mic_sim::{Policy, Work};

    fn sample_regions() -> Vec<Region> {
        let work: Vec<Work> = (0..300)
            .map(|i| Work {
                issue: 2.0 + (i % 7) as f64,
                l1: (i % 3) as f64,
                l2: 0.4,
                dram: 0.2,
                flops: (i % 5) as f64,
                atomics: 0.05,
            })
            .collect();
        vec![
            Region::new(work.clone(), Policy::OmpDynamic { chunk: 16 }),
            Region::new(work, Policy::Cilk { grain: 25 }),
        ]
    }

    #[test]
    fn counter_totals_match_why_breakdown() {
        // The acceptance criterion: per-region counter totals from the
        // trace, normalized, equal the existing telemetry fractions.
        let m = Machine::knf();
        let regions = sample_regions();
        let (_, part) = trace_simulation("x", &m, 61, &regions);
        assert_eq!(part.regions.len(), regions.len());
        for (reg, r) in part.regions.iter().zip(&regions) {
            let (_, b) = simulate_region_telemetry(&m, 61, r);
            let totals = reg.counter_totals();
            let sum = totals.total();
            assert!(sum > 0.0);
            for (cause, (name, frac)) in StallCause::ALL.iter().zip(b.components()) {
                assert_eq!(cause.name(), name);
                let counter_frac = totals.get(*cause) / sum;
                assert!(
                    (counter_frac - frac).abs() < 1e-6,
                    "{name}: counter {counter_frac} vs telemetry {frac}"
                );
            }
        }
    }

    #[test]
    fn chrome_export_is_valid_json_with_expected_lanes() {
        let m = Machine::knf();
        let regions = sample_regions();
        let (report, part) = trace_simulation("demo run", &m, 31, &regions);
        let native = vec![
            NativeEvent {
                runtime: "omp",
                worker: 0,
                lane: 0,
                start_us: 1.0,
                end_us: 2.5,
                kind: NativeEventKind::Chunk { lo: 0, hi: 64 },
            },
            NativeEvent {
                runtime: "tbb",
                worker: 1,
                lane: 2,
                start_us: 3.0,
                end_us: 3.0,
                kind: NativeEventKind::Steal { victim: 0 },
            },
        ];
        let json = chrome_trace_json(&[part], &native);
        validate_json(&json).expect("export must parse");
        for needle in [
            "\"demo run\"",
            "omp-dynamic",
            "\"cilk\"",
            "stall cycles",
            "\"steal\"",
            "native runtime",
            // The lane-2 steal lands on a namespaced shard row...
            "shard-1/worker-1",
            "\"tid\":2049",
        ] {
            assert!(json.contains(needle), "missing {needle}");
        }
        // ...while the lane-0 chunk keeps its bare worker tid.
        assert!(json.contains("\"name\":\"chunk 0..64\",\"cat\":\"omp\",\"ph\":\"X\",\"ts\":1,\"dur\":1.5,\"pid\":2,\"tid\":0"));
        assert!(report.cycles > 0.0);
    }

    #[test]
    fn span_lane_renders_requests_by_shard() {
        let spans = vec![
            mic_obs::span::Span {
                trace: 0xabcd,
                id: 7,
                parent: 0,
                kind: mic_obs::span::SpanKind::Request,
                shard: None,
                start_us: 0.0,
                end_us: 10.0,
            },
            mic_obs::span::Span {
                trace: 0xabcd,
                id: 8,
                parent: 7,
                kind: mic_obs::span::SpanKind::Execute,
                shard: Some(3),
                start_us: 2.0,
                end_us: 9.0,
            },
        ];
        let json = chrome_trace_json_with_spans(&[], &[], &spans);
        validate_json(&json).expect("span export must parse");
        for needle in [
            "\"requests\"",
            "\"shard-3\"",
            "\"name\":\"execute\"",
            "\"name\":\"request\"",
            &format!("\"trace\":\"{}\"", mic_obs::trace_hex(0xabcd)),
        ] {
            assert!(json.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn labels_are_escaped() {
        let part = TracePart {
            label: "weird \"quoted\"\\label\n".into(),
            threads: 2,
            regions: Vec::new(),
        };
        let json = chrome_trace_json(&[part], &[]);
        validate_json(&json).expect("escaped export must parse");
    }

    #[test]
    fn stall_sweep_is_deterministic_across_worker_counts() {
        let m = Machine::knf();
        let configs = vec![
            ("omp".to_string(), sample_regions()),
            (
                "serial".to_string(),
                vec![Region::new(
                    vec![
                        Work {
                            issue: 3.0,
                            ..Default::default()
                        };
                        50
                    ],
                    Policy::Serial,
                )],
            ),
        ];
        let grid = [1usize, 11, 31];
        let one = stall_sweep_with(1, &m, &grid, &configs);
        let four = stall_sweep_with(4, &m, &grid, &configs);
        assert_eq!(one.points.len(), configs.len() * grid.len());
        for (a, b) in one.points.iter().zip(&four.points) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.threads, b.threads);
            assert_eq!(a.cycles.to_bits(), b.cycles.to_bits());
            for ((_, x), (_, y)) in a
                .breakdown
                .components()
                .iter()
                .zip(b.breakdown.components())
            {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        let ascii = one.to_ascii();
        assert!(ascii.contains("bound-by") && ascii.lines().count() == 1 + one.points.len());
    }

    #[test]
    fn validator_accepts_and_rejects() {
        for ok in [
            "{}",
            "[]",
            "null",
            " {\"a\": [1, -2.5e3, true, \"x\\u00e9\"]} ",
            "{\"nested\":{\"deep\":[[[]]]}}",
        ] {
            assert!(validate_json(ok).is_ok(), "{ok}");
        }
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{'a':1}",
            "[1 2]",
            "NaN",
            "{\"a\":1}x",
            "\"unterminated",
            "01e",
        ] {
            assert!(validate_json(bad).is_err(), "{bad} should fail");
        }
    }
}
