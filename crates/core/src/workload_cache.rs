//! Instrumented-workload cache for the experiment drivers.
//!
//! Regenerating every figure used to rebuild each suite graph and re-run
//! each instrumentation pass once *per figure*; with this module, a
//! process instruments each distinct (graph, scale, ordering, locality
//! windows[, kernel knob]) combination exactly once, no matter how many
//! figures — or parallel sweep jobs — ask for it.
//!
//! Two layers:
//!
//! - **In-memory** (always on): process-global maps from key to
//!   `Arc`-shared graph or workload. Entries are built inside a per-key
//!   `OnceLock`, so concurrent sweep jobs that race on the same key block
//!   on one build instead of duplicating it, while distinct keys build in
//!   parallel.
//! - **On-disk** (opt-in): when `MIC_SUITE_CACHE` is set, workload arrays
//!   are persisted as `wl1-*.bin` files next to the binary-CSR graph
//!   cache, so *separate* full-scale runs skip instrumentation too.
//!   Corrupt or truncated files are ignored and rewritten. The `wl1`
//!   prefix is the format version: bump it when instrumentation changes
//!   meaning, or delete the cache directory to invalidate by hand.

use mic_bfs::instrument::{instrument as bfs_instrument, BfsWorkload, SimVariant};
use mic_bfs::seq::table1_source;
use mic_coloring::instrument::{instrument as coloring_instrument, ColoringWorkload};
use mic_graph::ordering::{apply, Ordering};
use mic_graph::stats::LocalityWindows;
use mic_graph::suite::{build, build_cached, PaperGraph, Scale};
use mic_graph::Csr;
use mic_irregular::instrument::{instrument as irregular_instrument, IrregularWorkload};
use mic_sim::Work;
use std::collections::HashMap;
use std::hash::Hash;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

/// Vertex ordering applied to a suite graph before instrumentation — the
/// hashable subset of [`Ordering`] the experiments use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OrderTag {
    Natural,
    Random { seed: u64 },
    CuthillMcKee { source: u32 },
}

impl OrderTag {
    fn ordering(self) -> Option<Ordering> {
        match self {
            OrderTag::Natural => None,
            OrderTag::Random { seed } => Some(Ordering::Random { seed }),
            OrderTag::CuthillMcKee { source } => Some(Ordering::CuthillMcKee { source }),
        }
    }

    /// Stable, filename-safe code for the on-disk cache.
    fn file_code(self) -> String {
        match self {
            OrderTag::Natural => "nat".into(),
            OrderTag::Random { seed } => format!("rnd{seed:x}"),
            OrderTag::CuthillMcKee { source } => format!("cm{source}"),
        }
    }
}

fn scale_code(scale: Scale) -> String {
    match scale {
        Scale::Full => "full".into(),
        Scale::Fraction(k) => format!("f{k}"),
        Scale::Vertices(n) => format!("v{n}"),
    }
}

fn variant_code(v: SimVariant) -> String {
    match v {
        SimVariant::Block { block, relaxed } => {
            format!("blk{block}{}", if relaxed { "r" } else { "l" })
        }
        SimVariant::Bag { grain } => format!("bag{grain}"),
        SimVariant::Tls => "tls".into(),
    }
}

/// Locality windows as a hashable key.
type WinKey = (usize, usize);

fn win_key(w: LocalityWindows) -> WinKey {
    (w.l1_gap, w.l2_gap)
}

/// A process-global key→value cache where each entry is built exactly
/// once. The map lock is held only to look up the entry's cell; the build
/// itself runs under the cell's `OnceLock`, so different keys build
/// concurrently while same-key racers share one build.
struct Cache<K, V>(OnceLock<Mutex<HashMap<K, Arc<OnceLock<V>>>>>);

impl<K: Eq + Hash, V: Clone> Cache<K, V> {
    const fn new() -> Self {
        Cache(OnceLock::new())
    }

    fn get_or_build(&self, key: K, build: impl FnOnce() -> V) -> V {
        let cell = {
            let mut map = self
                .0
                .get_or_init(|| Mutex::new(HashMap::new()))
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            Arc::clone(map.entry(key).or_default())
        };
        cell.get_or_init(build).clone()
    }
}

type GraphKey = (PaperGraph, Scale, OrderTag);
static GRAPHS: Cache<GraphKey, Arc<Csr>> = Cache::new();

type ColoringKey = (PaperGraph, Scale, OrderTag, WinKey);
static COLORING: Cache<ColoringKey, Arc<ColoringWorkload>> = Cache::new();

type IrregularKey = (PaperGraph, Scale, OrderTag, WinKey, usize);
static IRREGULAR: Cache<IrregularKey, Arc<IrregularWorkload>> = Cache::new();

type BfsKey = (PaperGraph, Scale, OrderTag, WinKey, SimVariant);
static BFS: Cache<BfsKey, Arc<BfsWorkload>> = Cache::new();

/// One suite graph at `scale` under `order`, built (or read from the
/// `MIC_SUITE_CACHE` CSR cache) once per process. Ordered variants are
/// derived from the cached natural graph.
pub fn graph(pg: PaperGraph, scale: Scale, order: OrderTag) -> Arc<Csr> {
    GRAPHS.get_or_build((pg, scale, order), || match order.ordering() {
        None => Arc::new(match std::env::var_os("MIC_SUITE_CACHE") {
            Some(dir) => build_cached(pg, scale, dir),
            None => build(pg, scale),
        }),
        Some(o) => {
            let base = graph(pg, scale, OrderTag::Natural);
            Arc::new(apply(&base, o).0)
        }
    })
}

/// The full seven-graph suite at `scale`, Table I order, naturally
/// ordered, shared from the cache.
pub fn suite(scale: Scale) -> Vec<(PaperGraph, Arc<Csr>)> {
    PaperGraph::all()
        .into_iter()
        .map(|g| (g, graph(g, scale, OrderTag::Natural)))
        .collect()
}

/// The coloring workload of a suite graph (Figures 1–2, ablations).
pub fn coloring(
    pg: PaperGraph,
    scale: Scale,
    order: OrderTag,
    windows: LocalityWindows,
) -> Arc<ColoringWorkload> {
    COLORING.get_or_build((pg, scale, order, win_key(windows)), || {
        let file = disk_path("coloring", pg, scale, order, windows, "");
        if let Some((_, arrays)) = file.as_deref().and_then(|p| load_arrays(p, 4, 0)) {
            let mut it = arrays.into_iter();
            return Arc::new(ColoringWorkload {
                tentative: it.next().unwrap(),
                detect: it.next().unwrap(),
                conflict_tentative: it.next().unwrap(),
                conflict_detect: it.next().unwrap(),
            });
        }
        let g = graph(pg, scale, order);
        let w = Arc::new(coloring_instrument(&g, windows));
        if let Some(p) = file {
            store_arrays(
                &p,
                &[],
                &[
                    &w.tentative,
                    &w.detect,
                    &w.conflict_tentative,
                    &w.conflict_detect,
                ],
            );
        }
        w
    })
}

/// The irregular-microbenchmark workload at `iter` repetitions (Figure 3,
/// placement ablation).
pub fn irregular(
    pg: PaperGraph,
    scale: Scale,
    order: OrderTag,
    windows: LocalityWindows,
    iter: usize,
) -> Arc<IrregularWorkload> {
    IRREGULAR.get_or_build((pg, scale, order, win_key(windows), iter), || {
        let file = disk_path("irregular", pg, scale, order, windows, &format!("-i{iter}"));
        if let Some((meta, arrays)) = file.as_deref().and_then(|p| load_arrays(p, 1, 1)) {
            if meta[0] as usize == iter {
                return Arc::new(IrregularWorkload {
                    iter_work: arrays.into_iter().next().unwrap(),
                    iter,
                });
            }
        }
        let g = graph(pg, scale, order);
        let w = Arc::new(irregular_instrument(&g, windows, iter));
        if let Some(p) = file {
            store_arrays(&p, &[iter as u64], &[&w.iter_work]);
        }
        w
    })
}

/// The BFS workload of a suite graph under `variant`, from the paper's
/// Table-1 source (Figure 4, queue ablations).
pub fn bfs(
    pg: PaperGraph,
    scale: Scale,
    order: OrderTag,
    windows: LocalityWindows,
    variant: SimVariant,
) -> Arc<BfsWorkload> {
    BFS.get_or_build((pg, scale, order, win_key(windows), variant), || {
        let file = disk_path(
            "bfs",
            pg,
            scale,
            order,
            windows,
            &format!("-{}", variant_code(variant)),
        );
        // Level count is data-dependent: 0 means "any".
        if let Some((meta, arrays)) = file.as_deref().and_then(|p| load_arrays(p, 0, 0)) {
            if meta.len() == arrays.len() {
                return Arc::new(BfsWorkload {
                    level_work: arrays,
                    widths: meta.into_iter().map(|w| w as usize).collect(),
                });
            }
        }
        let g = graph(pg, scale, order);
        let w = Arc::new(bfs_instrument(&g, table1_source(&g), windows, variant));
        if let Some(p) = file {
            let meta: Vec<u64> = w.widths.iter().map(|&x| x as u64).collect();
            let arrays: Vec<&[Work]> = w.level_work.iter().map(|a| a.as_slice()).collect();
            store_arrays(&p, &meta, &arrays);
        }
        w
    })
}

// ---------------------------------------------------------------------------
// On-disk workload files: `wl1-<kind>-<graph>-<scale>-<order>-<l1>-<l2><extra>.bin`
// next to the binary-CSR cache. Layout (all little-endian):
//
//   magic  b"MICWL1\0\0"
//   u64    number of meta words          u64    number of arrays
//   meta   u64 × n_meta
//   per array: u64 length, then length × 6 f64 (issue,l1,l2,dram,flops,atomics)
// ---------------------------------------------------------------------------

const MAGIC: &[u8; 8] = b"MICWL1\0\0";

fn disk_path(
    kind: &str,
    pg: PaperGraph,
    scale: Scale,
    order: OrderTag,
    windows: LocalityWindows,
    extra: &str,
) -> Option<PathBuf> {
    let dir = std::env::var_os("MIC_SUITE_CACHE")?;
    Some(PathBuf::from(dir).join(format!(
        "wl1-{kind}-{}-{}-{}-{}-{}{extra}.bin",
        pg.name(),
        scale_code(scale),
        order.file_code(),
        windows.l1_gap,
        windows.l2_gap,
    )))
}

/// Best-effort write; failure just means no cache hit next run.
///
/// Public for stress tests and cache-maintenance tools; the experiment
/// drivers go through the keyed cache functions above.
pub fn store_arrays(path: &Path, meta: &[u64], arrays: &[&[Work]]) {
    let write = || -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
            cleanup_orphan_tmps(dir);
        }
        let mut buf: Vec<u8> = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&(meta.len() as u64).to_le_bytes());
        buf.extend_from_slice(&(arrays.len() as u64).to_le_bytes());
        for m in meta {
            buf.extend_from_slice(&m.to_le_bytes());
        }
        for arr in arrays {
            buf.extend_from_slice(&(arr.len() as u64).to_le_bytes());
            for w in arr.iter() {
                for v in [w.issue, w.l1, w.l2, w.dram, w.flops, w.atomics] {
                    buf.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
        // Write-then-rename so a crashed run never leaves a torn file
        // under the final name. The tmp name must be unique per writer:
        // concurrent processes sharing MIC_SUITE_CACHE (and concurrent
        // sweep jobs in one process) race on the same key, and a shared
        // `.bin.tmp` name let one writer rename a file another was still
        // filling — a torn cache entry under the *final* name, defeating
        // the whole point of the rename.
        static TMP_COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let tmp = path.with_extension(format!(
            "bin.tmp.{}.{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        std::fs::File::create(&tmp)?.write_all(&buf)?;
        std::fs::rename(&tmp, path).inspect_err(|_| {
            let _ = std::fs::remove_file(&tmp);
        })
    };
    let _ = write();
}

/// Remove stale `*.tmp.*` files a crashed writer may have left behind.
/// Runs at most once per process per cache directory use; only files not
/// modified for 15 minutes are touched, so live writers (which hold their
/// unique tmp for milliseconds) are never affected. Best-effort: any
/// error just leaves the orphan for a later run.
fn cleanup_orphan_tmps(dir: &Path) {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let is_tmp = name.to_str().is_some_and(|n| n.contains(".bin.tmp"));
            if !is_tmp {
                continue;
            }
            let stale = entry
                .metadata()
                .and_then(|m| m.modified())
                .ok()
                .and_then(|t| t.elapsed().ok())
                .is_some_and(|age| age.as_secs() > 15 * 60);
            if stale {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    });
}

/// Meta words + work arrays, as stored in one workload file.
pub type StoredArrays = (Vec<u64>, Vec<Arc<Vec<Work>>>);

/// Read a workload file; `None` on any structural problem (missing,
/// truncated, wrong counts, non-finite values). `expect_arrays` /
/// `expect_meta` of 0 accept any count.
///
/// Public for stress tests and cache-maintenance tools.
pub fn load_arrays(path: &Path, expect_arrays: usize, expect_meta: usize) -> Option<StoredArrays> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)
        .ok()?
        .read_to_end(&mut bytes)
        .ok()?;
    let mut off = 0usize;
    let take = |off: &mut usize, n: usize| -> Option<&[u8]> {
        let s = bytes.get(*off..*off + n)?;
        *off += n;
        Some(s)
    };
    if take(&mut off, 8)? != MAGIC {
        return None;
    }
    let read_u64 = |off: &mut usize| -> Option<u64> {
        Some(u64::from_le_bytes(take(off, 8)?.try_into().ok()?))
    };
    let n_meta = read_u64(&mut off)? as usize;
    let n_arrays = read_u64(&mut off)? as usize;
    if (expect_meta != 0 && n_meta != expect_meta)
        || (expect_arrays != 0 && n_arrays != expect_arrays)
        || n_meta > bytes.len()
        || n_arrays > bytes.len()
    {
        return None;
    }
    let mut meta = Vec::with_capacity(n_meta);
    for _ in 0..n_meta {
        meta.push(read_u64(&mut off)?);
    }
    let mut arrays = Vec::with_capacity(n_arrays);
    for _ in 0..n_arrays {
        let len = read_u64(&mut off)? as usize;
        if len.checked_mul(48).is_none_or(|b| off + b > bytes.len()) {
            return None;
        }
        let mut arr = Vec::with_capacity(len);
        for _ in 0..len {
            let mut f = [0.0f64; 6];
            for v in f.iter_mut() {
                *v = f64::from_le_bytes(take(&mut off, 8)?.try_into().ok()?);
            }
            let w = Work {
                issue: f[0],
                l1: f[1],
                l2: f[2],
                dram: f[3],
                flops: f[4],
                atomics: f[5],
            };
            if !w.is_valid() {
                return None;
            }
            arr.push(w);
        }
        arrays.push(Arc::new(arr));
    }
    if off != bytes.len() {
        return None;
    }
    Some((meta, arrays))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_cache_shares_one_build() {
        let a = graph(PaperGraph::Hood, Scale::Vertices(500), OrderTag::Natural);
        let b = graph(PaperGraph::Hood, Scale::Vertices(500), OrderTag::Natural);
        assert!(Arc::ptr_eq(&a, &b), "same key must share one graph");
        let c = graph(
            PaperGraph::Hood,
            Scale::Vertices(500),
            OrderTag::Random { seed: 9 },
        );
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(a.num_vertices(), c.num_vertices());
    }

    #[test]
    fn coloring_cache_is_keyed_by_all_inputs() {
        let scale = Scale::Vertices(400);
        let w1 = coloring(
            PaperGraph::Pwtk,
            scale,
            OrderTag::Natural,
            LocalityWindows::default(),
        );
        let w2 = coloring(
            PaperGraph::Pwtk,
            scale,
            OrderTag::Natural,
            LocalityWindows::default(),
        );
        assert!(Arc::ptr_eq(&w1, &w2));
        let other = LocalityWindows {
            l1_gap: 64,
            l2_gap: 4096,
        };
        let w3 = coloring(PaperGraph::Pwtk, scale, OrderTag::Natural, other);
        assert!(!Arc::ptr_eq(&w1, &w3), "different windows must not share");
    }

    #[test]
    fn concurrent_requests_build_once() {
        let key_scale = Scale::Vertices(600);
        let results = crate::sweep::map_with(8, &[(); 16], |_, _| {
            coloring(
                PaperGraph::Ldoor,
                key_scale,
                OrderTag::Natural,
                LocalityWindows::default(),
            )
        });
        for w in &results {
            assert!(
                Arc::ptr_eq(w, &results[0]),
                "racing builders must converge on one value"
            );
        }
    }

    #[test]
    fn disk_roundtrip_preserves_arrays_and_rejects_corruption() {
        let dir = std::env::temp_dir().join(format!("micwl-test-{}", std::process::id()));
        let path = dir.join("wl1-selftest.bin");
        let a: Vec<Work> = (0..10)
            .map(|i| Work {
                issue: i as f64,
                dram: 0.5 * i as f64,
                ..Default::default()
            })
            .collect();
        let b: Vec<Work> = vec![
            Work {
                flops: 3.0,
                ..Default::default()
            };
            3
        ];
        store_arrays(&path, &[7, 9], &[&a, &b]);
        let (meta, arrays) = load_arrays(&path, 2, 2).expect("roundtrip");
        assert_eq!(meta, vec![7, 9]);
        assert_eq!(arrays.len(), 2);
        assert_eq!(arrays[0].len(), 10);
        assert_eq!(arrays[0][4], a[4]);
        assert_eq!(arrays[1].len(), 3);
        // Wrong expected shape → None.
        assert!(load_arrays(&path, 3, 2).is_none());
        // Truncation → None.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        assert!(load_arrays(&path, 2, 2).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
