//! Instrumented-workload cache for the experiment drivers.
//!
//! Regenerating every figure used to rebuild each suite graph and re-run
//! each instrumentation pass once *per figure*; with this module, a
//! process instruments each distinct (graph, scale, ordering, locality
//! windows[, kernel knob]) combination exactly once, no matter how many
//! figures — or parallel sweep jobs — ask for it.
//!
//! Two layers:
//!
//! - **In-memory** (always on): process-global maps from key to
//!   `Arc`-shared graph or workload. Entries are built inside a per-key
//!   `OnceLock`, so concurrent sweep jobs that race on the same key block
//!   on one build instead of duplicating it, while distinct keys build in
//!   parallel.
//! - **On-disk** (opt-in): when `MIC_SUITE_CACHE` is set, workload arrays
//!   are persisted as `wl1-*.bin` files next to the binary-CSR graph
//!   cache, so *separate* full-scale runs skip instrumentation too.
//!   Corrupt or truncated files are ignored and rewritten. The `wl1`
//!   prefix is the format version: bump it when instrumentation changes
//!   meaning, or delete the cache directory to invalidate by hand.

use mic_bfs::components::{instrument_components, ComponentsWorkload};
use mic_bfs::direction::{instrument_hybrid, Direction, Hybrid, HybridWorkload};
use mic_bfs::instrument::{instrument as bfs_instrument, BfsWorkload, SimVariant};
use mic_bfs::seq::table1_source;
use mic_coloring::instrument::{instrument as coloring_instrument, ColoringWorkload};
use mic_graph::ordering::{apply, Ordering};
use mic_graph::stats::LocalityWindows;
use mic_graph::suite::{build, build_cached, PaperGraph, Scale};
use mic_graph::Csr;
use mic_irregular::instrument::{
    instrument as irregular_instrument, instrument_pagerank, IrregularWorkload, PagerankWorkload,
};
use mic_sim::Work;
use std::collections::HashMap;
use std::hash::Hash;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

/// Vertex ordering applied to a suite graph before instrumentation — the
/// hashable subset of [`Ordering`] the experiments use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OrderTag {
    Natural,
    Random { seed: u64 },
    CuthillMcKee { source: u32 },
}

impl OrderTag {
    fn ordering(self) -> Option<Ordering> {
        match self {
            OrderTag::Natural => None,
            OrderTag::Random { seed } => Some(Ordering::Random { seed }),
            OrderTag::CuthillMcKee { source } => Some(Ordering::CuthillMcKee { source }),
        }
    }

    /// Stable, filename-safe code for the on-disk cache.
    fn file_code(self) -> String {
        match self {
            OrderTag::Natural => "nat".into(),
            OrderTag::Random { seed } => format!("rnd{seed:x}"),
            OrderTag::CuthillMcKee { source } => format!("cm{source}"),
        }
    }
}

fn scale_code(scale: Scale) -> String {
    match scale {
        Scale::Full => "full".into(),
        Scale::Fraction(k) => format!("f{k}"),
        Scale::Vertices(n) => format!("v{n}"),
    }
}

fn variant_code(v: SimVariant) -> String {
    match v {
        SimVariant::Block { block, relaxed } => {
            format!("blk{block}{}", if relaxed { "r" } else { "l" })
        }
        SimVariant::Bag { grain } => format!("bag{grain}"),
        SimVariant::Tls => "tls".into(),
    }
}

/// Locality windows as a hashable key.
type WinKey = (usize, usize);

fn win_key(w: LocalityWindows) -> WinKey {
    (w.l1_gap, w.l2_gap)
}

/// A process-global key→value cache where each entry is built exactly
/// once. The map lock is held only to look up the entry's cell; the build
/// itself runs under the cell's `OnceLock`, so different keys build
/// concurrently while same-key racers share one build.
struct Cache<K, V>(OnceLock<Mutex<HashMap<K, Arc<OnceLock<V>>>>>);

impl<K: Eq + Hash, V: Clone> Cache<K, V> {
    const fn new() -> Self {
        Cache(OnceLock::new())
    }

    fn get_or_build(&self, key: K, build: impl FnOnce() -> V) -> V {
        let cell = {
            let mut map = self
                .0
                .get_or_init(|| Mutex::new(HashMap::new()))
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            Arc::clone(map.entry(key).or_default())
        };
        cell.get_or_init(build).clone()
    }
}

type GraphKey = (PaperGraph, Scale, OrderTag);
static GRAPHS: Cache<GraphKey, Arc<Csr>> = Cache::new();

type ColoringKey = (PaperGraph, Scale, OrderTag, WinKey);
static COLORING: Cache<ColoringKey, Arc<ColoringWorkload>> = Cache::new();

type IrregularKey = (PaperGraph, Scale, OrderTag, WinKey, usize);
static IRREGULAR: Cache<IrregularKey, Arc<IrregularWorkload>> = Cache::new();

type BfsKey = (PaperGraph, Scale, OrderTag, WinKey, SimVariant);
static BFS: Cache<BfsKey, Arc<BfsWorkload>> = Cache::new();

type PagerankKey = (PaperGraph, Scale, OrderTag, WinKey);
static PAGERANK: Cache<PagerankKey, Arc<PagerankWorkload>> = Cache::new();

type ComponentsKey = (PaperGraph, Scale, OrderTag, WinKey);
static COMPONENTS: Cache<ComponentsKey, Arc<ComponentsWorkload>> = Cache::new();

type HybridKey = (PaperGraph, Scale, OrderTag, WinKey);
static HYBRID: Cache<HybridKey, Arc<HybridWorkload>> = Cache::new();

/// PageRank convergence parameters used by every exhibit and serve job:
/// the standard damping factor, an L1 tolerance tight enough that the
/// iteration count is graph-determined, and a cap so pathological inputs
/// terminate.
pub const PAGERANK_DAMPING: f64 = 0.85;
pub const PAGERANK_TOL: f64 = 1e-8;
pub const PAGERANK_MAX_ITERS: usize = 100;

/// One suite graph at `scale` under `order`, built (or read from the
/// `MIC_SUITE_CACHE` CSR cache) once per process. Ordered variants are
/// derived from the cached natural graph.
pub fn graph(pg: PaperGraph, scale: Scale, order: OrderTag) -> Arc<Csr> {
    GRAPHS.get_or_build((pg, scale, order), || match order.ordering() {
        None => Arc::new(match crate::config::current().cache_dir.clone() {
            Some(dir) => build_cached(pg, scale, dir),
            None => build(pg, scale),
        }),
        Some(o) => {
            let base = graph(pg, scale, OrderTag::Natural);
            Arc::new(apply(&base, o).0)
        }
    })
}

/// The full seven-graph suite at `scale`, Table I order, naturally
/// ordered, shared from the cache.
pub fn suite(scale: Scale) -> Vec<(PaperGraph, Arc<Csr>)> {
    PaperGraph::all()
        .into_iter()
        .map(|g| (g, graph(g, scale, OrderTag::Natural)))
        .collect()
}

/// The coloring workload of a suite graph (Figures 1–2, ablations).
pub fn coloring(
    pg: PaperGraph,
    scale: Scale,
    order: OrderTag,
    windows: LocalityWindows,
) -> Arc<ColoringWorkload> {
    COLORING.get_or_build((pg, scale, order, win_key(windows)), || {
        let file = disk_path("coloring", pg, scale, order, windows, "");
        if let Some((_, arrays)) = file.as_deref().and_then(|p| load_arrays(p, 4, 0)) {
            let mut it = arrays.into_iter();
            return Arc::new(ColoringWorkload {
                tentative: it.next().unwrap(),
                detect: it.next().unwrap(),
                conflict_tentative: it.next().unwrap(),
                conflict_detect: it.next().unwrap(),
            });
        }
        let g = graph(pg, scale, order);
        let w = Arc::new(coloring_instrument(&g, windows));
        if let Some(p) = file {
            store_arrays(
                &p,
                &[],
                &[
                    &w.tentative,
                    &w.detect,
                    &w.conflict_tentative,
                    &w.conflict_detect,
                ],
            );
        }
        w
    })
}

/// The irregular-microbenchmark workload at `iter` repetitions (Figure 3,
/// placement ablation).
pub fn irregular(
    pg: PaperGraph,
    scale: Scale,
    order: OrderTag,
    windows: LocalityWindows,
    iter: usize,
) -> Arc<IrregularWorkload> {
    IRREGULAR.get_or_build((pg, scale, order, win_key(windows), iter), || {
        let file = disk_path("irregular", pg, scale, order, windows, &format!("-i{iter}"));
        if let Some((meta, arrays)) = file.as_deref().and_then(|p| load_arrays(p, 1, 1)) {
            if meta[0] as usize == iter {
                return Arc::new(IrregularWorkload {
                    iter_work: arrays.into_iter().next().unwrap(),
                    iter,
                });
            }
        }
        let g = graph(pg, scale, order);
        let w = Arc::new(irregular_instrument(&g, windows, iter));
        if let Some(p) = file {
            store_arrays(&p, &[iter as u64], &[&w.iter_work]);
        }
        w
    })
}

/// The BFS workload of a suite graph under `variant`, from the paper's
/// Table-1 source (Figure 4, queue ablations).
pub fn bfs(
    pg: PaperGraph,
    scale: Scale,
    order: OrderTag,
    windows: LocalityWindows,
    variant: SimVariant,
) -> Arc<BfsWorkload> {
    BFS.get_or_build((pg, scale, order, win_key(windows), variant), || {
        let file = disk_path(
            "bfs",
            pg,
            scale,
            order,
            windows,
            &format!("-{}", variant_code(variant)),
        );
        // Level count is data-dependent: 0 means "any".
        if let Some((meta, arrays)) = file.as_deref().and_then(|p| load_arrays(p, 0, 0)) {
            if meta.len() == arrays.len() {
                return Arc::new(BfsWorkload {
                    level_work: arrays,
                    widths: meta.into_iter().map(|w| w as usize).collect(),
                });
            }
        }
        let g = graph(pg, scale, order);
        let w = Arc::new(bfs_instrument(&g, table1_source(&g), windows, variant));
        if let Some(p) = file {
            let meta: Vec<u64> = w.widths.iter().map(|&x| x as u64).collect();
            let arrays: Vec<&[Work]> = w.level_work.iter().map(|a| a.as_slice()).collect();
            store_arrays(&p, &meta, &arrays);
        }
        w
    })
}

/// The PageRank workload of a suite graph (scale-free exhibits, serve).
/// Convergence parameters are the fixed [`PAGERANK_DAMPING`] /
/// [`PAGERANK_TOL`] / [`PAGERANK_MAX_ITERS`] so the iteration count — and
/// with it the region sequence — is a pure function of the graph.
pub fn pagerank(
    pg: PaperGraph,
    scale: Scale,
    order: OrderTag,
    windows: LocalityWindows,
) -> Arc<PagerankWorkload> {
    PAGERANK.get_or_build((pg, scale, order, win_key(windows)), || {
        let file = disk_path("pagerank", pg, scale, order, windows, "");
        if let Some((meta, arrays)) = file.as_deref().and_then(|p| load_arrays(p, 1, 1)) {
            return Arc::new(PagerankWorkload {
                vertex_work: arrays.into_iter().next().unwrap(),
                iters: meta[0] as usize,
            });
        }
        let g = graph(pg, scale, order);
        let w = Arc::new(instrument_pagerank(
            &g,
            windows,
            PAGERANK_DAMPING,
            PAGERANK_TOL,
            PAGERANK_MAX_ITERS,
        ));
        if let Some(p) = file {
            store_arrays(&p, &[w.iters as u64], &[&w.vertex_work]);
        }
        w
    })
}

/// The label-propagation components workload of a suite graph.
pub fn components(
    pg: PaperGraph,
    scale: Scale,
    order: OrderTag,
    windows: LocalityWindows,
) -> Arc<ComponentsWorkload> {
    COMPONENTS.get_or_build((pg, scale, order, win_key(windows)), || {
        let file = disk_path("components", pg, scale, order, windows, "");
        if let Some((meta, arrays)) = file.as_deref().and_then(|p| load_arrays(p, 1, 1)) {
            return Arc::new(ComponentsWorkload {
                round_work: arrays.into_iter().next().unwrap(),
                rounds: meta[0] as usize,
            });
        }
        let g = graph(pg, scale, order);
        let w = Arc::new(instrument_components(&g, windows));
        if let Some(p) = file {
            store_arrays(&p, &[w.rounds as u64], &[&w.round_work]);
        }
        w
    })
}

/// The direction-optimizing (hybrid) BFS workload of a suite graph, from
/// the Table-1 source under Beamer's default switch parameters. Each build
/// — cached or fresh — reports the native run's direction switches on the
/// `mic_bfs_direction_switches_total` counter, the observable evidence
/// that the heuristic actually fired.
pub fn hybrid_bfs(
    pg: PaperGraph,
    scale: Scale,
    order: OrderTag,
    windows: LocalityWindows,
) -> Arc<HybridWorkload> {
    let w = HYBRID.get_or_build((pg, scale, order, win_key(windows)), || {
        let file = disk_path("hybrid", pg, scale, order, windows, "");
        // meta: [switches, then per region width*2 + direction bit].
        if let Some((meta, arrays)) = file.as_deref().and_then(|p| load_arrays(p, 0, 0)) {
            if !meta.is_empty() && meta.len() == arrays.len() + 1 {
                let switches = meta[0] as usize;
                let mut widths = Vec::with_capacity(arrays.len());
                let mut directions = Vec::with_capacity(arrays.len());
                for &m in &meta[1..] {
                    widths.push((m >> 1) as usize);
                    directions.push(if m & 1 == 1 {
                        Direction::BottomUp
                    } else {
                        Direction::TopDown
                    });
                }
                return Arc::new(HybridWorkload {
                    level_work: arrays,
                    widths,
                    directions,
                    switches,
                });
            }
        }
        let g = graph(pg, scale, order);
        let w = Arc::new(instrument_hybrid(
            &g,
            table1_source(&g),
            windows,
            Hybrid::default(),
        ));
        if let Some(p) = file {
            let mut meta = Vec::with_capacity(w.widths.len() + 1);
            meta.push(w.switches as u64);
            for (&width, &dir) in w.widths.iter().zip(&w.directions) {
                meta.push((width as u64) << 1 | u64::from(dir == Direction::BottomUp));
            }
            let arrays: Vec<&[Work]> = w.level_work.iter().map(|a| a.as_slice()).collect();
            store_arrays(&p, &meta, &arrays);
        }
        w
    });
    if w.switches > 0 {
        crate::metrics::counter(
            "mic_bfs_direction_switches_total",
            "Direction switches observed by the native hybrid BFS run backing a workload request",
            &[("graph", pg.name())],
        )
        .add(w.switches as f64);
    }
    w
}

// ---------------------------------------------------------------------------
// On-disk workload files: `wl1-<kind>-<graph>-<scale>-<order>-<l1>-<l2><extra>.bin`
// next to the binary-CSR cache. Layout (all little-endian):
//
//   magic  b"MICWL2\0\0"
//   u64    number of meta words          u64    number of arrays
//   meta   u64 × n_meta
//   per array: u64 length, then length × 6 f64 (issue,l1,l2,dram,flops,atomics)
//   u64    XXH64 of every preceding byte (seed 0)
//
// The `wl1` filename prefix is the *semantic* version of the instrumented
// data; `MICWL2` is the *container* version (v2 added the trailing content
// checksum). A v1 file (no checksum) reads as a plain miss and is
// transparently recomputed and rewritten in v2 form. A file whose checksum
// or structure is wrong is quarantined to `<name>.corrupt` and recomputed
// — a flipped payload byte is never loaded, and the evidence is kept for
// post-mortems instead of being overwritten.
// ---------------------------------------------------------------------------

const MAGIC: &[u8; 8] = b"MICWL2\0\0";
const MAGIC_V1: &[u8; 8] = b"MICWL1\0\0";

// The canonical XXH64 implementation moved into `mic-store` (whose page
// format seals every page with it); re-exported here so existing callers
// and cache-maintenance tools keep their import path.
pub use mic_store::xxh64;

fn disk_path(
    kind: &str,
    pg: PaperGraph,
    scale: Scale,
    order: OrderTag,
    windows: LocalityWindows,
    extra: &str,
) -> Option<PathBuf> {
    let dir = crate::config::current().cache_dir.clone()?;
    Some(dir.join(format!(
        "wl1-{kind}-{}-{}-{}-{}-{}{extra}.bin",
        pg.name(),
        scale_code(scale),
        order.file_code(),
        windows.l1_gap,
        windows.l2_gap,
    )))
}

fn file_site(path: &Path) -> u64 {
    crate::fault::site_hash(path.file_name().and_then(|n| n.to_str()).unwrap_or(""))
}

/// Serialize meta + arrays into the `MICWL2` container (checksum sealed).
fn encode_container(meta: &[u64], arrays: &[&[Work]]) -> Vec<u8> {
    let mut buf: Vec<u8> = Vec::new();
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&(meta.len() as u64).to_le_bytes());
    buf.extend_from_slice(&(arrays.len() as u64).to_le_bytes());
    for m in meta {
        buf.extend_from_slice(&m.to_le_bytes());
    }
    for arr in arrays {
        buf.extend_from_slice(&(arr.len() as u64).to_le_bytes());
        for w in arr.iter() {
            for v in [w.issue, w.l1, w.l2, w.dram, w.flops, w.atomics] {
                buf.extend_from_slice(&v.to_le_bytes());
            }
        }
    }
    let checksum = xxh64(&buf, 0);
    buf.extend_from_slice(&checksum.to_le_bytes());
    buf
}

/// The durable spill tier under the wl2 cache: one crash-safe paged
/// store shared process-wide (and with mic-serve's result spill when
/// both point `MIC_STORE` at the same file). `None` when the knob is
/// off or the store cannot be opened — opening failures warn once and
/// the cache falls back to plain files.
fn store_tier() -> Option<std::sync::Arc<mic_store::Store>> {
    let cfg = crate::config::current();
    let path = cfg.store_path.clone()?;
    let opts = mic_store::StoreOpts {
        page_size: cfg.store_page,
        pool_frames: cfg.store_pool,
        sync_every: cfg.store_sync,
    };
    match mic_store::Store::open_shared(&path, opts) {
        Ok(store) => Some(store),
        Err(e) => {
            static WARNED: OnceLock<()> = OnceLock::new();
            WARNED.get_or_init(|| {
                eprintln!(
                    "mic-eval: MIC_STORE={} could not be opened ({e}); \
                     continuing without the durable cache tier",
                    path.display()
                );
            });
            None
        }
    }
}

/// The store-tier key of a cache file: its (format-versioned) file name.
fn store_key(path: &Path) -> Option<Vec<u8>> {
    path.file_name().map(|n| n.as_encoded_bytes().to_vec())
}

/// Best-effort write; failure just means no cache hit next run.
///
/// Public for stress tests and cache-maintenance tools; the experiment
/// drivers go through the keyed cache functions above.
pub fn store_arrays(path: &Path, meta: &[u64], arrays: &[&[Work]]) {
    crate::fault::init_from_env();
    crate::metrics::init_from_env();
    let buf = encode_container(meta, arrays);
    let write = || -> std::io::Result<()> {
        if crate::fault::cache_fault(crate::fault::FaultClass::CacheEnospc, file_site(path)) {
            return Err(std::io::Error::other("mic-fault: injected ENOSPC"));
        }
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
            cleanup_orphan_tmps(dir);
        }
        // Write-then-rename so a crashed run never leaves a torn file
        // under the final name. The tmp name must be unique per writer:
        // concurrent processes sharing MIC_SUITE_CACHE (and concurrent
        // sweep jobs in one process) race on the same key, and a shared
        // `.bin.tmp` name let one writer rename a file another was still
        // filling — a torn cache entry under the *final* name, defeating
        // the whole point of the rename.
        static TMP_COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let tmp = path.with_extension(format!(
            "bin.tmp.{}.{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        std::fs::File::create(&tmp)?.write_all(&buf)?;
        std::fs::rename(&tmp, path).inspect_err(|_| {
            if crate::metrics::enabled() {
                cache_counter(
                    "mic_cache_write_races_total",
                    "Cache stores whose final rename lost (another writer or an fs error).",
                )
                .inc();
            }
            let _ = std::fs::remove_file(&tmp);
        })
    };
    let _ = write();
    // Mirror into the durable store tier. wl2 writes are rare and large,
    // so each one persists immediately: the entry survives `kill -9` the
    // moment store_arrays returns. Best-effort like the file write.
    if let (Some(store), Some(key)) = (store_tier(), store_key(path)) {
        if store.put(&key, &buf).is_ok() {
            let _ = store.persist();
        }
    }
}

/// Remove stale `*.tmp.*` files a crashed writer may have left behind.
/// Runs at most once per process per cache directory use; only files not
/// modified for 15 minutes are touched, so live writers (which hold their
/// unique tmp for milliseconds) are never affected. Best-effort: any
/// error just leaves the orphan for a later run.
fn cleanup_orphan_tmps(dir: &Path) {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let is_tmp = name.to_str().is_some_and(|n| n.contains(".bin.tmp"));
            if !is_tmp {
                continue;
            }
            let stale = entry
                .metadata()
                .and_then(|m| m.modified())
                .ok()
                .and_then(|t| t.elapsed().ok())
                .is_some_and(|age| age.as_secs() > 15 * 60);
            if stale {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    });
}

/// Meta words + work arrays, as stored in one workload file.
pub type StoredArrays = (Vec<u64>, Vec<Arc<Vec<Work>>>);

/// Move a corrupt cache file aside as `<name>.corrupt[.N]` so the caller
/// can recompute while the evidence survives for post-mortems. The
/// destination carries a unique numeric suffix: repeated corruption of
/// the same file used to clobber the earlier `.corrupt` (rename replaces
/// on unix), destroying exactly the evidence a recurring-corruption
/// post-mortem needs most. `hard_link` + `remove_file` claims each
/// candidate name atomically — `AlreadyExists` moves to the next suffix.
/// Falls back to deletion only if no candidate can be claimed — loudly,
/// since that destroys the evidence.
fn quarantine(path: &Path, why: &str) {
    if crate::metrics::enabled() {
        cache_counter(
            "mic_cache_quarantines_total",
            "Corrupt workload-cache files moved aside (or deleted).",
        )
        .inc();
    }
    for i in 0..100u32 {
        let dest = if i == 0 {
            PathBuf::from(format!("{}.corrupt", path.display()))
        } else {
            PathBuf::from(format!("{}.corrupt.{i}", path.display()))
        };
        match std::fs::hard_link(path, &dest) {
            Ok(()) => {
                eprintln!(
                    "mic-eval: workload cache file {} is corrupt ({why}); \
                     quarantining to {} and recomputing",
                    path.display(),
                    dest.display(),
                );
                let _ = std::fs::remove_file(path);
                return;
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
            Err(_) => break,
        }
    }
    eprintln!(
        "mic-eval: could not quarantine {} ({why}); deleting the corrupt file instead",
        path.display(),
    );
    let _ = std::fs::remove_file(path);
}

/// Unlabeled cache counter; every `mic_cache_*` family is label-free.
fn cache_counter(name: &str, help: &'static str) -> Arc<mic_metrics::Counter> {
    crate::metrics::counter(name, help, &[])
}

/// Read a workload file; `None` means "cache miss — recompute". Three
/// distinct miss flavours:
///
/// - missing file, or a v1 (`MICWL1`, pre-checksum) file: plain miss, the
///   file (if any) is left alone and will be overwritten in v2 form;
/// - verified file whose shape disagrees with `expect_arrays` /
///   `expect_meta` (0 accepts any count): plain miss — the file is *valid*,
///   just not what this caller wants;
/// - bad checksum, unparseable structure, or non-finite payload: the file
///   is quarantined to `<name>.corrupt` before returning `None`.
///
/// Public for stress tests and cache-maintenance tools.
pub fn load_arrays(path: &Path, expect_arrays: usize, expect_meta: usize) -> Option<StoredArrays> {
    crate::fault::init_from_env();
    crate::metrics::init_from_env();
    let result = load_arrays_impl(path, expect_arrays, expect_meta);
    if crate::metrics::enabled() {
        if result.is_some() {
            cache_counter("mic_cache_hits_total", "Workload-cache files loaded.").inc();
        } else {
            cache_counter(
                "mic_cache_misses_total",
                "Workload-cache lookups that fell back to recomputation.",
            )
            .inc();
        }
    }
    result
}

fn load_arrays_impl(path: &Path, expect_arrays: usize, expect_meta: usize) -> Option<StoredArrays> {
    // Durable store tier first: a hit skips file IO entirely, and the
    // store already verified the bytes page-by-page. The container is
    // still re-verified below the same way a file read would be, so a
    // buggy writer cannot smuggle malformed arrays through either tier.
    if let (Some(store), Some(key)) = (store_tier(), store_key(path)) {
        if let Some(bytes) = store.get(&key) {
            match verify_container(&bytes, expect_arrays, expect_meta) {
                Verified::Ok(stored) => return Some(stored),
                Verified::ShapeMismatch => return None,
                Verified::Corrupt(why) => {
                    // The store's checksums passed but the container is
                    // malformed: writer bug. Drop the entry and fall
                    // through to the file path.
                    eprintln!(
                        "mic-eval: store-tier entry for {} is corrupt ({why}); dropping it",
                        path.display()
                    );
                    store.remove(&key);
                }
            }
        }
    }
    let mut bytes = Vec::new();
    std::fs::File::open(path)
        .ok()?
        .read_to_end(&mut bytes)
        .ok()?;
    if crate::fault::cache_fault(crate::fault::FaultClass::CacheShortRead, file_site(path)) {
        // Simulate a reader racing a torn write: drop the tail, which is
        // exactly what a killed writer without write-then-rename produces.
        bytes.truncate(bytes.len().saturating_sub(9));
    }
    if bytes.len() >= 8 && &bytes[..8] == MAGIC_V1 {
        return None; // pre-checksum container: plain miss, recompute + rewrite
    }
    match verify_container(&bytes, expect_arrays, expect_meta) {
        Verified::Ok(stored) => Some(stored),
        Verified::ShapeMismatch => None,
        Verified::Corrupt(why) => {
            // Includes the valid-checksum-but-malformed-body case: the
            // *writer* was broken, not the disk; still quarantine — the
            // file can never load.
            quarantine(path, why);
            None
        }
    }
}

enum Verified {
    Ok(StoredArrays),
    ShapeMismatch,
    Corrupt(&'static str),
}

/// Container-level verification shared by the file and store tiers:
/// magic, trailing checksum, then structural parse.
fn verify_container(bytes: &[u8], expect_arrays: usize, expect_meta: usize) -> Verified {
    if bytes.len() < 32 || &bytes[..8] != MAGIC {
        return Verified::Corrupt("unrecognized or truncated header");
    }
    let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
    let body = &bytes[..bytes.len() - 8];
    if xxh64(body, 0) != stored {
        return Verified::Corrupt("checksum mismatch");
    }
    parse_body(body, expect_arrays, expect_meta)
}

/// Decode header + meta + arrays from `body` (magic included, trailing
/// checksum already stripped and verified).
fn parse_body(bytes: &[u8], expect_arrays: usize, expect_meta: usize) -> Verified {
    let mut off = 8usize; // magic, already checked
    let take = |off: &mut usize, n: usize| -> Option<&[u8]> {
        let s = bytes.get(*off..*off + n)?;
        *off += n;
        Some(s)
    };
    let read_u64 = |off: &mut usize| -> Option<u64> {
        Some(u64::from_le_bytes(take(off, 8)?.try_into().ok()?))
    };
    let Some((n_meta, n_arrays)) = read_u64(&mut off)
        .zip(read_u64(&mut off))
        .map(|(m, a)| (m as usize, a as usize))
    else {
        return Verified::Corrupt("truncated counts");
    };
    if n_meta > bytes.len() || n_arrays > bytes.len() {
        return Verified::Corrupt("implausible counts");
    }
    if (expect_meta != 0 && n_meta != expect_meta)
        || (expect_arrays != 0 && n_arrays != expect_arrays)
    {
        return Verified::ShapeMismatch;
    }
    let mut meta = Vec::with_capacity(n_meta);
    for _ in 0..n_meta {
        match read_u64(&mut off) {
            Some(m) => meta.push(m),
            None => return Verified::Corrupt("truncated meta"),
        }
    }
    let mut arrays = Vec::with_capacity(n_arrays);
    for _ in 0..n_arrays {
        let Some(len) = read_u64(&mut off).map(|l| l as usize) else {
            return Verified::Corrupt("truncated array header");
        };
        if len.checked_mul(48).is_none_or(|b| off + b > bytes.len()) {
            return Verified::Corrupt("array overruns file");
        }
        let mut arr = Vec::with_capacity(len);
        for _ in 0..len {
            let mut f = [0.0f64; 6];
            for v in f.iter_mut() {
                *v = f64::from_le_bytes(take(&mut off, 8).unwrap().try_into().unwrap());
            }
            let w = Work {
                issue: f[0],
                l1: f[1],
                l2: f[2],
                dram: f[3],
                flops: f[4],
                atomics: f[5],
            };
            if !w.is_valid() {
                return Verified::Corrupt("non-finite work entry");
            }
            arr.push(w);
        }
        arrays.push(Arc::new(arr));
    }
    if off != bytes.len() {
        return Verified::Corrupt("trailing bytes after last array");
    }
    Verified::Ok((meta, arrays))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_cache_shares_one_build() {
        let a = graph(PaperGraph::Hood, Scale::Vertices(500), OrderTag::Natural);
        let b = graph(PaperGraph::Hood, Scale::Vertices(500), OrderTag::Natural);
        assert!(Arc::ptr_eq(&a, &b), "same key must share one graph");
        let c = graph(
            PaperGraph::Hood,
            Scale::Vertices(500),
            OrderTag::Random { seed: 9 },
        );
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(a.num_vertices(), c.num_vertices());
    }

    #[test]
    fn coloring_cache_is_keyed_by_all_inputs() {
        let scale = Scale::Vertices(400);
        let w1 = coloring(
            PaperGraph::Pwtk,
            scale,
            OrderTag::Natural,
            LocalityWindows::default(),
        );
        let w2 = coloring(
            PaperGraph::Pwtk,
            scale,
            OrderTag::Natural,
            LocalityWindows::default(),
        );
        assert!(Arc::ptr_eq(&w1, &w2));
        let other = LocalityWindows {
            l1_gap: 64,
            l2_gap: 4096,
        };
        let w3 = coloring(PaperGraph::Pwtk, scale, OrderTag::Natural, other);
        assert!(!Arc::ptr_eq(&w1, &w3), "different windows must not share");
    }

    #[test]
    fn concurrent_requests_build_once() {
        let key_scale = Scale::Vertices(600);
        let results = crate::sweep::map_with(8, &[(); 16], |_, _| {
            coloring(
                PaperGraph::Ldoor,
                key_scale,
                OrderTag::Natural,
                LocalityWindows::default(),
            )
        });
        for w in &results {
            assert!(
                Arc::ptr_eq(w, &results[0]),
                "racing builders must converge on one value"
            );
        }
    }

    /// A fresh temp dir + two small arrays for the on-disk tests.
    fn disk_fixture(tag: &str) -> (PathBuf, PathBuf, Vec<Work>, Vec<Work>) {
        let dir = std::env::temp_dir().join(format!("micwl-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join(format!("wl1-selftest-{tag}.bin"));
        let a: Vec<Work> = (0..10)
            .map(|i| Work {
                issue: i as f64,
                dram: 0.5 * i as f64,
                ..Default::default()
            })
            .collect();
        let b: Vec<Work> = vec![
            Work {
                flops: 3.0,
                ..Default::default()
            };
            3
        ];
        (dir, path, a, b)
    }

    #[test]
    fn disk_roundtrip_preserves_arrays_and_rejects_corruption() {
        let (dir, path, a, b) = disk_fixture("roundtrip");
        store_arrays(&path, &[7, 9], &[&a, &b]);
        let (meta, arrays) = load_arrays(&path, 2, 2).expect("roundtrip");
        assert_eq!(meta, vec![7, 9]);
        assert_eq!(arrays.len(), 2);
        assert_eq!(arrays[0].len(), 10);
        assert_eq!(arrays[0][4], a[4]);
        assert_eq!(arrays[1].len(), 3);
        // Wrong expected shape → plain miss, the (valid) file is untouched.
        assert!(load_arrays(&path, 3, 2).is_none());
        assert!(path.exists(), "shape mismatch must not quarantine");
        assert!(load_arrays(&path, 2, 2).is_some());
        // Truncation (torn write) → checksum fails → quarantined, not loaded.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        assert!(load_arrays(&path, 2, 2).is_none());
        assert!(!path.exists(), "corrupt file must be moved aside");
        let corrupt = PathBuf::from(format!("{}.corrupt", path.display()));
        assert!(
            corrupt.exists(),
            "corrupt file must be preserved as evidence"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flipped_payload_byte_is_quarantined_and_recomputed() {
        let (dir, path, a, b) = disk_fixture("bitflip");
        store_arrays(&path, &[1], &[&a, &b]);
        // Flip one bit in the middle of the payload; length and header stay
        // plausible, so only the checksum can catch it.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        assert!(
            load_arrays(&path, 2, 1).is_none(),
            "a flipped payload byte must never be loaded"
        );
        assert!(!path.exists());
        assert!(PathBuf::from(format!("{}.corrupt", path.display())).exists());
        // The cache's contract after quarantine: recompute and store works.
        store_arrays(&path, &[1], &[&a, &b]);
        assert!(load_arrays(&path, 2, 1).is_some(), "recomputed entry loads");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn v1_file_is_a_plain_miss_without_quarantine() {
        let (dir, path, _, _) = disk_fixture("v1");
        std::fs::create_dir_all(&dir).unwrap();
        // A minimal valid *v1* file: magic + zero meta + zero arrays, no
        // trailing checksum. Pre-checksum files are not corrupt, just old.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC_V1);
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(load_arrays(&path, 0, 0).is_none(), "v1 is a miss");
        assert!(path.exists(), "v1 file must not be quarantined");
        assert!(!PathBuf::from(format!("{}.corrupt", path.display())).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_enospc_suppresses_the_write() {
        use crate::fault::{with_plan, FaultClass, FaultPlan};
        let (dir, path, a, _) = disk_fixture("enospc");
        with_plan(
            FaultPlan::with_rate(11, FaultClass::CacheEnospc, 1.0),
            || store_arrays(&path, &[], &[&a]),
        );
        assert!(!path.exists(), "injected ENOSPC must abort the write");
        // Without the plan the same write succeeds.
        store_arrays(&path, &[], &[&a]);
        assert!(load_arrays(&path, 1, 0).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_short_read_quarantines_and_recompute_recovers() {
        use crate::fault::{with_plan, FaultClass, FaultPlan};
        let (dir, path, a, b) = disk_fixture("shortread");
        store_arrays(&path, &[4], &[&a, &b]);
        let missed = with_plan(
            FaultPlan::with_rate(23, FaultClass::CacheShortRead, 1.0),
            || load_arrays(&path, 2, 1),
        );
        assert!(missed.is_none(), "a short read must not produce data");
        assert!(!path.exists(), "the apparently-torn file is moved aside");
        // Recompute path: store again, clean load.
        store_arrays(&path, &[4], &[&a, &b]);
        assert!(load_arrays(&path, 2, 1).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
