//! Performance-baseline regression gate for the bench drivers.
//!
//! `all` records per-exhibit wall times in `BENCH_sweep.json`; this module
//! compares such a run against a committed reference
//! (`BENCH_baseline.json`) and reports per-figure regressions. The knobs:
//!
//! - `MIC_BASELINE=<path>` — the reference file ([`baseline_path`]);
//! - `MIC_BASELINE_TOL=<fraction>` — relative slack (default `0.15`,
//!   i.e. a figure regresses when it is more than 15 % slower than the
//!   reference; [`tol_from_env`]).
//!
//! A figure counts as regressed only when it is *both* `tol` slower in
//! relative terms and [`ABS_SLACK_S`] slower in absolute terms — the
//! absolute floor keeps millisecond-scale exhibits from flapping on
//! scheduler noise. Exhibits present in the reference but missing from
//! the current run are regressions too (the figure was not produced);
//! exhibits new in the current run are reported but never fail the gate.
//!
//! The file format is the `exhibits`/`total_seconds`/`scale` subset of
//! `BENCH_sweep.json`, so a previous sweep output can be committed as a
//! baseline verbatim. Parsing uses the in-crate minimal JSON reader
//! ([`json::parse`]) — the workspace takes no serde dependency for one
//! small file.

use std::path::{Path, PathBuf};

/// Absolute slowdown (seconds) a figure must also exceed before the
/// relative tolerance can fail the gate.
pub const ABS_SLACK_S: f64 = 0.010;

/// Default `MIC_BASELINE_TOL`.
pub const DEFAULT_TOL: f64 = 0.15;

/// Schema version written into every BENCH JSON exhibit
/// (`BENCH_sweep.json`, `BENCH_baseline.json`, `BENCH_serve.json`). Bump
/// when a field changes meaning; the loader rejects versions it does not
/// understand instead of silently misreading them.
pub const SCHEMA_VERSION: u64 = 1;

/// The reference file requested via `MIC_BASELINE` (through
/// [`crate::config`]), if any.
pub fn baseline_path() -> Option<PathBuf> {
    crate::config::current().baseline.clone()
}

/// The relative tolerance: `MIC_BASELINE_TOL` (through [`crate::config`])
/// or [`DEFAULT_TOL`].
pub fn tol_from_env() -> f64 {
    crate::config::current().baseline_tol
}

/// The shared minimal JSON reader now lives in [`crate::json`]; re-export
/// it under the old path for existing callers.
pub use crate::json;

// ---------------------------------------------------------------------------
// The baseline itself.

/// Per-exhibit wall times of one full `all` run — the unit both sides of
/// the gate are expressed in.
#[derive(Clone, Debug, PartialEq)]
pub struct Baseline {
    /// `format!("{scale:?}")` of the run, e.g. `"Fraction(256)"`.
    pub scale: String,
    /// Whole-run wall time, seconds.
    pub total_seconds: f64,
    /// `(exhibit name, seconds)` in run order.
    pub exhibits: Vec<(String, f64)>,
}

impl Baseline {
    /// Serialize in the `BENCH_sweep.json`-compatible shape.
    pub fn to_json(&self) -> String {
        let mut body = String::from("{\n");
        body.push_str(&format!("  \"schema_version\": {SCHEMA_VERSION},\n"));
        body.push_str(&format!("  \"scale\": \"{}\",\n", self.scale));
        body.push_str(&format!(
            "  \"total_seconds\": {:.3},\n",
            self.total_seconds
        ));
        body.push_str("  \"exhibits\": [\n");
        for (i, (name, secs)) in self.exhibits.iter().enumerate() {
            let comma = if i + 1 < self.exhibits.len() { "," } else { "" };
            body.push_str(&format!(
                "    {{\"name\": \"{name}\", \"seconds\": {secs:.3}}}{comma}\n"
            ));
        }
        body.push_str("  ]\n}\n");
        body
    }

    /// Parse a baseline (or a full `BENCH_sweep.json`; extra fields are
    /// ignored). Files written before versioning (no `schema_version`
    /// field) are accepted as version-0 legacies; an explicit version this
    /// build does not understand is rejected with a clear message.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let v = json::parse(text)?;
        if let Some(ver) = v.get("schema_version") {
            match ver.as_u64() {
                Some(n) if n == SCHEMA_VERSION => {}
                Some(n) => {
                    return Err(format!(
                        "unsupported schema_version {n}: this build understands \
                         version {SCHEMA_VERSION} (re-record the file with this \
                         build, or update the tooling)"
                    ));
                }
                None => return Err("\"schema_version\" must be a non-negative integer".into()),
            }
        }
        let scale = v
            .get("scale")
            .and_then(|s| s.as_str())
            .ok_or("missing \"scale\"")?
            .to_string();
        let total_seconds = v
            .get("total_seconds")
            .and_then(|s| s.as_f64())
            .ok_or("missing \"total_seconds\"")?;
        let mut exhibits = Vec::new();
        for e in v
            .get("exhibits")
            .and_then(|e| e.as_arr())
            .ok_or("missing \"exhibits\"")?
        {
            let name = e
                .get("name")
                .and_then(|n| n.as_str())
                .ok_or("exhibit missing \"name\"")?;
            let secs = e
                .get("seconds")
                .and_then(|s| s.as_f64())
                .ok_or("exhibit missing \"seconds\"")?;
            exhibits.push((name.to_string(), secs));
        }
        if exhibits.is_empty() {
            return Err("baseline has no exhibits".into());
        }
        Ok(Baseline {
            scale,
            total_seconds,
            exhibits,
        })
    }

    /// [`Baseline::parse`] from a file, with the path in the error.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Baseline::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

// ---------------------------------------------------------------------------
// The gate.

/// One figure's comparison against the reference.
#[derive(Clone, Debug)]
pub struct GateRow {
    pub name: String,
    pub baseline_s: f64,
    /// `None` when the current run did not produce this exhibit.
    pub current_s: Option<f64>,
    /// `current / baseline` (`f64::INFINITY` when missing or the
    /// reference is zero-time).
    pub ratio: f64,
    pub regressed: bool,
}

/// The per-figure regression table plus gate verdict.
#[derive(Clone, Debug)]
pub struct GateReport {
    pub tol: f64,
    /// `(baseline scale, current scale)` when they disagree — the
    /// comparison is meaningless and the gate fails.
    pub scale_mismatch: Option<(String, String)>,
    pub rows: Vec<GateRow>,
    /// Exhibits in the current run only (reported, never a failure).
    pub new_exhibits: Vec<String>,
    /// Exhibits in the baseline that the exhibit registry no longer
    /// knows ([`compare_known`]): a named warning, never a failure — a
    /// retired exhibit should not brick the gate until the baseline is
    /// re-recorded.
    pub deprecated: Vec<String>,
}

impl GateReport {
    /// Names of the regressing figures (includes `"total"` when the
    /// whole-run time breached).
    pub fn regressions(&self) -> Vec<&str> {
        self.rows
            .iter()
            .filter(|r| r.regressed)
            .map(|r| r.name.as_str())
            .collect()
    }

    /// The gate passes: scales agree and nothing regressed.
    pub fn ok(&self) -> bool {
        self.scale_mismatch.is_none() && self.rows.iter().all(|r| !r.regressed)
    }

    /// Render the regression table (the stderr footer of `all`).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<28} {:>10} {:>10} {:>7}  verdict\n",
            "exhibit", "base s", "now s", "ratio"
        ));
        for r in &self.rows {
            let now = match r.current_s {
                Some(s) => format!("{s:.3}"),
                None => "missing".to_string(),
            };
            let ratio = if r.ratio.is_finite() {
                format!("{:.2}", r.ratio)
            } else {
                "inf".to_string()
            };
            let verdict = if r.regressed {
                format!("REGRESSED (> {:.0}%)", self.tol * 100.0)
            } else {
                "ok".to_string()
            };
            out.push_str(&format!(
                "{:<28} {:>10.3} {:>10} {:>7}  {verdict}\n",
                r.name, r.baseline_s, now, ratio
            ));
        }
        for name in &self.new_exhibits {
            out.push_str(&format!("{name:<28} (new exhibit, not in baseline)\n"));
        }
        for name in &self.deprecated {
            out.push_str(&format!(
                "{name:<28} WARNING: deprecated exhibit (in baseline, not in \
                 registry) — re-record the baseline to silence\n"
            ));
        }
        if let Some((base, now)) = &self.scale_mismatch {
            out.push_str(&format!(
                "scale mismatch: baseline recorded at {base}, this run at {now}\n"
            ));
        }
        out
    }
}

/// Compare `current` against `baseline` at relative tolerance `tol`.
///
/// Row order follows the baseline (the committed file is the contract),
/// with a synthetic `"total"` row last.
pub fn compare(current: &Baseline, baseline: &Baseline, tol: f64) -> GateReport {
    let breach = |base: f64, now: f64| now > base * (1.0 + tol) && now - base > ABS_SLACK_S;
    let mut rows = Vec::new();
    for (name, base_s) in &baseline.exhibits {
        let current_s = current
            .exhibits
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| *s);
        let (ratio, regressed) = match current_s {
            Some(now) => {
                let ratio = if *base_s > 0.0 {
                    now / base_s
                } else if now > 0.0 {
                    f64::INFINITY
                } else {
                    1.0
                };
                (ratio, breach(*base_s, now))
            }
            // The figure disappeared: that is a regression by definition.
            None => (f64::INFINITY, true),
        };
        rows.push(GateRow {
            name: name.clone(),
            baseline_s: *base_s,
            current_s,
            ratio,
            regressed,
        });
    }
    rows.push(GateRow {
        name: "total".to_string(),
        baseline_s: baseline.total_seconds,
        current_s: Some(current.total_seconds),
        ratio: if baseline.total_seconds > 0.0 {
            current.total_seconds / baseline.total_seconds
        } else {
            1.0
        },
        regressed: breach(baseline.total_seconds, current.total_seconds),
    });
    let new_exhibits = current
        .exhibits
        .iter()
        .filter(|(n, _)| !baseline.exhibits.iter().any(|(b, _)| b == n))
        .map(|(n, _)| n.clone())
        .collect();
    GateReport {
        tol,
        scale_mismatch: (current.scale != baseline.scale)
            .then(|| (baseline.scale.clone(), current.scale.clone())),
        rows,
        new_exhibits,
        deprecated: Vec::new(),
    }
}

/// Registry-aware [`compare`]: names on both sides are canonicalized
/// through [`crate::exhibit::canonical_id`] (so historical aliases in a
/// committed file still match), and baseline exhibits the registry no
/// longer knows become named *warnings* in [`GateReport::deprecated`]
/// instead of hard `missing` regressions. An exhibit the registry *does*
/// know that the current run failed to produce stays a regression.
pub fn compare_known(
    current: &Baseline,
    baseline: &Baseline,
    tol: f64,
    known: &[&str],
) -> GateReport {
    let canon = |name: &str| -> String {
        crate::exhibit::canonical_id(name)
            .map(str::to_string)
            .unwrap_or_else(|| name.to_string())
    };
    let breach = |base: f64, now: f64| now > base * (1.0 + tol) && now - base > ABS_SLACK_S;
    let mut rows = Vec::new();
    let mut deprecated = Vec::new();
    for (name, base_s) in &baseline.exhibits {
        let id = canon(name);
        if !known.iter().any(|k| *k == id) {
            deprecated.push(name.clone());
            continue;
        }
        let current_s = current
            .exhibits
            .iter()
            .find(|(n, _)| canon(n) == id)
            .map(|(_, s)| *s);
        let (ratio, regressed) = match current_s {
            Some(now) => {
                let ratio = if *base_s > 0.0 {
                    now / base_s
                } else if now > 0.0 {
                    f64::INFINITY
                } else {
                    1.0
                };
                (ratio, breach(*base_s, now))
            }
            None => (f64::INFINITY, true),
        };
        rows.push(GateRow {
            name: id,
            baseline_s: *base_s,
            current_s,
            ratio,
            regressed,
        });
    }
    rows.push(GateRow {
        name: "total".to_string(),
        baseline_s: baseline.total_seconds,
        current_s: Some(current.total_seconds),
        ratio: if baseline.total_seconds > 0.0 {
            current.total_seconds / baseline.total_seconds
        } else {
            1.0
        },
        regressed: breach(baseline.total_seconds, current.total_seconds),
    });
    let new_exhibits = current
        .exhibits
        .iter()
        .filter(|(n, _)| {
            let id = canon(n);
            !baseline.exhibits.iter().any(|(b, _)| canon(b) == id)
        })
        .map(|(n, _)| n.clone())
        .collect();
    GateReport {
        tol,
        scale_mismatch: (current.scale != baseline.scale)
            .then(|| (baseline.scale.clone(), current.scale.clone())),
        rows,
        new_exhibits,
        deprecated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Baseline {
        Baseline {
            scale: "Fraction(256)".into(),
            total_seconds: 10.0,
            exhibits: vec![
                ("table1".into(), 1.0),
                ("fig1-OpenMp".into(), 4.0),
                ("fig2".into(), 5.0),
            ],
        }
    }

    #[test]
    fn json_roundtrip() {
        let b = base();
        let text = b.to_json();
        assert!(
            text.contains("\"schema_version\": 1"),
            "written baselines carry the schema version: {text}"
        );
        let parsed = Baseline::parse(&text).unwrap();
        assert_eq!(parsed, b);
    }

    #[test]
    fn unknown_schema_version_is_rejected_with_a_clear_message() {
        let text = base().to_json().replace(
            &format!("\"schema_version\": {SCHEMA_VERSION}"),
            "\"schema_version\": 99",
        );
        let err = Baseline::parse(&text).unwrap_err();
        assert!(
            err.contains("unsupported schema_version 99") && err.contains("version 1"),
            "error must name both versions: {err}"
        );
        let bad = base().to_json().replace(
            &format!("\"schema_version\": {SCHEMA_VERSION}"),
            "\"schema_version\": \"one\"",
        );
        assert!(Baseline::parse(&bad).is_err());
    }

    #[test]
    fn files_without_schema_version_still_parse() {
        // Pre-versioning BENCH_sweep.json files stay loadable.
        let text = r#"{"scale": "Full", "total_seconds": 1.0,
                       "exhibits": [{"name": "t", "seconds": 1.0}]}"#;
        assert!(Baseline::parse(text).is_ok());
    }

    #[test]
    fn parses_full_sweep_json_shape() {
        // Extra fields (sweep_threads, failures) are ignored, so a
        // BENCH_sweep.json can be committed as the baseline verbatim.
        let text = r#"{
          "scale": "Full",
          "sweep_threads": 8,
          "total_seconds": 2.5,
          "exhibits": [
            {"name": "table1", "seconds": 0.5},
            {"name": "fig2", "seconds": 2.0}
          ],
          "failures": [
            {"context": "fig2", "point": 3, "cause": "panic",
             "detail": "panic: \"quoted\"\nline", "attempts": 3}
          ]
        }"#;
        let b = Baseline::parse(text).unwrap();
        assert_eq!(b.scale, "Full");
        assert_eq!(b.exhibits.len(), 2);
        assert_eq!(b.exhibits[1], ("fig2".to_string(), 2.0));
    }

    #[test]
    fn rejects_malformed_baselines() {
        for bad in [
            "",
            "{",
            "[1, 2]",
            r#"{"scale": "Full"}"#,
            r#"{"scale": "Full", "total_seconds": 1.0, "exhibits": []}"#,
            r#"{"scale": 3, "total_seconds": 1.0, "exhibits": [{"name": "a", "seconds": 1}]}"#,
        ] {
            assert!(Baseline::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn within_tolerance_passes() {
        let mut now = base();
        for (_, s) in &mut now.exhibits {
            *s *= 1.10; // 10% slower everywhere, tol 15%
        }
        now.total_seconds *= 1.10;
        let report = compare(&now, &base(), 0.15);
        assert!(report.ok(), "{}", report.to_table());
        assert!(report.regressions().is_empty());
    }

    #[test]
    fn a_regressing_figure_is_named() {
        let mut now = base();
        now.exhibits[1].1 = 8.0; // fig1-OpenMp 2x slower
        let report = compare(&now, &base(), 0.15);
        assert!(!report.ok());
        assert_eq!(report.regressions(), vec!["fig1-OpenMp"]);
        assert!(report.to_table().contains("fig1-OpenMp"));
        assert!(report.to_table().contains("REGRESSED"));
    }

    #[test]
    fn missing_and_new_exhibits() {
        let mut now = base();
        now.exhibits.remove(2); // fig2 not produced
        now.exhibits.push(("fig9".into(), 0.1));
        let report = compare(&now, &base(), 0.15);
        assert_eq!(report.regressions(), vec!["fig2"]);
        assert_eq!(report.new_exhibits, vec!["fig9".to_string()]);
        assert!(report.to_table().contains("missing"));
    }

    #[test]
    fn tiny_exhibits_do_not_flap() {
        // 3ms vs 1ms is 3x, but inside the absolute slack.
        let fast = Baseline {
            scale: "Full".into(),
            total_seconds: 0.001,
            exhibits: vec![("t".into(), 0.001)],
        };
        let slow = Baseline {
            scale: "Full".into(),
            total_seconds: 0.003,
            exhibits: vec![("t".into(), 0.003)],
        };
        assert!(compare(&slow, &fast, 0.15).ok());
    }

    #[test]
    fn scale_mismatch_fails_the_gate() {
        let mut now = base();
        now.scale = "Full".into();
        let report = compare(&now, &base(), 0.15);
        assert!(!report.ok());
        assert!(report.to_table().contains("scale mismatch"));
    }

    #[test]
    fn deprecated_baseline_exhibit_warns_not_fails() {
        // A baseline recorded when "fig9-retired" existed must not brick
        // the gate after the exhibit is removed from the registry.
        let mut old = base();
        old.exhibits.push(("fig9-retired".into(), 2.0));
        let known = ["table1", "fig1-OpenMp", "fig2"];
        let report = compare_known(&base(), &old, 0.15, &known);
        assert!(report.ok(), "{}", report.to_table());
        assert_eq!(report.deprecated, vec!["fig9-retired".to_string()]);
        assert!(report.to_table().contains("deprecated exhibit"));
        // But a *known* exhibit the run failed to produce stays fatal.
        let mut now = base();
        now.exhibits.remove(2);
        let report = compare_known(&now, &base(), 0.15, &known);
        assert!(!report.ok());
        assert_eq!(report.regressions(), vec!["fig2"]);
    }

    #[test]
    fn compare_known_folds_historical_aliases() {
        // A hand-written baseline using the "fig1a" shorthand still
        // matches the registry id "fig1-OpenMp".
        let mut old = base();
        old.exhibits[1].0 = "fig1a".into();
        let known = ["table1", "fig1-OpenMp", "fig2"];
        let report = compare_known(&base(), &old, 0.15, &known);
        assert!(report.ok(), "{}", report.to_table());
        assert!(report.rows.iter().any(|r| r.name == "fig1-OpenMp"));
        assert!(report.new_exhibits.is_empty());
    }

    #[test]
    fn committed_baseline_names_all_canonicalize() {
        // Loader-compat: every exhibit name in the committed
        // BENCH_baseline.json must resolve to a current registry id.
        let path =
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_baseline.json");
        let b = Baseline::load(&path).unwrap();
        for (name, _) in &b.exhibits {
            assert!(
                crate::exhibit::canonical_id(name).is_some(),
                "baseline exhibit {name:?} unknown to the registry"
            );
        }
    }

    #[test]
    fn total_row_breaches_too() {
        let mut now = base();
        now.total_seconds = 20.0;
        let report = compare(&now, &base(), 0.15);
        assert_eq!(report.regressions(), vec!["total"]);
    }
}
