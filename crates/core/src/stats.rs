//! Aggregation helpers: the paper's speedup methodology.
//!
//! "Speedup value on multiple graphs are geometric mean of the speedup of
//! each graph, which is computed using as baseline the configuration that
//! performs the fastest on 1 thread for that graph."

/// Geometric mean of positive values (1.0 for an empty slice).
///
/// Non-finite entries are skipped: a degraded sweep (see
/// [`crate::sweep::map_degraded`]) reports failed points as NaN, and one
/// lost graph should shrink the mean's support, not poison the whole
/// series. All-non-finite input yields NaN. *Finite* non-positive values
/// still panic — those are never produced by degradation, only by bugs.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let mut log_sum = 0.0f64;
    let mut n = 0usize;
    for &v in values {
        if !v.is_finite() {
            continue;
        }
        assert!(v > 0.0, "geomean requires positive values, got {v}");
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        return f64::NAN;
    }
    (log_sum / n as f64).exp()
}

/// Per-graph execution costs of several configurations over a thread grid.
/// `cycles[config][graph][ti]` → speedups per config:
/// `geomean_g( baseline_g / cycles[config][g][ti] )` where `baseline_g` is
/// the fastest 1-thread cost across configs for that graph.
pub fn paper_speedups(cycles: &[Vec<Vec<f64>>]) -> Vec<Vec<f64>> {
    assert!(!cycles.is_empty());
    let n_graphs = cycles[0].len();
    let n_t = cycles[0][0].len();
    for c in cycles {
        assert_eq!(c.len(), n_graphs, "inconsistent graph counts");
        assert!(c.iter().all(|g| g.len() == n_t), "inconsistent grids");
    }
    // Fastest 1-thread configuration per graph.
    let baselines: Vec<f64> = (0..n_graphs)
        .map(|g| cycles.iter().map(|c| c[g][0]).fold(f64::INFINITY, f64::min))
        .collect();
    cycles
        .iter()
        .map(|c| {
            (0..n_t)
                .map(|ti| {
                    let per_graph: Vec<f64> =
                        (0..n_graphs).map(|g| baselines[g] / c[g][ti]).collect();
                    geomean(&per_graph)
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[4.0, 9.0]) - 6.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 1.0);
        assert!((geomean(&[5.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_nonpositive() {
        geomean(&[1.0, 0.0]);
    }

    #[test]
    fn geomean_skips_nonfinite_degraded_points() {
        assert!((geomean(&[4.0, f64::NAN, 9.0]) - 6.0).abs() < 1e-12);
        assert!((geomean(&[f64::INFINITY, 5.0]) - 5.0).abs() < 1e-12);
        assert!(geomean(&[f64::NAN, f64::NAN]).is_nan());
        assert!(geomean(&[f64::NEG_INFINITY]).is_nan());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_negative() {
        geomean(&[2.0, -3.0]);
    }

    #[test]
    fn geomean_extreme_magnitudes_stay_finite() {
        // Log-domain accumulation: the product 1e300 * 1e-300 overflows /
        // underflows in linear space but the mean is exactly 1.
        assert!((geomean(&[1e300, 1e-300]) - 1.0).abs() < 1e-9);
        // Many large values whose product overflows f64.
        let big = [1e308; 8];
        let g = geomean(&big);
        assert!(g.is_finite() && (g / 1e308 - 1.0).abs() < 1e-9);
        // Tiny but positive values stay positive, never rounding to 0 NaNs.
        let tiny = [f64::MIN_POSITIVE; 4];
        assert!(geomean(&tiny) > 0.0);
    }

    #[test]
    fn geomean_is_scale_invariant_and_order_free() {
        let xs = [3.0, 7.0, 11.0, 0.5];
        let scaled: Vec<f64> = xs.iter().map(|v| v * 10.0).collect();
        assert!((geomean(&scaled) / geomean(&xs) - 10.0).abs() < 1e-12);
        let mut rev = xs;
        rev.reverse();
        assert!((geomean(&rev) - geomean(&xs)).abs() < 1e-12);
    }

    #[test]
    fn geomean_singleton_nan_vs_empty() {
        // Empty = neutral element 1.0; all-degraded = NaN. The distinction
        // matters to figure code deciding whether a series exists at all.
        assert_eq!(geomean(&[]), 1.0);
        assert!(geomean(&[f64::NAN]).is_nan());
    }

    #[test]
    fn speedups_survive_a_degraded_graph() {
        // Graph 1's t=2 point failed (NaN); the geomean falls back to the
        // surviving graph instead of poisoning the series.
        let c = vec![vec![100.0, 25.0], vec![90.0, f64::NAN]];
        let s = paper_speedups(&[c]);
        assert!((s[0][1] - 4.0).abs() < 1e-12);
        assert!(s[0][0].is_finite());
    }

    #[test]
    fn speedups_use_fastest_single_thread_baseline() {
        // Two configs, one graph, grid {1, 2}: config B is slower at t=1,
        // so its speedup there is below 1 relative to A's baseline.
        let a = vec![vec![100.0, 50.0]];
        let b = vec![vec![200.0, 40.0]];
        let s = paper_speedups(&[a, b]);
        assert!((s[0][0] - 1.0).abs() < 1e-12);
        assert!((s[0][1] - 2.0).abs() < 1e-12);
        assert!((s[1][0] - 0.5).abs() < 1e-12);
        assert!((s[1][1] - 2.5).abs() < 1e-12);
    }

    #[test]
    fn speedups_geomean_across_graphs() {
        // One config, two graphs with speedups 4 and 9 at t=2.
        let c = vec![vec![100.0, 25.0], vec![90.0, 10.0]];
        let s = paper_speedups(&[c]);
        assert!((s[0][1] - 6.0).abs() < 1e-12);
    }
}
