//! `SuiteConfig`: the typed owner of every `MIC_*` knob.
//!
//! Historically each layer read its own environment variables at point of
//! use (`MIC_SWEEP_THREADS` in the sweep harness, `MIC_BASELINE` in the
//! gate, `MIC_SUITE_CACHE` in the workload cache, ...). That worked for
//! one-shot bins but made the knobs impossible to audit, to override
//! programmatically (the serve layer takes requests, not env vars), or to
//! test without process-global races. `SuiteConfig` replaces the ad-hoc
//! plumbing:
//!
//! - [`SuiteConfig::from_env`] is the **only** place `MIC_*` environment
//!   variables are read (through the [`crate::env`] warn-once parsers; a
//!   CI grep forbids raw `std::env::var("MIC_…")` reads anywhere else);
//! - builder methods override individual knobs — precedence is **builder
//!   > env > default**;
//! - [`SuiteConfig::install`] publishes a config process-wide; every
//!   consumer (sweep, baseline gate, metrics policy, trace export,
//!   workload cache, fault injection, the bench bins and `mic-serve`)
//!   reads [`current`], which lazily installs `from_env()` on first use —
//!   so a plain bin run behaves exactly as before.
//!
//! | knob | env var | default |
//! |---|---|---|
//! | `sweep_threads` | `MIC_SWEEP_THREADS` | available parallelism, ≤ 16 |
//! | `sweep_retries` | `MIC_SWEEP_RETRIES` | 2 |
//! | `sweep_deadline_ms` | `MIC_SWEEP_DEADLINE_MS` | none |
//! | `cache_dir` | `MIC_SUITE_CACHE` | off |
//! | `fault` | `MIC_FAULT` | none |
//! | `metrics` | `MIC_METRICS` | off |
//! | `baseline` | `MIC_BASELINE` | none |
//! | `baseline_tol` | `MIC_BASELINE_TOL` | 0.15 |
//! | `trace` | `MIC_TRACE` | off |
//! | `bench_json` | `MIC_BENCH_JSON` | `BENCH_sweep.json` |
//! | `steal_spin` | `MIC_STEAL_SPIN` | 64 |
//! | `serve_shards` | `MIC_SERVE_SHARDS` | 4 |
//! | `serve_quota` | `MIC_SERVE_QUOTA` | 256 |
//! | `serve_wire` | `MIC_SERVE_WIRE` | `binary` |
//! | `serve_max_request` | `MIC_SERVE_MAX_REQUEST` | 65536 |
//! | `serve_conn_cap` | `MIC_SERVE_CONNS` | 256 |
//! | `store_path` | `MIC_STORE` | off |
//! | `store_page` | `MIC_STORE_PAGE` | 4096 |
//! | `store_pool` | `MIC_STORE_POOL` | 256 |
//! | `store_sync` | `MIC_STORE_SYNC` | 0 (persist on shutdown only) |
//! | `obs` | `MIC_OBS` | off |
//! | `obs_slow_ms` | `MIC_OBS_SLOW_MS` | none |
//! | `obs_ring` | `MIC_OBS_RING` | 1024 |

use crate::fault::FaultPlan;
use std::path::PathBuf;
use std::sync::{Arc, OnceLock, RwLock};

/// What `MIC_METRICS` (or the builder) asked for.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum MetricsMode {
    /// Metrics registry off; instrumented paths cost one relaxed load.
    #[default]
    Off,
    /// Registry on; bench bins embed a snapshot in their JSON output.
    On,
    /// Registry on, and the Prometheus text snapshot is written here.
    OnWithPath(PathBuf),
}

impl MetricsMode {
    /// `MIC_METRICS` grammar: unset/empty/`0` off, `1`/`true` on, anything
    /// else is a snapshot path (and on).
    fn parse(raw: Option<String>) -> MetricsMode {
        match raw {
            None => MetricsMode::Off,
            Some(v) => {
                let t = v.trim();
                if t == "0" {
                    MetricsMode::Off
                } else if t == "1" || t.eq_ignore_ascii_case("true") {
                    MetricsMode::On
                } else {
                    MetricsMode::OnWithPath(PathBuf::from(v))
                }
            }
        }
    }

    pub fn is_on(&self) -> bool {
        !matches!(self, MetricsMode::Off)
    }
}

/// What `MIC_OBS` (or the builder) asked for: request tracing + the
/// flight recorder, and where flight-recorder dumps land.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum ObsMode {
    /// Observability off; instrumented paths cost one relaxed load.
    #[default]
    Off,
    /// Tracing + flight recorder on; dumps go to the default `mic-obs/`
    /// directory.
    On,
    /// On, with dumps written under this directory.
    OnWithDir(PathBuf),
}

impl ObsMode {
    /// `MIC_OBS` grammar (mirrors `MIC_METRICS`): unset/empty/`0` off,
    /// `1`/`true` on with the default dump directory, anything else is a
    /// dump directory (and on).
    fn parse(raw: Option<String>) -> ObsMode {
        match raw {
            None => ObsMode::Off,
            Some(v) => {
                let t = v.trim();
                if t.is_empty() || t == "0" {
                    ObsMode::Off
                } else if t == "1" || t.eq_ignore_ascii_case("true") {
                    ObsMode::On
                } else {
                    ObsMode::OnWithDir(PathBuf::from(v))
                }
            }
        }
    }

    pub fn is_on(&self) -> bool {
        !matches!(self, ObsMode::Off)
    }
}

/// Which wire format the serve layer's client/bench sides speak by
/// default. The server itself negotiates per connection (the first byte
/// selects framing), so this knob steers the *initiating* side: the load
/// client, the bench harness, and any embedding that builds requests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ServeWire {
    /// Length-prefixed binary frames (magic + version + len + op tag).
    #[default]
    Binary,
    /// Newline-delimited JSON — the debug/compat mode.
    Json,
}

impl ServeWire {
    /// `MIC_SERVE_WIRE` grammar: unset/empty/`binary` → binary, `json` →
    /// JSON compat; anything else warns once and uses the default.
    fn parse(raw: Option<String>) -> ServeWire {
        match raw.as_deref().map(str::trim) {
            None | Some("") | Some("binary") => ServeWire::Binary,
            Some("json") => ServeWire::Json,
            Some(other) => {
                static WARNED: std::sync::Once = std::sync::Once::new();
                let owned = other.to_string();
                WARNED.call_once(|| {
                    eprintln!(
                        "mic-eval: ignoring MIC_SERVE_WIRE={owned:?} (need binary|json); \
                         using binary"
                    );
                });
                ServeWire::Binary
            }
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            ServeWire::Binary => "binary",
            ServeWire::Json => "json",
        }
    }
}

/// The typed suite configuration. Construct with [`SuiteConfig::default`]
/// (all knobs at their documented defaults), [`SuiteConfig::from_env`]
/// (env overlaid on the defaults), then chain builder methods; publish
/// with [`SuiteConfig::install`].
#[derive(Clone, Debug)]
pub struct SuiteConfig {
    /// Sweep pool worker count; `None` = auto (available parallelism ≤ 16).
    pub sweep_threads: Option<usize>,
    /// Re-runs after a failed resilient-sweep attempt.
    pub sweep_retries: u32,
    /// Cooperative per-attempt deadline; `None`/0 = none.
    pub sweep_deadline_ms: Option<u64>,
    /// On-disk workload cache directory; `None` = in-memory only.
    pub cache_dir: Option<PathBuf>,
    /// Default fault-injection plan (a `with_plan` session still wins).
    pub fault: Option<FaultPlan>,
    /// Metrics policy.
    pub metrics: MetricsMode,
    /// Perf-baseline reference file for the regression gate.
    pub baseline: Option<PathBuf>,
    /// Relative tolerance of the baseline gate.
    pub baseline_tol: f64,
    /// Chrome trace output path; `None` = tracing off.
    pub trace: Option<PathBuf>,
    /// Where `all` writes its machine-readable sweep record; `None` = off.
    pub bench_json: Option<PathBuf>,
    /// Spin iterations before an event-count waiter parks on its futex
    /// (the runtime's `park_spin` knob); `None` = the runtime default.
    /// `Some(0)` parks immediately — the syscall-heavy-but-CPU-frugal end.
    pub steal_spin: Option<usize>,
    /// Worker shards in the serve router (each shard owns a dispatcher:
    /// queue, executor, pool, LRU).
    pub serve_shards: usize,
    /// Per-client (per peer IP) in-flight simulate quota; the soft tier
    /// sheds past it under load, the hard tier at twice it always.
    pub serve_quota: usize,
    /// Default wire mode for the serve client/bench initiating side.
    pub serve_wire: ServeWire,
    /// Largest accepted request, in bytes — caps both a JSON line and a
    /// binary frame payload.
    pub serve_max_request: usize,
    /// Concurrent connection cap; connects past it are refused with a
    /// `shed` response instead of an unbounded thread spawn.
    pub serve_conn_cap: usize,
    /// Crash-safe paged store file backing the wl2 cache and the serve
    /// result spill tier; `None` = durable tier off.
    pub store_path: Option<PathBuf>,
    /// Store page size in bytes (fixed at file creation).
    pub store_page: usize,
    /// Store buffer-pool capacity in frames (resident pages).
    pub store_pool: usize,
    /// Auto-persist the store after this many puts; 0 = only on explicit
    /// persist (graceful shutdown). Raise durability under `kill -9` by
    /// lowering this.
    pub store_sync: usize,
    /// Observability policy: request tracing plus the flight recorder.
    pub obs: ObsMode,
    /// Requests slower than this dump the flight recorder (tail
    /// sampling); `None`/0 = no slow-request sampling.
    pub obs_slow_ms: Option<u64>,
    /// Flight-recorder ring capacity, events per thread.
    pub obs_ring: usize,
}

impl Default for SuiteConfig {
    fn default() -> SuiteConfig {
        SuiteConfig {
            sweep_threads: None,
            sweep_retries: 2,
            sweep_deadline_ms: None,
            cache_dir: None,
            fault: None,
            metrics: MetricsMode::Off,
            baseline: None,
            baseline_tol: crate::baseline::DEFAULT_TOL,
            trace: None,
            bench_json: Some(PathBuf::from("BENCH_sweep.json")),
            steal_spin: None,
            serve_shards: 4,
            serve_quota: 256,
            serve_wire: ServeWire::Binary,
            serve_max_request: 64 * 1024,
            serve_conn_cap: 256,
            store_path: None,
            store_page: 4096,
            store_pool: 256,
            store_sync: 0,
            obs: ObsMode::Off,
            obs_slow_ms: None,
            obs_ring: 1024,
        }
    }
}

impl SuiteConfig {
    /// The environment-configured config: every `MIC_*` knob overlaid on
    /// the defaults. This is the single place the suite reads its
    /// environment variables; set-but-unusable values warn once and fall
    /// back (the [`crate::env`] discipline).
    pub fn from_env() -> SuiteConfig {
        let defaults = SuiteConfig::default();
        SuiteConfig {
            sweep_threads: crate::env::positive_usize("MIC_SWEEP_THREADS"),
            sweep_retries: crate::env::nonneg_u64("MIC_SWEEP_RETRIES")
                .map_or(defaults.sweep_retries, |v| v.min(100) as u32),
            sweep_deadline_ms: crate::env::nonneg_u64("MIC_SWEEP_DEADLINE_MS").filter(|v| *v > 0),
            cache_dir: crate::env::path("MIC_SUITE_CACHE"),
            fault: parse_env_fault(),
            metrics: MetricsMode::parse(crate::env::raw("MIC_METRICS")),
            baseline: crate::env::path("MIC_BASELINE"),
            baseline_tol: crate::env::nonneg_f64("MIC_BASELINE_TOL")
                .unwrap_or(defaults.baseline_tol),
            trace: crate::env::path("MIC_TRACE"),
            bench_json: match crate::env::raw("MIC_BENCH_JSON") {
                None => defaults.bench_json,
                Some(v) if v.trim() == "0" => None,
                Some(v) => Some(PathBuf::from(v)),
            },
            steal_spin: crate::env::nonneg_u64("MIC_STEAL_SPIN").map(|v| v.min(1 << 20) as usize),
            serve_shards: crate::env::positive_usize("MIC_SERVE_SHARDS")
                .map_or(defaults.serve_shards, |v| v.min(64)),
            serve_quota: crate::env::positive_usize("MIC_SERVE_QUOTA")
                .unwrap_or(defaults.serve_quota),
            serve_wire: ServeWire::parse(crate::env::raw("MIC_SERVE_WIRE")),
            serve_max_request: crate::env::positive_usize("MIC_SERVE_MAX_REQUEST")
                .map_or(defaults.serve_max_request, |v| v.clamp(256, 1 << 30)),
            serve_conn_cap: crate::env::positive_usize("MIC_SERVE_CONNS")
                .unwrap_or(defaults.serve_conn_cap),
            store_path: crate::env::path("MIC_STORE"),
            store_page: crate::env::positive_usize("MIC_STORE_PAGE")
                .map_or(defaults.store_page, |v| v.clamp(512, 1 << 20)),
            store_pool: crate::env::positive_usize("MIC_STORE_POOL").unwrap_or(defaults.store_pool),
            store_sync: crate::env::nonneg_u64("MIC_STORE_SYNC")
                .map_or(defaults.store_sync, |v| v.min(1 << 20) as usize),
            obs: ObsMode::parse(crate::env::raw("MIC_OBS")),
            obs_slow_ms: crate::env::nonneg_u64("MIC_OBS_SLOW_MS").filter(|v| *v > 0),
            obs_ring: crate::env::positive_usize("MIC_OBS_RING")
                .map_or(defaults.obs_ring, |v| v.clamp(8, 1 << 20)),
        }
    }

    // -- builder methods (each overrides one knob; precedence over env) --

    pub fn sweep_threads(mut self, threads: usize) -> Self {
        self.sweep_threads = Some(threads);
        self
    }

    pub fn sweep_retries(mut self, retries: u32) -> Self {
        self.sweep_retries = retries;
        self
    }

    pub fn sweep_deadline_ms(mut self, deadline_ms: Option<u64>) -> Self {
        self.sweep_deadline_ms = deadline_ms.filter(|v| *v > 0);
        self
    }

    pub fn cache_dir(mut self, dir: Option<PathBuf>) -> Self {
        self.cache_dir = dir;
        self
    }

    pub fn fault(mut self, plan: Option<FaultPlan>) -> Self {
        self.fault = plan;
        self
    }

    pub fn metrics(mut self, mode: MetricsMode) -> Self {
        self.metrics = mode;
        self
    }

    pub fn baseline(mut self, path: Option<PathBuf>) -> Self {
        self.baseline = path;
        self
    }

    pub fn baseline_tol(mut self, tol: f64) -> Self {
        self.baseline_tol = tol;
        self
    }

    pub fn trace(mut self, path: Option<PathBuf>) -> Self {
        self.trace = path;
        self
    }

    pub fn bench_json(mut self, path: Option<PathBuf>) -> Self {
        self.bench_json = path;
        self
    }

    pub fn steal_spin(mut self, spin: Option<usize>) -> Self {
        self.steal_spin = spin;
        self
    }

    pub fn serve_shards(mut self, shards: usize) -> Self {
        self.serve_shards = shards.clamp(1, 64);
        self
    }

    pub fn serve_quota(mut self, quota: usize) -> Self {
        self.serve_quota = quota.max(1);
        self
    }

    pub fn serve_wire(mut self, wire: ServeWire) -> Self {
        self.serve_wire = wire;
        self
    }

    pub fn serve_max_request(mut self, bytes: usize) -> Self {
        self.serve_max_request = bytes.clamp(256, 1 << 30);
        self
    }

    pub fn serve_conn_cap(mut self, cap: usize) -> Self {
        self.serve_conn_cap = cap.max(1);
        self
    }

    pub fn store_path(mut self, path: Option<PathBuf>) -> Self {
        self.store_path = path;
        self
    }

    pub fn store_page(mut self, bytes: usize) -> Self {
        self.store_page = bytes.clamp(512, 1 << 20);
        self
    }

    pub fn store_pool(mut self, frames: usize) -> Self {
        self.store_pool = frames.max(1);
        self
    }

    pub fn store_sync(mut self, puts: usize) -> Self {
        self.store_sync = puts;
        self
    }

    pub fn obs(mut self, mode: ObsMode) -> Self {
        self.obs = mode;
        self
    }

    pub fn obs_slow_ms(mut self, ms: Option<u64>) -> Self {
        self.obs_slow_ms = ms.filter(|v| *v > 0);
        self
    }

    pub fn obs_ring(mut self, events: usize) -> Self {
        self.obs_ring = events.clamp(8, 1 << 20);
        self
    }

    /// The [`mic_obs::ObsConfig`] this config asks for; `None` = off.
    pub fn obs_config(&self) -> Option<mic_obs::ObsConfig> {
        let dir = match &self.obs {
            ObsMode::Off => return None,
            ObsMode::On => PathBuf::from("mic-obs"),
            ObsMode::OnWithDir(d) => d.clone(),
        };
        Some(mic_obs::ObsConfig {
            dir,
            slow_ms: self.obs_slow_ms,
            ring: self.obs_ring,
        })
    }

    /// The sweep worker count with the auto default applied.
    pub fn effective_sweep_threads(&self) -> usize {
        self.sweep_threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(16)
        })
    }

    /// Publish this config process-wide: subsequent [`current`] calls (in
    /// every layer) see it. Replaces any previously installed config.
    pub fn install(self) {
        self.apply();
        *slot().write().unwrap_or_else(|e| e.into_inner()) = Some(Arc::new(self));
    }

    /// Push knobs that live outside the config slot into their process
    /// globals (currently the runtime's park-spin budget). Re-applying on
    /// every install keeps replacement configs consistent: a config with
    /// `steal_spin: None` restores the runtime default.
    fn apply(&self) {
        mic_runtime::set_park_spin(
            self.steal_spin
                .unwrap_or(mic_runtime::sync::DEFAULT_PARK_SPIN),
        );
        match self.obs_config() {
            Some(obs) => mic_obs::install(obs),
            None => mic_obs::disable(),
        }
    }
}

fn slot() -> &'static RwLock<Option<Arc<SuiteConfig>>> {
    static SLOT: OnceLock<RwLock<Option<Arc<SuiteConfig>>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

/// The installed [`SuiteConfig`], installing [`SuiteConfig::from_env`] on
/// first use. Cheap after the first call (one RwLock read + Arc clone).
pub fn current() -> Arc<SuiteConfig> {
    if let Some(cfg) = slot().read().unwrap_or_else(|e| e.into_inner()).as_ref() {
        return Arc::clone(cfg);
    }
    let mut w = slot().write().unwrap_or_else(|e| e.into_inner());
    // Racing installer may have won while we upgraded the lock.
    Arc::clone(w.get_or_insert_with(|| {
        let cfg = SuiteConfig::from_env();
        cfg.apply();
        Arc::new(cfg)
    }))
}

/// `MIC_FAULT`, parsed and reported once per process. A malformed spec is
/// rejected loudly rather than half-applied.
fn parse_env_fault() -> Option<FaultPlan> {
    let spec = crate::env::raw("MIC_FAULT")?;
    static REPORT: std::sync::Once = std::sync::Once::new();
    match FaultPlan::parse(&spec) {
        Ok(plan) => {
            REPORT.call_once(|| {
                eprintln!(
                    "mic-eval: fault injection active (MIC_FAULT seed {})",
                    plan.seed()
                );
            });
            Some(plan)
        }
        Err(e) => {
            REPORT.call_once(|| eprintln!("mic-eval: ignoring MIC_FAULT: {e}"));
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_documented_values() {
        let c = SuiteConfig::default();
        assert_eq!(c.sweep_threads, None);
        assert_eq!(c.sweep_retries, 2);
        assert_eq!(c.sweep_deadline_ms, None);
        assert!(c.cache_dir.is_none() && c.fault.is_none());
        assert_eq!(c.metrics, MetricsMode::Off);
        assert!(c.baseline.is_none());
        assert_eq!(c.baseline_tol, crate::baseline::DEFAULT_TOL);
        assert!(c.trace.is_none());
        assert_eq!(c.bench_json, Some(PathBuf::from("BENCH_sweep.json")));
        assert_eq!(c.steal_spin, None);
        assert_eq!(c.serve_shards, 4);
        assert_eq!(c.serve_quota, 256);
        assert_eq!(c.serve_wire, ServeWire::Binary);
        assert_eq!(c.serve_max_request, 64 * 1024);
        assert_eq!(c.serve_conn_cap, 256);
        assert!(c.store_path.is_none());
        assert_eq!(c.store_page, 4096);
        assert_eq!(c.store_pool, 256);
        assert_eq!(c.store_sync, 0);
        assert_eq!(c.obs, ObsMode::Off);
        assert_eq!(c.obs_slow_ms, None);
        assert_eq!(c.obs_ring, 1024);
    }

    #[test]
    fn store_builders_clamp_to_sane_ranges() {
        let c = SuiteConfig::default()
            .store_path(Some(PathBuf::from("/tmp/x.pg")))
            .store_page(1)
            .store_pool(0)
            .store_sync(3);
        assert_eq!(c.store_path, Some(PathBuf::from("/tmp/x.pg")));
        assert_eq!(c.store_page, 512, "page floor keeps the tail sealed");
        assert_eq!(c.store_pool, 1);
        assert_eq!(c.store_sync, 3);
        assert_eq!(
            SuiteConfig::default().store_page(1 << 30).store_page,
            1 << 20
        );
    }

    #[test]
    fn serve_wire_grammar() {
        assert_eq!(ServeWire::parse(None), ServeWire::Binary);
        assert_eq!(ServeWire::parse(Some("binary".into())), ServeWire::Binary);
        assert_eq!(ServeWire::parse(Some(" json ".into())), ServeWire::Json);
        assert_eq!(ServeWire::parse(Some("msgpack".into())), ServeWire::Binary);
        assert_eq!(ServeWire::Json.name(), "json");
    }

    #[test]
    fn serve_builders_clamp_to_sane_ranges() {
        let c = SuiteConfig::default()
            .serve_shards(0)
            .serve_quota(0)
            .serve_wire(ServeWire::Json)
            .serve_max_request(1)
            .serve_conn_cap(0);
        assert_eq!(c.serve_shards, 1, "at least one shard");
        assert_eq!(c.serve_quota, 1);
        assert_eq!(c.serve_wire, ServeWire::Json);
        assert_eq!(c.serve_max_request, 256, "cap floor keeps pings parseable");
        assert_eq!(c.serve_conn_cap, 1);
        assert_eq!(SuiteConfig::default().serve_shards(999).serve_shards, 64);
    }

    #[test]
    fn steal_spin_round_trips_through_install() {
        SuiteConfig::default().steal_spin(Some(7)).install();
        assert_eq!(mic_runtime::park_spin(), 7);
        // A replacement config without the knob restores the default.
        SuiteConfig::default().install();
        assert_eq!(
            mic_runtime::park_spin(),
            mic_runtime::sync::DEFAULT_PARK_SPIN
        );
    }

    #[test]
    fn builder_overrides_win() {
        let c = SuiteConfig::default()
            .sweep_threads(3)
            .sweep_retries(0)
            .sweep_deadline_ms(Some(250))
            .baseline_tol(0.5)
            .bench_json(None)
            .metrics(MetricsMode::On);
        assert_eq!(c.sweep_threads, Some(3));
        assert_eq!(c.effective_sweep_threads(), 3);
        assert_eq!(c.sweep_retries, 0);
        assert_eq!(c.sweep_deadline_ms, Some(250));
        assert_eq!(c.baseline_tol, 0.5);
        assert_eq!(c.bench_json, None);
        assert!(c.metrics.is_on());
    }

    #[test]
    fn zero_deadline_means_none() {
        let c = SuiteConfig::default().sweep_deadline_ms(Some(0));
        assert_eq!(c.sweep_deadline_ms, None);
    }

    #[test]
    fn effective_threads_auto_is_bounded() {
        let t = SuiteConfig::default().effective_sweep_threads();
        assert!((1..=16).contains(&t));
    }

    #[test]
    fn obs_mode_grammar_and_builders() {
        assert_eq!(ObsMode::parse(None), ObsMode::Off);
        assert_eq!(ObsMode::parse(Some("0".into())), ObsMode::Off);
        assert_eq!(ObsMode::parse(Some("".into())), ObsMode::Off);
        assert_eq!(ObsMode::parse(Some("1".into())), ObsMode::On);
        assert_eq!(ObsMode::parse(Some("true".into())), ObsMode::On);
        assert_eq!(
            ObsMode::parse(Some("dumps/obs".into())),
            ObsMode::OnWithDir(PathBuf::from("dumps/obs"))
        );
        let c = SuiteConfig::default()
            .obs(ObsMode::On)
            .obs_slow_ms(Some(0))
            .obs_ring(1);
        assert_eq!(c.obs_slow_ms, None, "zero threshold means no sampling");
        assert_eq!(c.obs_ring, 8, "ring floor");
        let oc = c.obs_config().expect("on");
        assert_eq!(oc.dir, PathBuf::from("mic-obs"));
        assert_eq!(oc.ring, 8);
        assert!(SuiteConfig::default().obs_config().is_none());
        let named = SuiteConfig::default()
            .obs(ObsMode::OnWithDir(PathBuf::from("/tmp/fd")))
            .obs_config()
            .unwrap();
        assert_eq!(named.dir, PathBuf::from("/tmp/fd"));
    }

    #[test]
    fn metrics_mode_grammar() {
        assert_eq!(MetricsMode::parse(None), MetricsMode::Off);
        assert_eq!(MetricsMode::parse(Some("0".into())), MetricsMode::Off);
        assert_eq!(MetricsMode::parse(Some("1".into())), MetricsMode::On);
        assert_eq!(MetricsMode::parse(Some("true".into())), MetricsMode::On);
        assert_eq!(
            MetricsMode::parse(Some("out/m.txt".into())),
            MetricsMode::OnWithPath(PathBuf::from("out/m.txt"))
        );
    }
}
