//! The exhibit registry: one typed descriptor per table/figure, one
//! static registry every driver iterates.
//!
//! Before this module, wiring a new exhibit meant editing a dozen call
//! sites by hand: the `all` bin's hard-coded sequence, the baseline gate's
//! implicit name set, the `why` bin's config list, and serve's job-key
//! strings. Now each exhibit is declared exactly once, in [`register_all`],
//! and everything else — `all` (including `--list`), the `--strict`
//! baseline gate, `why`, the serve dispatcher's region lookup — iterates
//! [`registry()`]. Adding a kernel is one `register()` call.
//!
//! The exhibit **id** is the stable key: it names the exhibit in
//! `BENCH_sweep.json`, in baseline files, and (via [`KernelId::code`]) in
//! serve job keys. Committed baselines predate the registry but used the
//! same names, so they parse unchanged; [`canonical_id`] additionally
//! folds case and the historical panel shorthands (`fig1a` …) for older
//! hand-written files.

use crate::experiments::{ablation, extras, fig1, fig2, fig3, fig4, scale_free, table1};
use crate::workload_cache::{self, OrderTag};
use mic_bfs::instrument::SimVariant;
use mic_graph::stats::LocalityWindows;
use mic_graph::suite::{PaperGraph, Scale};
use mic_sim::{Policy, Region};
use std::sync::OnceLock;

/// Which kernel an exhibit exercises. The `code` doubles as the kernel
/// field of serve job keys, so it must stay stable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelId {
    /// Table I: graph statistics, no simulation.
    Table,
    Coloring,
    Irregular,
    Bfs,
    PageRank,
    Components,
    HybridBfs,
}

impl KernelId {
    /// Stable string code (serve job keys, listings).
    pub fn code(self) -> &'static str {
        match self {
            KernelId::Table => "table",
            KernelId::Coloring => "coloring",
            KernelId::Irregular => "irregular",
            KernelId::Bfs => "bfs",
            KernelId::PageRank => "pagerank",
            KernelId::Components => "components",
            KernelId::HybridBfs => "hybrid-bfs",
        }
    }

    pub fn parse(s: &str) -> Option<KernelId> {
        match s {
            "table" => Some(KernelId::Table),
            "coloring" => Some(KernelId::Coloring),
            "irregular" => Some(KernelId::Irregular),
            "bfs" => Some(KernelId::Bfs),
            "pagerank" => Some(KernelId::PageRank),
            "components" => Some(KernelId::Components),
            "hybrid-bfs" => Some(KernelId::HybridBfs),
            _ => None,
        }
    }
}

/// Which graph family the exhibit sweeps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphFamily {
    /// The paper's seven FE meshes (Table I).
    Mesh,
    /// The RMAT companions.
    ScaleFree,
    /// Both.
    Mixed,
}

impl GraphFamily {
    pub fn name(self) -> &'static str {
        match self {
            GraphFamily::Mesh => "mesh",
            GraphFamily::ScaleFree => "scale-free",
            GraphFamily::Mixed => "mixed",
        }
    }
}

/// Which run sets include the exhibit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Group {
    /// The paper's tables and figures — always in `all`.
    Paper,
    /// Beyond-the-paper ablations — in `all`.
    Ablation,
    /// The scale-free kernel exhibits — in `all`.
    ScaleFree,
    /// Extras with their own bin; not part of `all` (and therefore not of
    /// the committed baseline set).
    Extra,
}

impl Group {
    pub fn name(self) -> &'static str {
        match self {
            Group::Paper => "paper",
            Group::Ablation => "ablation",
            Group::ScaleFree => "scale-free",
            Group::Extra => "extra",
        }
    }
}

/// A `why` hook: named region sequences to attribute stalls for.
pub type WhyConfigs = Vec<(String, Vec<Region>)>;

/// One registered exhibit.
pub struct Exhibit {
    /// Stable identifier — the name in `BENCH_sweep.json`, baseline files
    /// and `all --list`.
    pub id: &'static str,
    pub title: &'static str,
    pub kernel: KernelId,
    pub family: GraphFamily,
    /// Human-readable sweep axes ("threads × graph", …).
    pub axes: &'static str,
    pub group: Group,
    /// Render the exhibit at a scale (the `all` runner).
    pub run: fn(Scale) -> String,
    /// Headline configurations for the `why` stall-attribution bin.
    pub why: Option<fn(Scale) -> WhyConfigs>,
}

/// The registry: exhibits in presentation order, unique ids.
pub struct ExhibitRegistry {
    exhibits: Vec<Exhibit>,
}

impl ExhibitRegistry {
    fn register(&mut self, e: Exhibit) {
        assert!(self.get(e.id).is_none(), "duplicate exhibit id {:?}", e.id);
        self.exhibits.push(e);
    }

    /// All exhibits, in presentation order.
    pub fn iter(&self) -> impl Iterator<Item = &Exhibit> {
        self.exhibits.iter()
    }

    /// The exhibits `all` runs (everything except [`Group::Extra`]) — the
    /// set the baseline gate regards as *current*.
    pub fn in_all(&self) -> impl Iterator<Item = &Exhibit> {
        self.exhibits.iter().filter(|e| e.group != Group::Extra)
    }

    pub fn get(&self, id: &str) -> Option<&Exhibit> {
        self.exhibits.iter().find(|e| e.id == id)
    }

    pub fn contains(&self, id: &str) -> bool {
        self.get(id).is_some()
    }

    /// Ids of the exhibits `all` runs, in order.
    pub fn all_ids(&self) -> Vec<&'static str> {
        self.in_all().map(|e| e.id).collect()
    }

    /// The `all --list` table: one markdown row per exhibit. The README's
    /// exhibit table is this output verbatim; CI diffs the two.
    pub fn list_table(&self) -> String {
        let mut out = String::new();
        out.push_str("| id | kernel | graphs | group | sweep axes | title |\n");
        out.push_str("|----|--------|--------|-------|------------|-------|\n");
        for e in self.iter() {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} |\n",
                e.id,
                e.kernel.code(),
                e.family.name(),
                e.group.name(),
                e.axes,
                e.title,
            ));
        }
        out
    }
}

/// The process-wide registry.
pub fn registry() -> &'static ExhibitRegistry {
    static REGISTRY: OnceLock<ExhibitRegistry> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let mut r = ExhibitRegistry {
            exhibits: Vec::new(),
        };
        register_all(&mut r);
        r
    })
}

/// Canonicalize an exhibit name from a baseline or JSON file: exact ids
/// pass through; otherwise fold case and the historical panel shorthands
/// (`fig1a` → `fig1-OpenMp`, …) older hand-written files used.
pub fn canonical_id(name: &str) -> Option<&'static str> {
    let r = registry();
    if let Some(e) = r.get(name) {
        return Some(e.id);
    }
    let lower = name.to_ascii_lowercase();
    if let Some(e) = r.iter().find(|e| e.id.to_ascii_lowercase() == lower) {
        return Some(e.id);
    }
    let alias = match lower.as_str() {
        "fig1a" => "fig1-OpenMp",
        "fig1b" => "fig1-CilkPlus",
        "fig1c" => "fig1-Tbb",
        "fig3a" => "fig3-OpenMp",
        "fig3b" => "fig3-CilkPlus",
        "fig3c" => "fig3-Tbb",
        "fig4a" => "fig4-Pwtk",
        "fig4b" => "fig4-Inline1",
        "hybrid_bfs" | "hybridbfs" | "direction-bfs" => "hybrid-bfs",
        "cc" | "connected-components" => "components",
        _ => return None,
    };
    r.get(alias).map(|e| e.id)
}

/// The known (current) exhibit ids, for the baseline gate's
/// deprecated-exhibit handling.
pub fn known_ids() -> Vec<&'static str> {
    registry().all_ids()
}

/// Unified kernel → region-sequence dispatch: the one lookup the serve
/// executor (and any other driver that simulates a single kernel
/// configuration) goes through. [`KernelId::Table`] has no simulation and
/// returns no regions.
pub fn kernel_regions(
    kernel: KernelId,
    graph: PaperGraph,
    scale: Scale,
    order: OrderTag,
    windows: LocalityWindows,
    iter: usize,
    policy: Policy,
) -> Vec<Region> {
    match kernel {
        KernelId::Table => Vec::new(),
        KernelId::Coloring => {
            workload_cache::coloring(graph, scale, order, windows).regions(policy)
        }
        KernelId::Irregular => {
            vec![workload_cache::irregular(graph, scale, order, windows, iter).region(policy)]
        }
        KernelId::Bfs => workload_cache::bfs(
            graph,
            scale,
            order,
            windows,
            SimVariant::Block {
                block: 32,
                relaxed: true,
            },
        )
        .regions(policy),
        KernelId::PageRank => {
            workload_cache::pagerank(graph, scale, order, windows).regions(policy)
        }
        KernelId::Components => {
            workload_cache::components(graph, scale, order, windows).regions(policy)
        }
        KernelId::HybridBfs => {
            workload_cache::hybrid_bfs(graph, scale, order, windows).regions(policy)
        }
    }
}

/// Sim-thread count the extras figures are rendered at (the KNF top).
const EXTRAS_THREADS: usize = 121;

/// Every exhibit, declared once. Presentation order = `all` order.
fn register_all(r: &mut ExhibitRegistry) {
    // why hooks are fn pointers: no captures allowed.
    r.register(Exhibit {
        id: "table1",
        title: "Table I: suite graph statistics",
        kernel: KernelId::Table,
        family: GraphFamily::Mesh,
        axes: "graph",
        group: Group::Paper,
        run: |s| table1::render(&table1::table1(s)),
        why: None,
    });
    r.register(Exhibit {
        id: "fig1-OpenMp",
        title: "Figure 1a: coloring speedup, OpenMP",
        kernel: KernelId::Coloring,
        family: GraphFamily::Mesh,
        axes: "threads × schedule",
        group: Group::Paper,
        run: |s| fig1::fig1(fig1::Panel::OpenMp, s).to_ascii(),
        why: Some(|s| {
            vec![(
                "Fig1a coloring natural, OMP-dyn/100".into(),
                workload_cache::coloring(
                    PaperGraph::Hood,
                    s,
                    OrderTag::Natural,
                    LocalityWindows::default(),
                )
                .regions(Policy::OmpDynamic { chunk: 100 }),
            )]
        }),
    });
    r.register(Exhibit {
        id: "fig1-CilkPlus",
        title: "Figure 1b: coloring speedup, Cilk Plus",
        kernel: KernelId::Coloring,
        family: GraphFamily::Mesh,
        axes: "threads × grain",
        group: Group::Paper,
        run: |s| fig1::fig1(fig1::Panel::CilkPlus, s).to_ascii(),
        why: Some(|s| {
            vec![(
                "Fig1b coloring natural, Cilk/100".into(),
                workload_cache::coloring(
                    PaperGraph::Hood,
                    s,
                    OrderTag::Natural,
                    LocalityWindows::default(),
                )
                .regions(Policy::Cilk { grain: 100 }),
            )]
        }),
    });
    r.register(Exhibit {
        id: "fig1-Tbb",
        title: "Figure 1c: coloring speedup, TBB",
        kernel: KernelId::Coloring,
        family: GraphFamily::Mesh,
        axes: "threads × partitioner",
        group: Group::Paper,
        run: |s| fig1::fig1(fig1::Panel::Tbb, s).to_ascii(),
        why: Some(|s| {
            vec![(
                "Fig1c coloring natural, TBB-simple/40".into(),
                workload_cache::coloring(
                    PaperGraph::Hood,
                    s,
                    OrderTag::Natural,
                    LocalityWindows::default(),
                )
                .regions(Policy::TbbSimple { grain: 40 }),
            )]
        }),
    });
    r.register(Exhibit {
        id: "fig2",
        title: "Figure 2: coloring on shuffled vertices",
        kernel: KernelId::Coloring,
        family: GraphFamily::Mesh,
        axes: "threads × ordering",
        group: Group::Paper,
        run: |s| fig2::fig2(s).to_ascii(),
        why: Some(|s| {
            vec![(
                "Fig2  coloring shuffled, OMP-dyn/100".into(),
                workload_cache::coloring(
                    PaperGraph::Hood,
                    s,
                    OrderTag::Random { seed: 5 },
                    LocalityWindows::default(),
                )
                .regions(Policy::OmpDynamic { chunk: 100 }),
            )]
        }),
    });
    r.register(Exhibit {
        id: "fig3-OpenMp",
        title: "Figure 3a: irregular computation, OpenMP",
        kernel: KernelId::Irregular,
        family: GraphFamily::Mesh,
        axes: "threads × iter",
        group: Group::Paper,
        run: |s| fig3::fig3(fig3::Panel::OpenMp, s).to_ascii(),
        why: Some(|s| {
            [1usize, 10]
                .into_iter()
                .map(|iter| {
                    (
                        format!("Fig3  irregular iter={iter}, OMP-dyn/100"),
                        vec![workload_cache::irregular(
                            PaperGraph::Hood,
                            s,
                            OrderTag::Natural,
                            LocalityWindows::default(),
                            iter,
                        )
                        .region(Policy::OmpDynamic { chunk: 100 })],
                    )
                })
                .collect()
        }),
    });
    r.register(Exhibit {
        id: "fig3-CilkPlus",
        title: "Figure 3b: irregular computation, Cilk Plus",
        kernel: KernelId::Irregular,
        family: GraphFamily::Mesh,
        axes: "threads × iter",
        group: Group::Paper,
        run: |s| fig3::fig3(fig3::Panel::CilkPlus, s).to_ascii(),
        why: None,
    });
    r.register(Exhibit {
        id: "fig3-Tbb",
        title: "Figure 3c: irregular computation, TBB",
        kernel: KernelId::Irregular,
        family: GraphFamily::Mesh,
        axes: "threads × iter",
        group: Group::Paper,
        run: |s| fig3::fig3(fig3::Panel::Tbb, s).to_ascii(),
        why: None,
    });
    r.register(Exhibit {
        id: "fig4-Pwtk",
        title: "Figure 4a: BFS on pwtk, all queue structures",
        kernel: KernelId::Bfs,
        family: GraphFamily::Mesh,
        axes: "threads × queue",
        group: Group::Paper,
        run: |s| fig4::fig4(fig4::Panel::Pwtk, s).to_ascii(),
        why: Some(|s| {
            vec![(
                "Fig4  BFS block-relaxed, OMP-dyn/32".into(),
                workload_cache::bfs(
                    PaperGraph::Hood,
                    s,
                    OrderTag::Natural,
                    LocalityWindows::default(),
                    SimVariant::Block {
                        block: 32,
                        relaxed: true,
                    },
                )
                .regions(Policy::OmpDynamic { chunk: 32 }),
            )]
        }),
    });
    r.register(Exhibit {
        id: "fig4-Inline1",
        title: "Figure 4b: BFS on inline_1, all queue structures",
        kernel: KernelId::Bfs,
        family: GraphFamily::Mesh,
        axes: "threads × queue",
        group: Group::Paper,
        run: |s| fig4::fig4(fig4::Panel::Inline1, s).to_ascii(),
        why: None,
    });
    r.register(Exhibit {
        id: "fig4-AllKnf",
        title: "Figure 4c: BFS best-config geomean, KNF",
        kernel: KernelId::Bfs,
        family: GraphFamily::Mesh,
        axes: "threads × graph",
        group: Group::Paper,
        run: |s| fig4::fig4(fig4::Panel::AllKnf, s).to_ascii(),
        why: None,
    });
    r.register(Exhibit {
        id: "fig4-AllCpu",
        title: "Figure 4d: BFS best-config geomean, CPU",
        kernel: KernelId::Bfs,
        family: GraphFamily::Mesh,
        axes: "threads × graph",
        group: Group::Paper,
        run: |s| fig4::fig4(fig4::Panel::AllCpu, s).to_ascii(),
        why: None,
    });
    r.register(Exhibit {
        id: "ablation-block-size",
        title: "Ablation: BFS queue block size",
        kernel: KernelId::Bfs,
        family: GraphFamily::Mesh,
        axes: "threads × block",
        group: Group::Ablation,
        run: |s| ablation::block_size_sweep(s).to_ascii(),
        why: None,
    });
    r.register(Exhibit {
        id: "ablation-chunk-size",
        title: "Ablation: OpenMP chunk size",
        kernel: KernelId::Coloring,
        family: GraphFamily::Mesh,
        axes: "threads × chunk",
        group: Group::Ablation,
        run: |s| ablation::chunk_size_sweep(s).to_ascii(),
        why: None,
    });
    r.register(Exhibit {
        id: "ablation-locked-vs-relaxed",
        title: "Ablation: locked vs relaxed queue",
        kernel: KernelId::Bfs,
        family: GraphFamily::Mesh,
        axes: "threads × locking",
        group: Group::Ablation,
        run: |s| ablation::locked_vs_relaxed(s).to_ascii(),
        why: None,
    });
    r.register(Exhibit {
        id: "ablation-ordering",
        title: "Ablation: vertex ordering",
        kernel: KernelId::Coloring,
        family: GraphFamily::Mesh,
        axes: "threads × ordering",
        group: Group::Ablation,
        run: |s| ablation::ordering_ablation(s).to_ascii(),
        why: None,
    });
    r.register(Exhibit {
        id: "ablation-placement",
        title: "Ablation: thread placement",
        kernel: KernelId::Irregular,
        family: GraphFamily::Mesh,
        axes: "threads × placement",
        group: Group::Ablation,
        run: |s| ablation::placement_ablation(s).to_ascii(),
        why: None,
    });
    r.register(Exhibit {
        id: "ablation-fork-vs-persistent",
        title: "Ablation: per-level fork vs persistent team",
        kernel: KernelId::Bfs,
        family: GraphFamily::Mesh,
        axes: "threads × team",
        group: Group::Ablation,
        run: |s| ablation::fork_vs_persistent(s).to_ascii(),
        why: None,
    });
    r.register(Exhibit {
        id: "pagerank",
        title: "PageRank scalability on scale-free graphs",
        kernel: KernelId::PageRank,
        family: GraphFamily::Mixed,
        axes: "threads × graph",
        group: Group::ScaleFree,
        run: |s| scale_free::pagerank_fig(s).to_ascii(),
        why: Some(|s| {
            vec![(
                "PageRank rmat-ef16, OMP-dyn/100".into(),
                workload_cache::pagerank(
                    PaperGraph::RmatEf16,
                    s,
                    OrderTag::Natural,
                    LocalityWindows::default(),
                )
                .regions(Policy::OmpDynamic { chunk: 100 }),
            )]
        }),
    });
    r.register(Exhibit {
        id: "components",
        title: "Connected components (label propagation) scalability",
        kernel: KernelId::Components,
        family: GraphFamily::Mixed,
        axes: "threads × graph",
        group: Group::ScaleFree,
        run: |s| scale_free::components_fig(s).to_ascii(),
        why: Some(|s| {
            vec![(
                "Components rmat-ef16, OMP-dyn/100".into(),
                workload_cache::components(
                    PaperGraph::RmatEf16,
                    s,
                    OrderTag::Natural,
                    LocalityWindows::default(),
                )
                .regions(Policy::OmpDynamic { chunk: 100 }),
            )]
        }),
    });
    r.register(Exhibit {
        id: "hybrid-bfs",
        title: "Hybrid (direction-optimizing) vs layered BFS on RMAT",
        kernel: KernelId::HybridBfs,
        family: GraphFamily::ScaleFree,
        axes: "threads × direction",
        group: Group::ScaleFree,
        run: |s| scale_free::hybrid_bfs_fig(s).to_ascii(),
        why: Some(|s| {
            vec![(
                "Hybrid BFS rmat-ef16, OMP-dyn/64".into(),
                workload_cache::hybrid_bfs(
                    PaperGraph::RmatEf16,
                    s,
                    OrderTag::Natural,
                    LocalityWindows::default(),
                )
                .regions(Policy::OmpDynamic { chunk: 64 }),
            )]
        }),
    });
    r.register(Exhibit {
        id: "extra-jp-vs-speculation",
        title: "Extra: Jones–Plassmann vs speculative coloring",
        kernel: KernelId::Coloring,
        family: GraphFamily::Mesh,
        axes: "threads × algorithm",
        group: Group::Extra,
        run: |s| extras::jp_vs_speculation(s, EXTRAS_THREADS).to_ascii(),
        why: None,
    });
    r.register(Exhibit {
        id: "extra-coloring-quality",
        title: "Extra: coloring quality across configurations",
        kernel: KernelId::Coloring,
        family: GraphFamily::Mesh,
        axes: "graph × config",
        group: Group::Extra,
        run: |s| extras::coloring_quality(s, EXTRAS_THREADS).to_ascii(),
        why: None,
    });
    r.register(Exhibit {
        id: "extra-delta-sweep",
        title: "Extra: SSSP delta sweep",
        kernel: KernelId::Bfs,
        family: GraphFamily::Mesh,
        axes: "delta × graph",
        group: Group::Extra,
        run: |s| extras::delta_sweep(s, EXTRAS_THREADS).to_ascii(),
        why: None,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_nonempty() {
        let r = registry();
        let mut ids: Vec<_> = r.iter().map(|e| e.id).collect();
        assert!(!ids.is_empty());
        ids.sort_unstable();
        let n = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn all_set_matches_committed_baseline_names() {
        // The registry must keep every name the committed baseline uses
        // (18 pre-registry exhibits) and add the three scale-free ones.
        let ids = registry().all_ids();
        for legacy in [
            "table1",
            "fig1-OpenMp",
            "fig1-CilkPlus",
            "fig1-Tbb",
            "fig2",
            "fig3-OpenMp",
            "fig3-CilkPlus",
            "fig3-Tbb",
            "fig4-Pwtk",
            "fig4-Inline1",
            "fig4-AllKnf",
            "fig4-AllCpu",
            "ablation-block-size",
            "ablation-chunk-size",
            "ablation-locked-vs-relaxed",
            "ablation-ordering",
            "ablation-placement",
            "ablation-fork-vs-persistent",
        ] {
            assert!(ids.contains(&legacy), "missing {legacy}");
        }
        for new in ["pagerank", "components", "hybrid-bfs"] {
            assert!(ids.contains(&new), "missing {new}");
        }
        assert_eq!(ids.len(), 21);
    }

    #[test]
    fn extras_are_registered_but_not_in_all() {
        let r = registry();
        assert!(r.contains("extra-delta-sweep"));
        assert!(!r.all_ids().contains(&"extra-delta-sweep"));
    }

    #[test]
    fn canonical_id_folds_aliases_and_case() {
        assert_eq!(canonical_id("fig1-OpenMp"), Some("fig1-OpenMp"));
        assert_eq!(canonical_id("FIG1-OPENMP"), Some("fig1-OpenMp"));
        assert_eq!(canonical_id("fig1a"), Some("fig1-OpenMp"));
        assert_eq!(canonical_id("hybrid_bfs"), Some("hybrid-bfs"));
        assert_eq!(canonical_id("cc"), Some("components"));
        assert_eq!(canonical_id("no-such-exhibit"), None);
    }

    #[test]
    fn kernel_codes_round_trip() {
        for k in [
            KernelId::Table,
            KernelId::Coloring,
            KernelId::Irregular,
            KernelId::Bfs,
            KernelId::PageRank,
            KernelId::Components,
            KernelId::HybridBfs,
        ] {
            assert_eq!(KernelId::parse(k.code()), Some(k));
        }
    }

    #[test]
    fn list_table_has_one_row_per_exhibit() {
        let table = registry().list_table();
        let rows = table.lines().count();
        assert_eq!(rows, registry().iter().count() + 2, "header + rule + rows");
        assert!(table.contains("| pagerank |"));
        assert!(table.contains("| hybrid-bfs |"));
    }

    #[test]
    fn kernel_regions_dispatches_every_simulable_kernel() {
        let s = Scale::Fraction(256);
        let win = LocalityWindows::default();
        let pol = Policy::OmpDynamic { chunk: 64 };
        assert!(kernel_regions(
            KernelId::Table,
            PaperGraph::Hood,
            s,
            OrderTag::Natural,
            win,
            1,
            pol
        )
        .is_empty());
        for (k, pg) in [
            (KernelId::Coloring, PaperGraph::Hood),
            (KernelId::Irregular, PaperGraph::Hood),
            (KernelId::Bfs, PaperGraph::Hood),
            (KernelId::PageRank, PaperGraph::RmatEf8),
            (KernelId::Components, PaperGraph::RmatEf8),
            (KernelId::HybridBfs, PaperGraph::RmatEf8),
        ] {
            let regions = kernel_regions(k, pg, s, OrderTag::Natural, win, 1, pol);
            assert!(!regions.is_empty(), "{k:?} produced no regions");
        }
    }
}
