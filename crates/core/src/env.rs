//! Warn-and-default environment-variable parsing shared by the harness
//! knobs (`MIC_SWEEP_*`, `MIC_TRACE`, `MIC_METRICS`, `MIC_BASELINE*`).
//!
//! Every reader follows one discipline: unset or empty means "use the
//! default", silently; a set-but-unusable value is rejected with a
//! one-line stderr warning (once per variable per process) and the default
//! is used anyway. Silent fallback used to make `MIC_SWEEP_THREADS=O`
//! typos indistinguishable from the default — the warn-once keeps a typo
//! loud without spamming a sweep that reads the knob thousands of times.
//!
//! The `parse_*` functions are pure (unit-testable without touching the
//! process environment); the same-named snake_case accessors wrap them
//! with the `std::env::var` read and the warning.

use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};

/// Emit the rejection warning for `name` once per process.
fn warn_once(name: &str, raw: &str, want: &str) {
    static WARNED: OnceLock<Mutex<HashSet<String>>> = OnceLock::new();
    let mut set = WARNED
        .get_or_init(|| Mutex::new(HashSet::new()))
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    if set.insert(name.to_string()) {
        eprintln!("mic-eval: ignoring {name}={raw:?} (need {want}); using default");
    }
}

/// Parse a positive-integer knob. Empty (after trimming) means "unset";
/// anything else must be an integer `>= 1`. `Err` carries the raw value
/// verbatim so the caller can name it.
pub fn parse_positive_usize(raw: &str) -> Result<Option<usize>, &str> {
    let t = raw.trim();
    if t.is_empty() {
        return Ok(None);
    }
    match t.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(Some(n)),
        _ => Err(raw),
    }
}

/// Parse a non-negative-integer knob (zero allowed — callers give zero
/// its own meaning, e.g. "no deadline").
pub fn parse_nonneg_u64(raw: &str) -> Result<Option<u64>, &str> {
    let t = raw.trim();
    if t.is_empty() {
        return Ok(None);
    }
    t.parse::<u64>().map(Some).map_err(|_| raw)
}

/// Parse a non-negative finite float knob (tolerances, rates).
pub fn parse_nonneg_f64(raw: &str) -> Result<Option<f64>, &str> {
    let t = raw.trim();
    if t.is_empty() {
        return Ok(None);
    }
    match t.parse::<f64>() {
        Ok(v) if v.is_finite() && v >= 0.0 => Ok(Some(v)),
        _ => Err(raw),
    }
}

/// Parse a path-valued knob: unset, empty and `0` all mean "off".
pub fn parse_path(raw: &str) -> Option<PathBuf> {
    if raw.is_empty() || raw == "0" {
        return None;
    }
    Some(PathBuf::from(raw))
}

/// `name` as a positive integer, or `None` (warning once if set but bad).
pub fn positive_usize(name: &str) -> Option<usize> {
    let raw = std::env::var(name).ok()?;
    match parse_positive_usize(&raw) {
        Ok(v) => v,
        Err(rejected) => {
            warn_once(name, rejected, "a positive integer");
            None
        }
    }
}

/// `name` as a non-negative integer, or `None` (warning once if set but
/// bad).
pub fn nonneg_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    match parse_nonneg_u64(&raw) {
        Ok(v) => v,
        Err(rejected) => {
            warn_once(name, rejected, "a non-negative integer");
            None
        }
    }
}

/// `name` as a non-negative finite float, or `None` (warning once if set
/// but bad).
pub fn nonneg_f64(name: &str) -> Option<f64> {
    let raw = std::env::var(name).ok()?;
    match parse_nonneg_f64(&raw) {
        Ok(v) => v,
        Err(rejected) => {
            warn_once(name, rejected, "a non-negative number");
            None
        }
    }
}

/// `name` as a file path; unset, empty and `0` all mean `None`. Never
/// warns — any other string is a legitimate path.
pub fn path(name: &str) -> Option<PathBuf> {
    parse_path(&std::env::var(name).ok()?)
}

/// `name` as a raw non-empty string (`None` when unset or empty). For
/// knobs with their own grammar, e.g. `MIC_METRICS`.
pub fn raw(name: &str) -> Option<String> {
    std::env::var(name).ok().filter(|v| !v.trim().is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_usize_grammar() {
        // Pinned: this is the documented MIC_SWEEP_THREADS behavior.
        assert_eq!(parse_positive_usize("4"), Ok(Some(4)));
        assert_eq!(parse_positive_usize(" 12 "), Ok(Some(12)));
        assert_eq!(parse_positive_usize(""), Ok(None), "empty means unset");
        assert_eq!(parse_positive_usize("0"), Err("0"));
        assert_eq!(parse_positive_usize("O"), Err("O"));
        assert_eq!(parse_positive_usize("-3"), Err("-3"));
        assert_eq!(parse_positive_usize("4.5"), Err("4.5"));
    }

    #[test]
    fn nonneg_u64_grammar() {
        assert_eq!(parse_nonneg_u64("0"), Ok(Some(0)), "zero is legal here");
        assert_eq!(parse_nonneg_u64(" 250 "), Ok(Some(250)));
        assert_eq!(parse_nonneg_u64(""), Ok(None));
        assert_eq!(parse_nonneg_u64("-1"), Err("-1"));
        assert_eq!(parse_nonneg_u64("12ms"), Err("12ms"));
    }

    #[test]
    fn nonneg_f64_grammar() {
        assert_eq!(parse_nonneg_f64("0.15"), Ok(Some(0.15)));
        assert_eq!(parse_nonneg_f64("2"), Ok(Some(2.0)));
        assert_eq!(parse_nonneg_f64(""), Ok(None));
        assert_eq!(parse_nonneg_f64("-0.1"), Err("-0.1"));
        assert_eq!(parse_nonneg_f64("NaN"), Err("NaN"));
        assert_eq!(parse_nonneg_f64("inf"), Err("inf"));
        assert_eq!(parse_nonneg_f64("15%"), Err("15%"));
    }

    #[test]
    fn path_grammar() {
        assert_eq!(parse_path(""), None);
        assert_eq!(parse_path("0"), None, "0 means off, not a file named 0");
        assert_eq!(parse_path("out/trace.json"), Some("out/trace.json".into()));
    }
}
