//! Deterministic fault injection for the whole harness.
//!
//! A [`FaultPlan`] is parsed from `MIC_FAULT=<seed>:<spec>` and decides,
//! purely from hashes of `(seed, class, site, attempt)`, whether a fault
//! fires at a given site — so the same seed always yields the same fault
//! schedule regardless of thread interleaving, and every failure CI finds
//! is replayable locally with one environment variable.
//!
//! Spec grammar (see DESIGN.md "Failure model & recovery"):
//!
//! ```text
//! MIC_FAULT = <seed> ":" rule ("," rule)*
//! rule      = class ("@" rate | "#" index) [":" millis]
//! class     = "job-panic" | "job-stall" | "job-slow"
//!           | "worker-panic" | "worker-stall" | "worker-slow" | "worker-die"
//!           | "cache-short-read" | "cache-enospc"
//!           | "io-short-write" | "io-torn-page" | "io-fsync-fail" | "io-open-fail"
//! ```
//!
//! `@rate` fires probabilistically (per site *and attempt*, so retries can
//! succeed); `#index` targets one exact site deterministically on every
//! attempt (so retries exhaust and the failure is recorded). `:millis`
//! overrides the sleep duration of the stall/slow classes.
//!
//! Sites: `job-*` faults hit sweep jobs (site = job index) and are applied
//! only on the *resilient* sweep paths (`try_map`/`map_degraded`) — the
//! strict `map` used for workload construction never injects. `worker-*`
//! faults hit the runtime layer through [`mic_runtime::fault`] (site = the
//! chunk's first iteration index, or the region epoch for `worker-die`).
//! `cache-*` faults hit wl1 cache I/O (site = a hash of the file name).
//! `io-*` faults hit the paged store's file boundaries through
//! [`mic_store::fault`] (site = page id for writes, committing epoch for
//! fsyncs, file-name hash for opens). An *unknown* `io-` subclass is
//! skipped with a warning instead of rejecting the whole spec — the io
//! family is expected to grow, and a chaos sweep with one newer rule
//! should still run its known rules (any other unknown class stays a
//! hard error).

use mic_runtime::fault as rt_fault;
use mic_store::fault as store_fault;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// Every fault class the injector knows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultClass {
    /// A sweep job panics in place of running.
    JobPanic,
    /// A sweep job sleeps long enough to bust a configured deadline
    /// (default 1000 ms).
    JobStall,
    /// A sweep job sleeps briefly before running (default 5 ms) — changes
    /// timing, never values.
    JobSlow,
    /// A runtime worker panics at a chunk boundary.
    WorkerPanic,
    /// A runtime worker sleeps at a chunk boundary (default 50 ms).
    WorkerStall,
    /// A runtime worker sleeps briefly at a chunk boundary (default 2 ms).
    WorkerSlow,
    /// A pool worker thread exits at region entry (the pool respawns it).
    WorkerDie,
    /// A wl1 cache load observes a truncated file.
    CacheShortRead,
    /// A wl1 cache store fails as if the disk were full.
    CacheEnospc,
    /// A store page write lands half its bytes, then errors (torn prefix
    /// on disk — what a killed writer leaves).
    IoShortWrite,
    /// A store page write silently lands corrupted bytes and reports
    /// success; only checksums catch it later.
    IoTornPage,
    /// A store fsync fails (the commit must not be acknowledged).
    IoFsyncFail,
    /// Opening the store file fails.
    IoOpenFail,
}

impl FaultClass {
    const ALL: [(FaultClass, &'static str); 13] = [
        (FaultClass::JobPanic, "job-panic"),
        (FaultClass::JobStall, "job-stall"),
        (FaultClass::JobSlow, "job-slow"),
        (FaultClass::WorkerPanic, "worker-panic"),
        (FaultClass::WorkerStall, "worker-stall"),
        (FaultClass::WorkerSlow, "worker-slow"),
        (FaultClass::WorkerDie, "worker-die"),
        (FaultClass::CacheShortRead, "cache-short-read"),
        (FaultClass::CacheEnospc, "cache-enospc"),
        (FaultClass::IoShortWrite, "io-short-write"),
        (FaultClass::IoTornPage, "io-torn-page"),
        (FaultClass::IoFsyncFail, "io-fsync-fail"),
        (FaultClass::IoOpenFail, "io-open-fail"),
    ];

    /// The spec-grammar name.
    pub fn name(self) -> &'static str {
        Self::ALL
            .iter()
            .find(|(c, _)| *c == self)
            .map(|(_, n)| n)
            .unwrap()
    }

    fn from_name(s: &str) -> Option<FaultClass> {
        Self::ALL.iter().find(|(_, n)| *n == s).map(|(c, _)| *c)
    }

    /// Default sleep for the stall/slow classes, milliseconds.
    fn default_ms(self) -> u64 {
        match self {
            FaultClass::JobStall => 1000,
            FaultClass::JobSlow => 5,
            FaultClass::WorkerStall => 50,
            FaultClass::WorkerSlow => 2,
            _ => 0,
        }
    }
}

/// When a rule fires.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Trigger {
    /// Fire with this probability at every `(site, attempt)`.
    Rate(f64),
    /// Fire at exactly this site, on every attempt.
    Index(u64),
}

/// One parsed rule of a fault spec.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultRule {
    class: FaultClass,
    trigger: Trigger,
    millis: Option<u64>,
}

/// What a fired fault does, as decided by the plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Panic at the site.
    Panic,
    /// Sleep this long at the site.
    SleepMs(u64),
    /// The worker thread exits (pool region entry only).
    Die,
}

/// A seeded, deterministic fault schedule.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
}

/// splitmix64: a tiny, well-mixed stateless hash — the decision function
/// depends only on its inputs, never on call order.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

impl FaultPlan {
    /// Build a plan directly (the programmatic form used by tests; the env
    /// form goes through [`FaultPlan::parse`]).
    pub fn new(seed: u64, rules: Vec<FaultRule>) -> FaultPlan {
        FaultPlan { seed, rules }
    }

    /// A single-rule plan firing `class` with probability `rate`.
    pub fn with_rate(seed: u64, class: FaultClass, rate: f64) -> FaultPlan {
        FaultPlan::new(
            seed,
            vec![FaultRule {
                class,
                trigger: Trigger::Rate(rate),
                millis: None,
            }],
        )
    }

    /// A single-rule plan firing `class` at exactly site `index`.
    pub fn at_index(seed: u64, class: FaultClass, index: u64) -> FaultPlan {
        FaultPlan::new(
            seed,
            vec![FaultRule {
                class,
                trigger: Trigger::Index(index),
                millis: None,
            }],
        )
    }

    /// Override the sleep duration of every stall/slow rule in the plan.
    pub fn with_millis(mut self, millis: u64) -> FaultPlan {
        for r in &mut self.rules {
            r.millis = Some(millis);
        }
        self
    }

    /// Parse `<seed>:<rule>(,<rule>)*` (the `MIC_FAULT` value).
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let (seed_s, rules_s) = spec
            .split_once(':')
            .ok_or_else(|| format!("missing ':' in fault spec {spec:?} (want <seed>:<rules>)"))?;
        let seed: u64 = seed_s
            .trim()
            .parse()
            .map_err(|_| format!("fault seed {seed_s:?} is not a u64"))?;
        let mut rules = Vec::new();
        for raw in rules_s.split(',') {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            if let Some(rule) = Self::parse_rule(raw)? {
                rules.push(rule);
            }
        }
        if rules.is_empty() {
            return Err(format!("fault spec {spec:?} has no rules"));
        }
        Ok(FaultPlan { seed, rules })
    }

    /// `Ok(None)` = the rule was skipped with a warning (unknown `io-`
    /// subclass); any other malformed rule rejects the whole spec.
    fn parse_rule(raw: &str) -> Result<Option<FaultRule>, String> {
        let sep = raw
            .find(['@', '#'])
            .ok_or_else(|| format!("rule {raw:?} needs '@rate' or '#index'"))?;
        let class_name = &raw[..sep];
        let Some(class) = FaultClass::from_name(class_name) else {
            if class_name.starts_with("io-") {
                // The io family is expected to grow: skip-with-warning so
                // a spec with one newer subclass still runs its known
                // rules, instead of silently injecting nothing.
                eprintln!(
                    "mic-eval: skipping unknown io fault subclass {class_name:?} \
                     (known: io-short-write, io-torn-page, io-fsync-fail, io-open-fail)"
                );
                return Ok(None);
            }
            return Err(format!("unknown fault class {class_name:?}"));
        };
        let rest = &raw[sep + 1..];
        let (value_s, millis) = match rest.split_once(':') {
            Some((v, ms)) => (
                v,
                Some(
                    ms.parse::<u64>()
                        .map_err(|_| format!("rule {raw:?}: bad millis {ms:?}"))?,
                ),
            ),
            None => (rest, None),
        };
        let trigger = if raw.as_bytes()[sep] == b'@' {
            let rate: f64 = value_s
                .parse()
                .map_err(|_| format!("rule {raw:?}: bad rate {value_s:?}"))?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("rule {raw:?}: rate must be in [0, 1]"));
            }
            Trigger::Rate(rate)
        } else {
            Trigger::Index(
                value_s
                    .parse()
                    .map_err(|_| format!("rule {raw:?}: bad index {value_s:?}"))?,
            )
        };
        Ok(Some(FaultRule {
            class,
            trigger,
            millis,
        }))
    }

    /// The seed (for reporting).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Decide whether `class` fires at `site` on `attempt`. Pure: the same
    /// arguments always produce the same answer for a given plan.
    pub fn decide(&self, class: FaultClass, site: u64, attempt: u64) -> Option<Fault> {
        for (ri, rule) in self.rules.iter().enumerate() {
            if rule.class != class {
                continue;
            }
            let fires = match rule.trigger {
                Trigger::Index(target) => site == target,
                Trigger::Rate(rate) => {
                    let h = splitmix64(
                        self.seed
                            ^ splitmix64((class as u64) << 32 | ri as u64)
                            ^ splitmix64(site).rotate_left(17)
                            ^ splitmix64(attempt).rotate_left(41),
                    );
                    // 53 high bits -> uniform in [0, 1).
                    ((h >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < rate
                }
            };
            if !fires {
                continue;
            }
            let ms = rule.millis.unwrap_or_else(|| class.default_ms());
            return Some(match class {
                FaultClass::JobPanic | FaultClass::WorkerPanic => Fault::Panic,
                FaultClass::WorkerDie => Fault::Die,
                FaultClass::JobStall
                | FaultClass::JobSlow
                | FaultClass::WorkerStall
                | FaultClass::WorkerSlow => Fault::SleepMs(ms),
                // Cache and io classes are yes/no decisions; the I/O
                // layer interprets them.
                FaultClass::CacheShortRead
                | FaultClass::CacheEnospc
                | FaultClass::IoShortWrite
                | FaultClass::IoTornPage
                | FaultClass::IoFsyncFail
                | FaultClass::IoOpenFail => Fault::Panic,
            });
        }
        None
    }

    /// Whether any rule targets `class`.
    pub fn targets(&self, class: FaultClass) -> bool {
        self.rules.iter().any(|r| r.class == class)
    }
}

// ---------------------------------------------------------------------------
// Process-global active plan.

static ACTIVE: AtomicBool = AtomicBool::new(false);

fn plan_slot() -> &'static RwLock<Option<Arc<FaultPlan>>> {
    static SLOT: OnceLock<RwLock<Option<Arc<FaultPlan>>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

/// The active plan, if any. One relaxed load when no plan is installed.
pub fn active() -> Option<Arc<FaultPlan>> {
    if !ACTIVE.load(Ordering::Relaxed) {
        return None;
    }
    plan_slot()
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .clone()
}

/// Install `plan` process-wide. Worker-class rules are bridged into the
/// runtime layer's fault hook so pool/chunk sites consult this plan too.
pub fn install(plan: FaultPlan) {
    let plan = Arc::new(plan);
    let worker_classes = [
        FaultClass::WorkerPanic,
        FaultClass::WorkerStall,
        FaultClass::WorkerSlow,
        FaultClass::WorkerDie,
    ];
    if worker_classes.iter().any(|c| plan.targets(*c)) {
        let for_hook = Arc::clone(&plan);
        rt_fault::install(Arc::new(move |site: &rt_fault::FaultSite| {
            // `Die` only makes sense at pool region entry; the other
            // classes apply to every runtime's chunk boundaries.
            let die_ok = site.runtime == "pool";
            for class in worker_classes {
                if class == FaultClass::WorkerDie && !die_ok {
                    continue;
                }
                let decision = for_hook.decide(class, site.index ^ (site.worker as u64) << 48, 0);
                if decision.is_some() {
                    count_injection_at(class, site.index);
                }
                match decision {
                    Some(Fault::Panic) => {
                        return Some(rt_fault::FaultAction::Panic(format!(
                            "mic-fault: injected {} at {} site {} (worker {})",
                            class.name(),
                            site.runtime,
                            site.index,
                            site.worker
                        )))
                    }
                    Some(Fault::SleepMs(ms)) => return Some(rt_fault::FaultAction::StallMs(ms)),
                    Some(Fault::Die) => return Some(rt_fault::FaultAction::Die),
                    None => {}
                }
            }
            None
        }));
    } else {
        rt_fault::clear();
    }
    let io_classes = [
        FaultClass::IoShortWrite,
        FaultClass::IoTornPage,
        FaultClass::IoFsyncFail,
        FaultClass::IoOpenFail,
    ];
    if io_classes.iter().any(|c| plan.targets(*c)) {
        let for_hook = Arc::clone(&plan);
        store_fault::install(Arc::new(move |site: &store_fault::IoSite| {
            // Each file operation consults the classes that can apply to
            // it; the first firing rule wins.
            let candidates: &[(FaultClass, store_fault::IoFault)] = match site.op {
                store_fault::IoOp::Open => &[(FaultClass::IoOpenFail, store_fault::IoFault::Fail)],
                store_fault::IoOp::Write => &[
                    (FaultClass::IoShortWrite, store_fault::IoFault::ShortWrite),
                    (FaultClass::IoTornPage, store_fault::IoFault::TornPage),
                ],
                store_fault::IoOp::Fsync => {
                    &[(FaultClass::IoFsyncFail, store_fault::IoFault::Fail)]
                }
            };
            for (class, fault) in candidates {
                if for_hook.decide(*class, site.site, 0).is_some() {
                    count_injection_at(*class, site.site);
                    return Some(*fault);
                }
            }
            None
        }));
    } else {
        store_fault::clear();
    }
    *plan_slot().write().unwrap_or_else(|e| e.into_inner()) = Some(plan);
    ACTIVE.store(true, Ordering::SeqCst);
}

/// Remove the active plan (and the runtime and store bridge hooks).
pub fn clear() {
    ACTIVE.store(false, Ordering::SeqCst);
    *plan_slot().write().unwrap_or_else(|e| e.into_inner()) = None;
    rt_fault::clear();
    store_fault::clear();
}

/// FNV-1a of a file name — the stable site id of cache-class faults.
pub fn site_hash(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Whether a cache-class fault fires at `site` under the active plan.
pub fn cache_fault(class: FaultClass, site: u64) -> bool {
    let fired = active().is_some_and(|p| p.decide(class, site, 0).is_some());
    if fired {
        count_injection_at(class, site);
    }
    fired
}

/// Record a fired injection: the metrics counter (no-op when metrics are
/// off) plus a flight-recorder event, and — once per fault class per
/// process — a flight-recorder dump, so a chaos run ships a post-mortem
/// the moment its first fault of each kind lands. Both riders cost one
/// relaxed load when their subsystem is off.
pub(crate) fn count_injection_at(class: FaultClass, site: u64) {
    if crate::metrics::enabled() {
        crate::metrics::counter(
            "mic_fault_injections_total",
            "Injected faults fired, by fault class.",
            &[("class", class.name())],
        )
        .inc();
    }
    if mic_obs::enabled() {
        mic_obs::flight::record(mic_obs::flight::EventKind::Fault, class as u64, site, 0);
        static DUMPED: AtomicU64 = AtomicU64::new(0);
        let bit = 1u64 << (class as u64).min(63);
        if DUMPED.fetch_or(bit, Ordering::Relaxed) & bit == 0 {
            let _ = mic_obs::flight::dump(&format!("fault-{}", class.name()));
        }
    }
}

fn session_lock() -> &'static Mutex<()> {
    static SESSION: OnceLock<Mutex<()>> = OnceLock::new();
    SESSION.get_or_init(|| Mutex::new(()))
}

/// Run `f` with `plan` installed, serializing concurrent callers (the plan
/// is process-global) and restoring the previous state afterwards.
pub fn with_plan<R>(plan: FaultPlan, f: impl FnOnce() -> R) -> R {
    let _session = session_lock().lock().unwrap_or_else(|e| e.into_inner());
    let previous = active();
    install(plan);
    let result = f();
    match previous {
        Some(p) => install((*p).clone()),
        None => clear(),
    }
    result
}

/// The configured default plan (`MIC_FAULT` or a builder override),
/// resolved through [`crate::config`] once per process. Parsing and the
/// one-line activation report happen in `SuiteConfig::from_env`.
fn env_plan() -> Option<&'static Arc<FaultPlan>> {
    static ENV: OnceLock<Option<Arc<FaultPlan>>> = OnceLock::new();
    ENV.get_or_init(|| crate::config::current().fault.clone().map(Arc::new))
        .as_ref()
}

/// Install the `MIC_FAULT` plan unless some plan is already active. The
/// environment plan is a *default*, not an override: it never displaces a
/// plan installed explicitly (so a [`with_plan`] session is injection-
/// tight even when the process runs under `MIC_FAULT`), and because this
/// is called at every resilient-sweep and cache-I/O entry point it is
/// re-installed once such a session restores the empty state.
pub fn init_from_env() {
    if ACTIVE.load(Ordering::SeqCst) {
        return;
    }
    if let Some(plan) = env_plan() {
        install(plan.as_ref().clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_grammar() {
        let plan =
            FaultPlan::parse("42:job-panic@0.25,worker-stall@0.1:75,cache-enospc#9").unwrap();
        assert_eq!(plan.seed(), 42);
        assert_eq!(plan.rules.len(), 3);
        assert_eq!(plan.rules[0].class, FaultClass::JobPanic);
        assert_eq!(plan.rules[0].trigger, Trigger::Rate(0.25));
        assert_eq!(plan.rules[1].millis, Some(75));
        assert_eq!(plan.rules[2].trigger, Trigger::Index(9));
        assert!(plan.targets(FaultClass::CacheEnospc));
        assert!(!plan.targets(FaultClass::JobStall));
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "",
            "noseed",
            "x:job-panic@0.5",
            "1:job-panic",
            "1:job-panic@1.5",
            "1:job-panic@x",
            "1:what-even@0.5",
            "1:job-stall#x",
            "1:job-stall@0.5:ms",
            "7:",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::with_rate(1, FaultClass::JobPanic, 0.3);
        let b = FaultPlan::with_rate(1, FaultClass::JobPanic, 0.3);
        let c = FaultPlan::with_rate(2, FaultClass::JobPanic, 0.3);
        let schedule = |p: &FaultPlan| -> Vec<bool> {
            (0..256)
                .map(|site| p.decide(FaultClass::JobPanic, site, 0).is_some())
                .collect()
        };
        assert_eq!(schedule(&a), schedule(&b), "same seed, same schedule");
        assert_ne!(
            schedule(&a),
            schedule(&c),
            "different seed, different schedule"
        );
        let fired = schedule(&a).iter().filter(|f| **f).count();
        assert!(
            (32..=128).contains(&fired),
            "rate 0.3 over 256 sites fired {fired} times"
        );
    }

    #[test]
    fn rate_rules_vary_by_attempt_index_rules_do_not() {
        let rate = FaultPlan::with_rate(11, FaultClass::JobPanic, 0.5);
        let varies = (0..64).any(|site| {
            (0..4)
                .map(|att| rate.decide(FaultClass::JobPanic, site, att).is_some())
                .collect::<Vec<_>>()
                .windows(2)
                .any(|w| w[0] != w[1])
        });
        assert!(varies, "rate decisions must depend on the attempt");
        let targeted = FaultPlan::at_index(11, FaultClass::JobPanic, 5);
        for att in 0..8 {
            assert_eq!(
                targeted.decide(FaultClass::JobPanic, 5, att),
                Some(Fault::Panic),
                "targeted rules fire on every attempt"
            );
            assert_eq!(targeted.decide(FaultClass::JobPanic, 6, att), None);
        }
    }

    #[test]
    fn class_maps_to_the_right_fault() {
        let p = |c| FaultPlan::at_index(0, c, 0).decide(c, 0, 0).unwrap();
        assert_eq!(p(FaultClass::JobPanic), Fault::Panic);
        assert_eq!(p(FaultClass::WorkerDie), Fault::Die);
        assert_eq!(p(FaultClass::JobStall), Fault::SleepMs(1000));
        assert_eq!(p(FaultClass::JobSlow), Fault::SleepMs(5));
        assert_eq!(p(FaultClass::WorkerStall), Fault::SleepMs(50));
        let custom = FaultPlan::at_index(0, FaultClass::JobStall, 0).with_millis(7);
        assert_eq!(
            custom.decide(FaultClass::JobStall, 0, 0),
            Some(Fault::SleepMs(7))
        );
    }

    #[test]
    fn with_plan_installs_and_restores() {
        let before = active().map(|p| p.seed());
        with_plan(FaultPlan::with_rate(3, FaultClass::JobSlow, 1.0), || {
            let p = active().expect("plan active inside with_plan");
            assert_eq!(p.seed(), 3);
        });
        // The session restores the state it observed on entry. When the
        // whole test binary runs under `MIC_FAULT` (the CI chaos job),
        // concurrent tests may install the environment plan between our
        // two observations, so that state is legitimate here too.
        let after = active().map(|p| p.seed());
        let env = env_plan().map(|p| p.seed());
        assert!(
            after == before || after == env,
            "with_plan must restore the previous plan: \
             before {before:?}, after {after:?}, env {env:?}"
        );
    }

    #[test]
    fn io_rules_parse_and_unknown_subclasses_skip_with_warning() {
        let plan = FaultPlan::parse("5:io-torn-page@0.5,io-fsync-fail#3").unwrap();
        assert!(plan.targets(FaultClass::IoTornPage));
        assert!(plan.targets(FaultClass::IoFsyncFail));
        // An unknown io subclass is skipped; the known rule survives.
        let partial = FaultPlan::parse("5:io-phase-of-moon@0.5,io-open-fail@1.0").unwrap();
        assert!(partial.targets(FaultClass::IoOpenFail));
        assert_eq!(partial.rules.len(), 1);
        // Nothing left after skipping → the spec is still rejected.
        assert!(FaultPlan::parse("5:io-phase-of-moon@0.5").is_err());
        // Non-io unknown classes remain hard errors.
        assert!(FaultPlan::parse("5:disk-on-fire@0.5,io-open-fail@1.0").is_err());
    }

    #[test]
    fn io_rules_bridge_to_store_hook() {
        with_plan(
            FaultPlan::with_rate(9, FaultClass::IoFsyncFail, 1.0),
            || {
                let fired = store_fault::check(&store_fault::IoSite {
                    op: store_fault::IoOp::Fsync,
                    site: 2,
                });
                assert_eq!(fired, Some(store_fault::IoFault::Fail));
                // A write-class op must not consult the fsync rule.
                assert!(store_fault::check(&store_fault::IoSite {
                    op: store_fault::IoOp::Write,
                    site: 2,
                })
                .is_none());
            },
        );
        with_plan(FaultPlan::with_rate(9, FaultClass::IoTornPage, 1.0), || {
            let fired = store_fault::check(&store_fault::IoSite {
                op: store_fault::IoOp::Write,
                site: 0,
            });
            assert_eq!(fired, Some(store_fault::IoFault::TornPage));
        });
        assert!(store_fault::check(&store_fault::IoSite {
            op: store_fault::IoOp::Fsync,
            site: 2,
        })
        .is_none());
    }

    #[test]
    fn worker_rules_bridge_to_runtime_hook() {
        with_plan(
            FaultPlan::with_rate(5, FaultClass::WorkerStall, 1.0).with_millis(1),
            || {
                let act = rt_fault::check(&rt_fault::FaultSite {
                    runtime: "omp",
                    worker: 0,
                    index: 0,
                });
                assert!(
                    matches!(act, Some(rt_fault::FaultAction::StallMs(1))),
                    "{act:?}"
                );
            },
        );
        assert!(rt_fault::check(&rt_fault::FaultSite {
            runtime: "omp",
            worker: 0,
            index: 0,
        })
        .is_none());
    }

    #[test]
    fn die_rules_only_apply_at_pool_sites() {
        with_plan(FaultPlan::with_rate(5, FaultClass::WorkerDie, 1.0), || {
            let chunk = rt_fault::check(&rt_fault::FaultSite {
                runtime: "omp",
                worker: 1,
                index: 10,
            });
            assert!(
                chunk.is_none(),
                "die must not fire at chunk sites: {chunk:?}"
            );
            let pool = rt_fault::check(&rt_fault::FaultSite {
                runtime: "pool",
                worker: 1,
                index: 10,
            });
            assert!(matches!(pool, Some(rt_fault::FaultAction::Die)), "{pool:?}");
        });
    }
}
