//! Facade and experiment harness for the reproduction of *"An Early
//! Evaluation of the Scalability of Graph Algorithms on the Intel MIC
//! Architecture"* (Saule & Çatalyürek, IPDPS Workshops 2012).
//!
//! The underlying crates are re-exported under short names:
//!
//! - [`graph`] — CSR graphs, generators, the calibrated Table I suite;
//! - [`runtime`] — the OpenMP / Cilk Plus / TBB scheduling models and the
//!   paper's block-accessed queue;
//! - [`sim`] — the KNF-like machine simulator and the analytic BFS model;
//! - [`coloring`], [`bfs`], [`irregular`] — the three kernels.
//!
//! [`experiments`] regenerates every table and figure of the paper:
//!
//! | Exhibit | Function |
//! |---|---|
//! | Table I | [`experiments::table1::table1`] |
//! | Figure 1a/b/c | [`experiments::fig1::fig1`] |
//! | Figure 2 | [`experiments::fig2::fig2`] |
//! | Figure 3a/b/c | [`experiments::fig3::fig3`] |
//! | Figure 4a/b/c/d | [`experiments::fig4::fig4`] |
//! | ablations | [`experiments::ablation`] |
//!
//! Each returns a [`series::Figure`] whose rows print as an ASCII table or
//! CSV; the `mic-bench` crate wraps them in binaries. Experiments take a
//! [`graph::suite::Scale`] so tests can run them on miniatures; the
//! reported numbers in EXPERIMENTS.md use `Scale::Full`.
//!
//! Quick example (the simulated Figure 2 on a tiny suite):
//!
//! ```
//! use mic_eval::experiments::fig2::fig2;
//! use mic_eval::graph::suite::Scale;
//! let fig = fig2(Scale::Fraction(256));
//! assert_eq!(fig.series.len(), 3); // OpenMP, TBB, CilkPlus
//! println!("{}", fig.to_ascii());
//! ```

pub use mic_bfs as bfs;
pub use mic_coloring as coloring;
pub use mic_graph as graph;
pub use mic_irregular as irregular;
pub use mic_obs as obs;
pub use mic_runtime as runtime;
pub use mic_sim as sim;
pub use mic_store as store;

pub mod baseline;
pub mod buildinfo;
pub mod config;
pub mod env;
pub mod exhibit;
pub mod experiments;
pub mod fault;
pub mod json;
pub mod metrics;
pub mod native;
pub mod series;
pub mod stats;
pub mod sweep;
pub mod trace;
pub mod workload_cache;

pub use series::{Figure, Series};
