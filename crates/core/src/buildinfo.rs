//! Build identification: crate version plus the git commit, when one can
//! be found — stamped into `serve stats` output and every `BENCH_*.json`
//! header so a performance point is attributable to the commit that
//! produced it.
//!
//! The commit is resolved at *runtime* by reading `.git/HEAD` (walking up
//! from the working directory), never by shelling out — release binaries
//! copied off-box simply report the version alone. The lookup runs once
//! per process and is cached.

use std::path::Path;
use std::sync::OnceLock;

/// The workspace crate version (compile-time).
pub fn version() -> &'static str {
    env!("CARGO_PKG_VERSION")
}

/// The current git commit (short, 12 hex chars), when the process runs
/// inside a checkout. `None` outside a repository or on any read error.
pub fn git_sha() -> Option<&'static str> {
    static SHA: OnceLock<Option<String>> = OnceLock::new();
    SHA.get_or_init(|| {
        let start = std::env::current_dir().ok()?;
        resolve_sha(&start)
    })
    .as_deref()
}

/// `<version>+<sha>` when the commit is known, else just `<version>`.
pub fn stamp() -> String {
    match git_sha() {
        Some(sha) => format!("{}+{sha}", version()),
        None => version().to_string(),
    }
}

/// Walk up from `start` looking for a `.git` directory, then resolve its
/// HEAD to a commit hash.
fn resolve_sha(start: &Path) -> Option<String> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let git = d.join(".git");
        if git.is_dir() {
            return head_commit(&git);
        }
        dir = d.parent();
    }
    None
}

fn head_commit(git: &Path) -> Option<String> {
    let head = std::fs::read_to_string(git.join("HEAD")).ok()?;
    let head = head.trim();
    let full = if let Some(refname) = head.strip_prefix("ref: ") {
        let refname = refname.trim();
        match std::fs::read_to_string(git.join(refname)) {
            Ok(sha) => sha.trim().to_string(),
            // Loose ref absent: the ref may be packed.
            Err(_) => packed_ref(git, refname)?,
        }
    } else {
        // Detached HEAD holds the hash directly.
        head.to_string()
    };
    let short: String = full.chars().take(12).collect();
    (short.len() == 12 && short.chars().all(|c| c.is_ascii_hexdigit())).then_some(short)
}

fn packed_ref(git: &Path, refname: &str) -> Option<String> {
    let packed = std::fs::read_to_string(git.join("packed-refs")).ok()?;
    for line in packed.lines() {
        if line.starts_with('#') || line.starts_with('^') {
            continue;
        }
        if let Some((sha, name)) = line.split_once(' ') {
            if name.trim() == refname {
                return Some(sha.trim().to_string());
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_is_nonempty_semverish() {
        let v = version();
        assert!(!v.is_empty());
        assert!(v.split('.').count() >= 2, "looks like a version: {v}");
    }

    #[test]
    fn stamp_embeds_version() {
        assert!(stamp().starts_with(version()));
    }

    #[test]
    fn sha_when_present_is_short_hex() {
        if let Some(sha) = git_sha() {
            assert_eq!(sha.len(), 12);
            assert!(sha.chars().all(|c| c.is_ascii_hexdigit()));
        }
    }

    #[test]
    fn resolve_handles_synthetic_repo_shapes() {
        let base = std::env::temp_dir().join(format!("mic-buildinfo-{}", std::process::id()));
        let git = base.join(".git");
        std::fs::create_dir_all(git.join("refs/heads")).unwrap();
        // Loose ref.
        std::fs::write(git.join("HEAD"), "ref: refs/heads/main\n").unwrap();
        std::fs::write(
            git.join("refs/heads/main"),
            "0123456789abcdef0123456789abcdef01234567\n",
        )
        .unwrap();
        let nested = base.join("deep/inner");
        std::fs::create_dir_all(&nested).unwrap();
        assert_eq!(resolve_sha(&nested).as_deref(), Some("0123456789ab"));
        // Packed ref.
        std::fs::remove_file(git.join("refs/heads/main")).unwrap();
        std::fs::write(
            git.join("packed-refs"),
            "# pack-refs with: peeled fully-peeled sorted\n\
             fedcba9876543210fedcba9876543210fedcba98 refs/heads/main\n",
        )
        .unwrap();
        assert_eq!(resolve_sha(&base).as_deref(), Some("fedcba987654"));
        // Detached HEAD.
        std::fs::write(
            git.join("HEAD"),
            "1111222233334444555566667777888899990000\n",
        )
        .unwrap();
        assert_eq!(resolve_sha(&base).as_deref(), Some("111122223333"));
        // Garbage HEAD resolves to nothing.
        std::fs::write(git.join("HEAD"), "not a sha\n").unwrap();
        assert_eq!(resolve_sha(&base), None);
        let _ = std::fs::remove_dir_all(&base);
    }
}
