//! Harness-wide metrics policy: a thin layer over the [`mic_metrics`]
//! registry (re-exported here in full) that decides *when* metrics are on.
//!
//! The registry itself is environment-free; this module owns the
//! `MIC_METRICS` knob:
//!
//! - unset / empty / `0` — metrics stay **off**: every instrumented hot
//!   path costs exactly one relaxed atomic load and the numeric outputs
//!   are bit-identical to an uninstrumented build (pinned by
//!   `tests/metrics_bit_identity.rs` and the sim crate's capture tests);
//! - `1` / `true` — metrics **on**; the bench binaries embed a snapshot
//!   in their JSON output;
//! - any other value — metrics on, **and** the value is a file path the
//!   bench binaries write the Prometheus text snapshot to
//!   ([`snapshot_path`]).
//!
//! [`init_from_env`] is called at every resilient-sweep and cache-I/O
//! entry point (mirroring [`crate::fault::init_from_env`]), so any driver
//! that touches the harness picks the knob up without per-binary wiring.

pub use mic_metrics::*;

use std::path::PathBuf;
use std::sync::OnceLock;

#[derive(Debug)]
enum Mode {
    Off,
    On,
    OnWithPath(PathBuf),
}

fn mode() -> &'static Mode {
    static MODE: OnceLock<Mode> = OnceLock::new();
    MODE.get_or_init(|| match crate::env::raw("MIC_METRICS") {
        None => Mode::Off,
        Some(v) => {
            let t = v.trim();
            if t == "0" {
                Mode::Off
            } else if t == "1" || t.eq_ignore_ascii_case("true") {
                Mode::On
            } else {
                Mode::OnWithPath(PathBuf::from(v))
            }
        }
    })
}

/// Whether `MIC_METRICS` requests metrics at all (regardless of whether
/// the registry is currently enabled — test sessions toggle that).
pub fn env_requested() -> bool {
    !matches!(mode(), Mode::Off)
}

/// The Prometheus snapshot file requested via `MIC_METRICS=<path>`, if
/// any.
pub fn snapshot_path() -> Option<PathBuf> {
    match mode() {
        Mode::OnWithPath(p) => Some(p.clone()),
        _ => None,
    }
}

/// Enable the registry if `MIC_METRICS` asks for it. Idempotent and
/// cheap after the first call; never *disables* (an explicit
/// [`set_enabled`] or test session owns that).
pub fn init_from_env() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        if env_requested() {
            mic_metrics::set_enabled(true);
        }
    });
}
