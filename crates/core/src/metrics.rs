//! Harness-wide metrics policy: a thin layer over the [`mic_metrics`]
//! registry (re-exported here in full) that decides *when* metrics are on.
//!
//! The registry itself is environment-free; this module owns the
//! `MIC_METRICS` knob:
//!
//! - unset / empty / `0` — metrics stay **off**: every instrumented hot
//!   path costs exactly one relaxed atomic load and the numeric outputs
//!   are bit-identical to an uninstrumented build (pinned by
//!   `tests/metrics_bit_identity.rs` and the sim crate's capture tests);
//! - `1` / `true` — metrics **on**; the bench binaries embed a snapshot
//!   in their JSON output;
//! - any other value — metrics on, **and** the value is a file path the
//!   bench binaries write the Prometheus text snapshot to
//!   ([`snapshot_path`]).
//!
//! [`init_from_env`] is called at every resilient-sweep and cache-I/O
//! entry point (mirroring [`crate::fault::init_from_env`]), so any driver
//! that touches the harness picks the knob up without per-binary wiring.

pub use mic_metrics::*;

use crate::config::MetricsMode;
use std::path::PathBuf;

/// Whether the installed [`crate::config`] requests metrics at all
/// (regardless of whether the registry is currently enabled — test
/// sessions toggle that).
pub fn env_requested() -> bool {
    crate::config::current().metrics.is_on()
}

/// The Prometheus snapshot file requested via `MIC_METRICS=<path>` (or
/// the config builder), if any.
pub fn snapshot_path() -> Option<PathBuf> {
    match &crate::config::current().metrics {
        MetricsMode::OnWithPath(p) => Some(p.clone()),
        _ => None,
    }
}

/// Enable the registry if the installed config asks for it. Idempotent
/// and cheap; never *disables* (an explicit [`set_enabled`] or test
/// session owns that).
pub fn init_from_env() {
    if env_requested() {
        mic_metrics::set_enabled(true);
    }
}
