//! Table I: properties of the test graphs.

use mic_bfs::seq::{bfs, table1_source};
use mic_coloring::seq::greedy_color;
use mic_graph::suite::{paper_row, PaperRow, Scale};

/// One measured row next to the paper's.
#[derive(Clone, Debug)]
pub struct Table1Row {
    pub name: &'static str,
    pub vertices: usize,
    pub edges: usize,
    pub max_degree: usize,
    pub colors: u32,
    pub levels: u32,
    pub paper: PaperRow,
}

/// Measure all seven graphs at `scale`. `#Color` is the sequential greedy
/// count in natural order; `#Level` is a BFS from vertex `|V| / 2`, both
/// exactly as Table I specifies.
pub fn table1(scale: Scale) -> Vec<Table1Row> {
    super::suite(scale)
        .into_iter()
        .map(|(pg, g)| {
            let colors = greedy_color(&g).num_colors;
            let levels = bfs(&g, table1_source(&g)).num_levels;
            Table1Row {
                name: pg.name(),
                vertices: g.num_vertices(),
                edges: g.num_edges(),
                max_degree: g.max_degree(),
                colors,
                levels,
                paper: paper_row(pg),
            }
        })
        .collect()
}

/// Render measured-vs-paper as a fixed-width table.
pub fn render(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<10} {:>9} {:>10} {:>6} {:>7} {:>7}   | paper: {:>9} {:>10} {:>6} {:>7} {:>7}\n",
        "Name", "|V|", "|E|", "Δ", "#Color", "#Level", "|V|", "|E|", "Δ", "#Color", "#Level"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<10} {:>9} {:>10} {:>6} {:>7} {:>7}   |        {:>9} {:>10} {:>6} {:>7} {:>7}\n",
            r.name,
            r.vertices,
            r.edges,
            r.max_degree,
            r.colors,
            r.levels,
            r.paper.vertices,
            r.paper.edges,
            r.paper.max_degree,
            r.paper.colors,
            r.paper.levels,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scale_rows_are_plausible() {
        let rows = table1(Scale::Fraction(64));
        assert_eq!(rows.len(), 7);
        for r in &rows {
            assert_eq!(r.vertices, r.paper.vertices / 64);
            assert!(r.edges > 0);
            assert!(
                r.colors >= 2 && (r.colors as usize) <= r.max_degree + 1,
                "{}",
                r.name
            );
            assert!(r.levels >= 2, "{}", r.name);
        }
        let txt = render(&rows);
        assert!(txt.contains("pwtk") && txt.contains("ldoor"));
    }

    #[test]
    fn pwtk_has_the_deepest_levels_relative_to_size() {
        // pwtk is the paper's outlier: by far the most levels per vertex.
        let rows = table1(Scale::Fraction(64));
        let ratio = |r: &Table1Row| r.levels as f64 / (r.vertices as f64).cbrt();
        let pwtk = rows.iter().find(|r| r.name == "pwtk").unwrap();
        for r in rows.iter().filter(|r| r.name != "pwtk") {
            assert!(
                ratio(pwtk) > ratio(r),
                "pwtk level ratio {} should exceed {} ({})",
                ratio(pwtk),
                ratio(r),
                r.name
            );
        }
    }
}
