//! Figure 3: the irregular-computation microbenchmark at `iter` ∈
//! {1, 3, 5, 10} — one panel per programming model. Speedups are relative
//! to one thread *at the same iteration count* ("the speedup are computed
//! relatively to the same number of iterations").

use crate::series::{Figure, Series};
use crate::stats::geomean;
use crate::workload_cache::{self, OrderTag};
use mic_graph::stats::LocalityWindows;
use mic_graph::suite::{PaperGraph, Scale};
use mic_sim::{simulate_region_with_scratch, Machine, Policy, SimScratch};

/// Which panel of Figure 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Panel {
    OpenMp,
    CilkPlus,
    Tbb,
}

impl Panel {
    pub fn from_char(c: char) -> Option<Panel> {
        match c {
            'a' => Some(Panel::OpenMp),
            'b' => Some(Panel::CilkPlus),
            'c' => Some(Panel::Tbb),
            _ => None,
        }
    }

    /// The best configuration per model, as the paper reports (dynamic for
    /// OpenMP, simple for TBB).
    fn policy(&self) -> Policy {
        match self {
            Panel::OpenMp => Policy::OmpDynamic { chunk: 100 },
            Panel::CilkPlus => Policy::Cilk { grain: 100 },
            Panel::Tbb => Policy::TbbSimple { grain: 40 },
        }
    }
}

/// The iteration counts of Figure 3.
pub const ITERS: [usize; 4] = [1, 3, 5, 10];

/// Figure 3, panel `panel`, at `scale` on the KNF model.
///
/// One sweep job per (iteration count, graph): each instruments (through
/// the workload cache) and walks the grid with reused scratch, returning
/// its 1-thread baseline plus the grid cycles.
pub fn fig3(panel: Panel, scale: Scale) -> Figure {
    let machine = Machine::knf();
    let grid = machine.thread_grid();
    let policy = panel.policy();
    let windows = LocalityWindows::default();
    let mut fig = Figure::new(
        format!("Figure 3: irregular computation, {panel:?}"),
        grid.clone(),
    );
    let jobs: Vec<(usize, PaperGraph)> = ITERS
        .iter()
        .flat_map(|&iter| PaperGraph::all().into_iter().map(move |pg| (iter, pg)))
        .collect();
    let label = format!(
        "fig3{}",
        match panel {
            Panel::OpenMp => 'a',
            Panel::CilkPlus => 'b',
            Panel::Tbb => 'c',
        }
    );
    // Degraded points become NaN base + NaN cycles; the geomean below
    // skips them, so one lost (iter, graph) pair costs one graph's worth
    // of support, not the figure.
    let runs: Vec<(f64, Vec<f64>)> = crate::sweep::with_context(&label, || {
        crate::sweep::map_degraded(
            &jobs,
            |_, &(iter, pg)| {
                let r = workload_cache::irregular(pg, scale, OrderTag::Natural, windows, iter)
                    .region(policy);
                let mut scratch = SimScratch::default();
                let base = simulate_region_with_scratch(&machine, 1, &r, &mut scratch);
                let cycles = grid
                    .iter()
                    .map(|&t| simulate_region_with_scratch(&machine, t, &r, &mut scratch))
                    .collect();
                (base, cycles)
            },
            |_, _| (f64::NAN, vec![f64::NAN; grid.len()]),
        )
    });
    let n_graphs = PaperGraph::all().len();
    for (per_iter, iter) in runs.chunks(n_graphs).zip(ITERS) {
        let y: Vec<f64> = (0..grid.len())
            .map(|ti| {
                let per_graph: Vec<f64> = per_iter
                    .iter()
                    .map(|(base, cycles)| base / cycles[ti])
                    .collect();
                geomean(&per_graph)
            })
            .collect();
        fig.push(Series::new(format!("{iter} iterations"), y));
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn openmp_speedup_decreases_with_iter() {
        let fig = fig3(Panel::OpenMp, Scale::Fraction(64));
        let last = fig.x.len() - 1;
        let s1 = fig.get("1 iterations").unwrap().y[last];
        let s10 = fig.get("10 iterations").unwrap().y[last];
        assert!(
            s1 > s10,
            "OpenMP: iter=1 ({s1}) should out-scale iter=10 ({s10})"
        );
        assert!(
            s10 > 20.0,
            "iter=10 should still speed up substantially, got {s10}"
        );
    }

    #[test]
    fn cilk_speedup_increases_with_iter() {
        let fig = fig3(Panel::CilkPlus, Scale::Fraction(64));
        let last = fig.x.len() - 1;
        let s1 = fig.get("1 iterations").unwrap().y[last];
        let s10 = fig.get("10 iterations").unwrap().y[last];
        assert!(
            s10 > s1,
            "Cilk: iter=10 ({s10}) should out-scale iter=1 ({s1})"
        );
    }

    #[test]
    fn models_converge_at_iter_10() {
        // "Eventually, with 10 iterations the three programming models
        // reach essentially the same performance."
        let last_of = |p: Panel| {
            let f = fig3(p, Scale::Fraction(64));
            *f.get("10 iterations").unwrap().y.last().unwrap()
        };
        let (a, b, c) = (
            last_of(Panel::OpenMp),
            last_of(Panel::CilkPlus),
            last_of(Panel::Tbb),
        );
        let hi = a.max(b).max(c);
        let lo = a.min(b).min(c);
        // Tolerance is loose because the 1/64-scale suite graphs are
        // RNG-dependent: with the vendored `rand` stream (shims/rand) the
        // spread measures 1.36; full-scale runs converge much tighter.
        assert!(
            hi / lo < 1.45,
            "iter=10 speedups should converge: {a:.1} {b:.1} {c:.1}"
        );
    }

    #[test]
    fn smt_still_matters_at_iter_10() {
        // "SMT can not be ignored since the speedup is almost double on
        // 121 than it is on 31 threads." (At full scale we measure 1.50x;
        // 1/8 scale keeps enough chunks per thread for the claim to hold.)
        let fig = fig3(Panel::OpenMp, Scale::Fraction(8));
        let i31 = fig.x.iter().position(|&t| t == 31).unwrap();
        let s = fig.get("10 iterations").unwrap();
        let ratio = s.y.last().unwrap() / s.y[i31];
        assert!(ratio > 1.35, "121-thread vs 31-thread ratio {ratio}");
    }
}
