//! Ablations of the design choices the paper calls out: the block size of
//! the block-accessed queue, the scheduler chunk size, locked vs relaxed
//! queues, and vertex ordering.

use crate::series::{Figure, Series};
use crate::sweep;
use crate::workload_cache::{self, OrderTag};
use mic_bfs::instrument::SimVariant;
use mic_graph::stats::LocalityWindows;
use mic_graph::suite::{PaperGraph, Scale};
use mic_sim::{
    simulate_region_with_scratch, simulate_with_scratch, Machine, Placement, Policy, SimScratch,
};

/// Sweep the block-accessed queue's block size (the paper: "by keeping the
/// block size small (but not so small so that we do not use atomics too
/// often), the overhead is minimized" — 32 was its best).
pub fn block_size_sweep(scale: Scale) -> Figure {
    let machine = Machine::knf();
    let windows = LocalityWindows::default();
    let blocks = [1usize, 4, 8, 16, 32, 64, 128, 512];
    let threads = [31usize, 61, 121];
    let mut fig = Figure::new(
        "Ablation: BFS block size (hood, OpenMP-Block-relaxed)",
        blocks.to_vec(),
    );
    fig.xlabel = "block size".into();
    // One job per block size; each instruments once (via the cache) and
    // yields the speedup at every thread count. All the ablation sweeps
    // degrade per-arm: a lost job costs its own series points (NaN), not
    // the figure.
    let per_block: Vec<Vec<f64>> = sweep::with_context("ablation:block-size", || {
        sweep::map_degraded(
            &blocks,
            |_, &b| {
                let w = workload_cache::bfs(
                    PaperGraph::Hood,
                    scale,
                    OrderTag::Natural,
                    windows,
                    SimVariant::Block {
                        block: b,
                        relaxed: true,
                    },
                );
                let regions = w.regions(Policy::OmpDynamic { chunk: b });
                let mut scratch = SimScratch::default();
                let base = simulate_with_scratch(&machine, 1, &regions, &mut scratch).cycles;
                threads
                    .iter()
                    .map(|&t| {
                        base / simulate_with_scratch(&machine, t, &regions, &mut scratch).cycles
                    })
                    .collect()
            },
            |_, _| vec![f64::NAN; threads.len()],
        )
    });
    for (ti, &t) in threads.iter().enumerate() {
        let y: Vec<f64> = per_block.iter().map(|s| s[ti]).collect();
        fig.push(Series::new(format!("{t} threads"), y));
    }
    fig
}

/// Sweep the OpenMP dynamic chunk size for coloring (the paper tried 40 to
/// 150 and settled on 100).
pub fn chunk_size_sweep(scale: Scale) -> Figure {
    let machine = Machine::knf();
    let w = workload_cache::coloring(
        PaperGraph::Hood,
        scale,
        OrderTag::Natural,
        LocalityWindows::default(),
    );
    let chunks = [10usize, 40, 100, 400, 1000, 4000];
    let threads = [31usize, 121];
    let mut fig = Figure::new(
        "Ablation: coloring dynamic chunk size (hood)",
        chunks.to_vec(),
    );
    fig.xlabel = "chunk size".into();
    let per_chunk: Vec<Vec<f64>> = sweep::with_context("ablation:chunk-size", || {
        sweep::map_degraded(
            &chunks,
            |_, &c| {
                let regions = w.regions(Policy::OmpDynamic { chunk: c });
                let mut scratch = SimScratch::default();
                let base = simulate_with_scratch(&machine, 1, &regions, &mut scratch).cycles;
                threads
                    .iter()
                    .map(|&t| {
                        base / simulate_with_scratch(&machine, t, &regions, &mut scratch).cycles
                    })
                    .collect()
            },
            |_, _| vec![f64::NAN; threads.len()],
        )
    });
    for (ti, &t) in threads.iter().enumerate() {
        let y: Vec<f64> = per_chunk.iter().map(|s| s[ti]).collect();
        fig.push(Series::new(format!("{t} threads"), y));
    }
    fig
}

/// Locked vs relaxed block queues across the thread grid (Figure 4a/b's
/// sub-comparison, isolated).
pub fn locked_vs_relaxed(scale: Scale) -> Figure {
    let machine = Machine::knf();
    let windows = LocalityWindows::default();
    let grid = machine.thread_grid();
    let mut fig = Figure::new(
        "Ablation: locked vs relaxed block queue (hood)",
        grid.clone(),
    );
    // Common baseline (the fastest 1-thread variant), the paper's rule.
    let arms = [("relaxed", true), ("locked", false)];
    let runs: Vec<(&str, Vec<f64>)> = sweep::with_context("ablation:locked-vs-relaxed", || {
        sweep::map_degraded(
            &arms,
            |_, &(label, relaxed)| {
                let w = workload_cache::bfs(
                    PaperGraph::Hood,
                    scale,
                    OrderTag::Natural,
                    windows,
                    SimVariant::Block { block: 32, relaxed },
                );
                let regions = w.regions(Policy::OmpDynamic { chunk: 32 });
                let mut scratch = SimScratch::default();
                let cycles = grid
                    .iter()
                    .map(|&t| simulate_with_scratch(&machine, t, &regions, &mut scratch).cycles)
                    .collect();
                (label, cycles)
            },
            |_, &(label, _)| (label, vec![f64::NAN; grid.len()]),
        )
    });
    let base = runs.iter().map(|(_, c)| c[0]).fold(f64::INFINITY, f64::min);
    for (label, cycles) in runs {
        fig.push(Series::new(
            label,
            cycles.iter().map(|c| base / c).collect(),
        ));
    }
    fig
}

/// Vertex-ordering ablation for coloring: natural vs Cuthill–McKee vs
/// random shuffle (extends Figure 2 with the bandwidth-reducing order).
pub fn ordering_ablation(scale: Scale) -> Figure {
    let machine = Machine::knf();
    let grid = machine.thread_grid();
    let mut fig = Figure::new(
        "Ablation: coloring vertex ordering (hood, OpenMP-dynamic)",
        grid.clone(),
    );
    let orders: [(&str, OrderTag); 3] = [
        ("natural", OrderTag::Natural),
        ("cuthill-mckee", OrderTag::CuthillMcKee { source: 0 }),
        ("shuffled", OrderTag::Random { seed: 77 }),
    ];
    let runs: Vec<Vec<f64>> = sweep::with_context("ablation:ordering", || {
        sweep::map_degraded(
            &orders,
            |_, &(_, order)| {
                let w = workload_cache::coloring(
                    PaperGraph::Hood,
                    scale,
                    order,
                    LocalityWindows::default(),
                );
                let regions = w.regions(Policy::OmpDynamic { chunk: 100 });
                let mut scratch = SimScratch::default();
                let base = simulate_with_scratch(&machine, 1, &regions, &mut scratch).cycles;
                grid.iter()
                    .map(|&t| {
                        base / simulate_with_scratch(&machine, t, &regions, &mut scratch).cycles
                    })
                    .collect()
            },
            |_, _| vec![f64::NAN; grid.len()],
        )
    });
    for ((label, _), y) in orders.into_iter().zip(runs) {
        fig.push(Series::new(label, y));
    }
    fig
}

/// Thread-placement ablation (scatter vs compact) on the irregular kernel:
/// scatter uses one thread per core as long as possible; compact saturates
/// SMT slots first, paying issue/FPU sharing from the start. The paper ran
/// scatter; this shows why that was the right call below ~62 threads.
pub fn placement_ablation(scale: Scale) -> Figure {
    let w = workload_cache::irregular(
        PaperGraph::Hood,
        scale,
        OrderTag::Natural,
        LocalityWindows::default(),
        1,
    );
    let r = w.region(Policy::OmpDynamic { chunk: 100 });
    let scatter = Machine::knf();
    let mut compact = Machine::knf();
    compact.placement = Placement::Compact;
    let grid = scatter.thread_grid();
    let mut fig = Figure::new(
        "Ablation: thread placement (hood, irregular iter=1)",
        grid.clone(),
    );
    let arms = [("scatter", &scatter), ("compact", &compact)];
    let runs: Vec<Vec<f64>> = sweep::with_context("ablation:placement", || {
        sweep::map_degraded(
            &arms,
            |_, &(_, m)| {
                let mut scratch = SimScratch::default();
                let base = simulate_region_with_scratch(m, 1, &r, &mut scratch);
                grid.iter()
                    .map(|&t| base / simulate_region_with_scratch(m, t, &r, &mut scratch))
                    .collect()
            },
            |_, _| vec![f64::NAN; grid.len()],
        )
    });
    for ((label, _), y) in arms.into_iter().zip(runs) {
        fig.push(Series::new(label, y));
    }
    fig
}

/// Fork/join-per-level vs persistent-team BFS: the paper's codes fork a
/// parallel region per level; a persistent team pays only a barrier. The
/// gap grows with depth — `pwtk`'s 267 levels are the showcase.
pub fn fork_vs_persistent(scale: Scale) -> Figure {
    let machine = Machine::knf();
    let w = workload_cache::bfs(
        PaperGraph::Pwtk,
        scale,
        OrderTag::Natural,
        LocalityWindows::default(),
        SimVariant::Block {
            block: 32,
            relaxed: true,
        },
    );
    let grid = machine.thread_grid();
    let forked = w.regions(Policy::OmpDynamic { chunk: 32 });
    let persistent = w.regions_persistent(Policy::OmpDynamic { chunk: 32 });
    let arms = [("fork-join", &forked), ("persistent-team", &persistent)];
    let runs: Vec<(f64, Vec<f64>)> = sweep::with_context("ablation:fork-vs-persistent", || {
        sweep::map_degraded(
            &arms,
            |_, &(_, regions)| {
                let mut scratch = SimScratch::default();
                let own_base = simulate_with_scratch(&machine, 1, regions, &mut scratch).cycles;
                let cycles = grid
                    .iter()
                    .map(|&t| simulate_with_scratch(&machine, t, regions, &mut scratch).cycles)
                    .collect();
                (own_base, cycles)
            },
            |_, _| (f64::NAN, vec![f64::NAN; grid.len()]),
        )
    });
    let base = runs.iter().map(|(b, _)| *b).fold(f64::INFINITY, f64::min);
    let mut fig = Figure::new(
        "Ablation: fork/join per level vs persistent team (pwtk)",
        grid.clone(),
    );
    for ((label, _), (_, cycles)) in arms.into_iter().zip(runs) {
        fig.push(Series::new(
            label,
            cycles.iter().map(|c| base / c).collect::<Vec<f64>>(),
        ));
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_scatter_wins_below_full_occupancy() {
        let fig = placement_ablation(Scale::Fraction(16));
        let s = fig.get("scatter").unwrap();
        let c = fig.get("compact").unwrap();
        let mid = fig.x.iter().position(|&t| t == 31).unwrap();
        assert!(
            s.y[mid] > 1.5 * c.y[mid],
            "scatter {} vs compact {} at 31 threads",
            s.y[mid],
            c.y[mid]
        );
        // At full occupancy they converge.
        let last = fig.x.len() - 1;
        assert!((s.y[last] - c.y[last]).abs() / s.y[last] < 0.25);
    }

    #[test]
    fn persistent_team_beats_fork_join_on_deep_graphs() {
        let fig = fork_vs_persistent(Scale::Fraction(16));
        let f = fig.get("fork-join").unwrap();
        let p = fig.get("persistent-team").unwrap();
        // The advantage is clearest before the (linear-in-threads) barrier
        // term dwarfs the fork cost; it must never hurt.
        let mid = fig.x.iter().position(|&t| t == 31).unwrap();
        assert!(
            p.y[mid] > f.y[mid] * 1.01,
            "persistent {} should beat fork-join {} at 31 threads",
            p.y[mid],
            f.y[mid]
        );
        for (pp, ff) in p.y.iter().zip(&f.y) {
            assert!(
                pp * 1.001 >= *ff,
                "persistent must never lose: {pp} vs {ff}"
            );
        }
    }

    #[test]
    fn block_sweep_penalizes_extremes() {
        // Needs a graph whose levels hold many blocks; 1/8 scale keeps
        // hood's level widths in the hundreds.
        let fig = block_size_sweep(Scale::Fraction(8));
        let s = fig.get("121 threads").unwrap();
        // Block 1 pays an atomic per push; block 512 starves/wastes.
        let b1 = s.y[0];
        let b32 = s.y[fig.x.iter().position(|&b| b == 32).unwrap()];
        let b512 = s.y[fig.x.len() - 1];
        assert!(b32 > b1, "block 32 ({b32}) should beat block 1 ({b1})");
        assert!(
            b32 > b512,
            "block 32 ({b32}) should beat block 512 ({b512})"
        );
    }

    #[test]
    fn relaxed_at_least_matches_locked() {
        let fig = locked_vs_relaxed(Scale::Fraction(16));
        let r = fig.get("relaxed").unwrap();
        let l = fig.get("locked").unwrap();
        let last = fig.x.len() - 1;
        assert!(
            r.y[last] > l.y[last],
            "relaxed {} should beat locked {} against the common baseline",
            r.y[last],
            l.y[last]
        );
    }

    #[test]
    fn shuffled_ordering_scales_best_cm_and_natural_similar() {
        let fig = ordering_ablation(Scale::Fraction(64));
        let last = fig.x.len() - 1;
        let nat = fig.get("natural").unwrap().y[last];
        let shf = fig.get("shuffled").unwrap().y[last];
        assert!(
            shf > nat,
            "shuffled speedup {shf} should exceed natural {nat}"
        );
    }

    #[test]
    fn chunk_sweep_has_an_interior_optimum_or_plateau() {
        let fig = chunk_size_sweep(Scale::Fraction(64));
        let s = fig.get("121 threads").unwrap();
        let max = s.y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        // Tiny chunks pay dispatch; the best chunk is none of the extremes
        // or at least not the smallest.
        assert!(max > s.y[0], "chunk 10 should not be optimal: {:?}", s.y);
    }
}
