//! Figure 2: coloring speedup on the *randomly ordered* graphs — the
//! memory-latency-bound regime where SMT shines and the paper reports
//! speedups beyond the thread count (153 / 121 / 98 on 121 threads for
//! OpenMP / TBB / Cilk Plus).

use crate::experiments::fig1::coloring_speedups;
use crate::series::Figure;
use crate::workload_cache::{self, OrderTag};
use mic_coloring::instrument::ColoringWorkload;
use mic_graph::stats::LocalityWindows;
use mic_graph::suite::{PaperGraph, Scale};
use mic_sim::{Machine, Policy, Work};
use std::sync::Arc;

/// Figure 2 at `scale`: each model's best variant on the shuffled suite.
pub fn fig2(scale: Scale) -> Figure {
    let machine = Machine::knf();
    let windows = LocalityWindows::default();
    let workloads: Vec<Arc<ColoringWorkload>> = crate::sweep::map(&PaperGraph::all(), |_, &pg| {
        let order = OrderTag::Random {
            seed: 0xF16 ^ pg.name().len() as u64,
        };
        workload_cache::coloring(pg, scale, order, windows)
    });
    let variants: Vec<(&'static str, Policy, Work)> = vec![
        ("OpenMP", Policy::OmpDynamic { chunk: 100 }, Work::default()),
        ("TBB", Policy::TbbSimple { grain: 40 }, Work::default()),
        ("CilkPlus", Policy::Cilk { grain: 100 }, Work::default()),
    ];
    let mut fig = crate::sweep::with_context("fig2", || {
        coloring_speedups(&workloads, &variants, &machine)
    });
    fig.title = "Figure 2: coloring on randomly ordered graphs".into();
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuffled_speedups_are_near_linear_and_ordered() {
        // Half scale keeps most graphs well above the L2 window, so the
        // shuffle really is DRAM-latency-bound, as at paper size (where
        // this figure reaches 145/129/110 — see EXPERIMENTS.md).
        let fig = fig2(Scale::Fraction(2));
        let omp = fig.get("OpenMP").unwrap();
        let tbb = fig.get("TBB").unwrap();
        let cilk = fig.get("CilkPlus").unwrap();
        let last = fig.x.len() - 1;
        assert_eq!(fig.x[last], 121);
        // Paper: 153 / 121 / 98. Shapes: all high; OpenMP >= TBB >= Cilk.
        assert!(
            omp.y[last] > 60.0,
            "OpenMP shuffled speedup {}",
            omp.y[last]
        );
        assert!(omp.y[last] >= tbb.y[last]);
        assert!(tbb.y[last] >= cilk.y[last] * 0.95);
        // Monotonically increasing for OpenMP (the paper's curve is).
        for w in omp.y.windows(2) {
            assert!(
                w[1] >= w[0] * 0.98,
                "OpenMP curve should keep rising: {:?}",
                omp.y
            );
        }
    }
}
