//! Drivers regenerating every table and figure of the paper.
//!
//! All drivers take a [`mic_graph::suite::Scale`]: `Scale::Full` for the
//! paper-sized runs recorded in EXPERIMENTS.md, a fraction for smoke tests.
//! Scalability curves come from the `mic-sim` machine model fed with
//! instrumented runs of the real kernels (see DESIGN.md for the
//! substitution argument); the kernels themselves run natively in the test
//! suite for correctness.

pub mod ablation;
pub mod extras;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod table1;

use mic_graph::suite::{build, build_cached, PaperGraph, Scale};
use mic_graph::Csr;

/// Build one suite graph, honoring the `MIC_SUITE_CACHE` directory if set
/// (binary CSR cache — useful when regenerating many figures at full
/// scale).
pub(crate) fn suite_graph(g: PaperGraph, scale: Scale) -> Csr {
    match std::env::var_os("MIC_SUITE_CACHE") {
        Some(dir) => build_cached(g, scale, dir),
        None => build(g, scale),
    }
}

/// Build the full seven-graph suite at `scale`, in Table I order.
pub(crate) fn suite(scale: Scale) -> Vec<(PaperGraph, Csr)> {
    PaperGraph::all().into_iter().map(|g| (g, suite_graph(g, scale))).collect()
}
