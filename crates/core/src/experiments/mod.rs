//! Drivers regenerating every table and figure of the paper.
//!
//! All drivers take a [`mic_graph::suite::Scale`]: `Scale::Full` for the
//! paper-sized runs recorded in EXPERIMENTS.md, a fraction for smoke tests.
//! Scalability curves come from the `mic-sim` machine model fed with
//! instrumented runs of the real kernels (see DESIGN.md for the
//! substitution argument); the kernels themselves run natively in the test
//! suite for correctness.

pub mod ablation;
pub mod extras;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod scale_free;
pub mod table1;

use mic_graph::suite::{PaperGraph, Scale};
use mic_graph::Csr;
use std::sync::Arc;

/// One suite graph, shared from the process-wide [`crate::workload_cache`]
/// (which also honors the `MIC_SUITE_CACHE` binary-CSR directory if set),
/// so regenerating many figures builds each graph once.
pub(crate) fn suite_graph(g: PaperGraph, scale: Scale) -> Arc<Csr> {
    crate::workload_cache::graph(g, scale, crate::workload_cache::OrderTag::Natural)
}

/// The full seven-graph suite at `scale`, in Table I order, shared from
/// the cache.
pub(crate) fn suite(scale: Scale) -> Vec<(PaperGraph, Arc<Csr>)> {
    crate::workload_cache::suite(scale)
}
