//! Figure 1: speedup of the coloring implementations on all (naturally
//! ordered) graphs — one panel per programming model.

use crate::series::{Figure, Series};
use crate::stats::paper_speedups;
use crate::workload_cache::{self, OrderTag};
use mic_coloring::instrument::ColoringWorkload;
use mic_graph::stats::LocalityWindows;
use mic_graph::suite::Scale;
use mic_sim::{simulate_with_scratch, Machine, Policy, Region, SimScratch, Work};
use std::sync::Arc;

/// Which panel of Figure 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Panel {
    /// (a) OpenMP: dynamic / static / guided, best chunk sizes (100/40/100).
    OpenMp,
    /// (b) Cilk Plus: worker-id vs holder local storage, grain 100.
    CilkPlus,
    /// (c) TBB: simple / auto / affinity partitioners, grain 40.
    Tbb,
}

impl Panel {
    pub fn from_char(c: char) -> Option<Panel> {
        match c {
            'a' => Some(Panel::OpenMp),
            'b' => Some(Panel::CilkPlus),
            'c' => Some(Panel::Tbb),
            _ => None,
        }
    }

    /// The variants shown in this panel: (legend label, scheduling policy,
    /// extra per-iteration cost). The "holder" variant pays a couple of
    /// issue slots per vertex for the view lookup — the paper found the
    /// two Cilk variants "very close".
    fn variants(&self) -> Vec<(&'static str, Policy, Work)> {
        let none = Work::default();
        match self {
            Panel::OpenMp => vec![
                ("OpenMP-dynamic", Policy::OmpDynamic { chunk: 100 }, none),
                ("OpenMP-static", Policy::OmpStatic { chunk: Some(40) }, none),
                ("OpenMP-guided", Policy::OmpGuided { min_chunk: 100 }, none),
            ],
            Panel::CilkPlus => vec![
                ("CilkPlus", Policy::Cilk { grain: 100 }, none),
                (
                    "CilkPlus-holder",
                    Policy::Cilk { grain: 100 },
                    Work {
                        issue: 2.0,
                        ..Default::default()
                    },
                ),
            ],
            Panel::Tbb => vec![
                ("TBB-simple", Policy::TbbSimple { grain: 40 }, none),
                ("TBB-auto", Policy::TbbAuto, none),
                ("TBB-affinity", Policy::TbbAffinity, none),
            ],
        }
    }
}

fn regions_with_extra(w: &ColoringWorkload, policy: Policy, extra: Work) -> Vec<Region> {
    if extra == Work::default() {
        return w.regions(policy);
    }
    let bump = |src: &Arc<Vec<Work>>| -> Region {
        Region::new(src.iter().map(|x| x.add(&extra)).collect(), policy)
    };
    vec![
        bump(&w.tentative),
        bump(&w.detect),
        bump(&w.conflict_tentative),
        bump(&w.conflict_detect),
    ]
}

/// Simulated speedups of a set of coloring variants over the KNF thread
/// grid, with the paper's baseline rule, geomean over the suite.
///
/// One sweep job per (variant, graph) pair; each job walks the full thread
/// grid with a reused [`SimScratch`], so the region prefix sums and the
/// event-loop buffers are built once per pair. The sweep degrades
/// gracefully: a job lost to a panic or deadline becomes a NaN column,
/// which [`paper_speedups`]' geomean then skips.
pub(crate) fn coloring_speedups(
    workloads: &[Arc<ColoringWorkload>],
    variants: &[(&'static str, Policy, Work)],
    machine: &Machine,
) -> Figure {
    let grid = machine.thread_grid();
    let jobs: Vec<(usize, usize)> = (0..variants.len())
        .flat_map(|v| (0..workloads.len()).map(move |g| (v, g)))
        .collect();
    let per_job: Vec<Vec<f64>> = crate::sweep::map_degraded(
        &jobs,
        |_, &(v, g)| {
            let (_, policy, extra) = variants[v];
            let regions = regions_with_extra(&workloads[g], policy, extra);
            let mut scratch = SimScratch::default();
            grid.iter()
                .map(|&t| simulate_with_scratch(machine, t, &regions, &mut scratch).cycles)
                .collect()
        },
        |_, _| vec![f64::NAN; grid.len()],
    );
    let cycles: Vec<Vec<Vec<f64>>> = per_job
        .chunks(workloads.len().max(1))
        .map(|c| c.to_vec())
        .collect();
    let speedups = paper_speedups(&cycles);
    let mut fig = Figure::new("coloring speedup", grid);
    for ((label, _, _), y) in variants.iter().zip(speedups) {
        fig.push(Series::new(*label, y));
    }
    fig
}

/// Figure 1, panel `panel`, at `scale` on the KNF machine model.
pub fn fig1(panel: Panel, scale: Scale) -> Figure {
    let machine = Machine::knf();
    let windows = LocalityWindows::default();
    let workloads: Vec<Arc<ColoringWorkload>> =
        crate::sweep::map(&mic_graph::suite::PaperGraph::all(), |_, &pg| {
            workload_cache::coloring(pg, scale, OrderTag::Natural, windows)
        });
    let ch = match panel {
        Panel::OpenMp => 'a',
        Panel::CilkPlus => 'b',
        Panel::Tbb => 'c',
    };
    let mut fig = crate::sweep::with_context(&format!("fig1{ch}"), || {
        coloring_speedups(&workloads, &panel.variants(), &machine)
    });
    fig.title = format!("Figure 1{ch}: coloring on naturally ordered graphs ({panel:?})");
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn openmp_panel_shapes() {
        let fig = fig1(Panel::OpenMp, Scale::Fraction(16));
        assert_eq!(fig.series.len(), 3);
        let dynamic = fig.get("OpenMP-dynamic").unwrap();
        // Speedup at 1 thread is 1 (it is the fastest 1-thread config or
        // ties with it); rises substantially by 121 threads.
        assert!(dynamic.y[0] > 0.9 && dynamic.y[0] <= 1.01);
        assert!(dynamic.y.last().unwrap() > &10.0);
        // Dynamic clearly beats static in the midrange, where solo-thread
        // stragglers hurt the static split (41..71 threads). At 121 every
        // core is full and our model has them tie — the paper's remaining
        // static deficit there comes from OS noise we do not model.
        let st = fig.get("OpenMP-static").unwrap();
        let mid = fig.x.iter().position(|&t| t == 51).unwrap();
        assert!(
            dynamic.y[mid] > 1.1 * st.y[mid],
            "dynamic {} should beat static {} at 51 threads",
            dynamic.y[mid],
            st.y[mid]
        );
        // (At miniature scale dynamic/100 has barely one chunk per thread
        // at t=121, so allow it to trail static's finer 40-chunks there.)
        assert!(*dynamic.y.last().unwrap() >= st.y.last().unwrap() * 0.8);
    }

    #[test]
    fn cilk_variants_are_close() {
        let fig = fig1(Panel::CilkPlus, Scale::Fraction(64));
        let a = fig.get("CilkPlus").unwrap();
        let b = fig.get("CilkPlus-holder").unwrap();
        for (ya, yb) in a.y.iter().zip(&b.y) {
            assert!(
                (ya - yb).abs() / ya < 0.15,
                "variants should be close: {ya} vs {yb}"
            );
        }
    }

    #[test]
    fn panel_chars_parse() {
        assert_eq!(Panel::from_char('a'), Some(Panel::OpenMp));
        assert_eq!(Panel::from_char('b'), Some(Panel::CilkPlus));
        assert_eq!(Panel::from_char('c'), Some(Panel::Tbb));
        assert_eq!(Panel::from_char('x'), None);
    }
}
