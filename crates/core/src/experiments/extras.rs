//! Exhibits beyond the paper: comparisons the extensions make possible.
//! These run the kernels *natively* (counting rounds/phases — machine-
//! independent quantities), unlike the figure drivers which simulate
//! timing.

use crate::series::{Figure, Series};
use crate::sweep;
use mic_bfs::sssp::{delta_stepping, dijkstra};
use mic_coloring::balance::{class_balance, rebalance};
use mic_coloring::dsatur::dsatur;
use mic_coloring::iterated::iterated_greedy;
use mic_coloring::jones_plassmann::jones_plassmann;
use mic_coloring::parallel::iterative_coloring_traced;
use mic_coloring::seq::greedy_color;
use mic_graph::suite::{PaperGraph, Scale};
use mic_graph::weights::EdgeWeights;
use mic_runtime::{RuntimeModel, Schedule, ThreadPool};

/// Jones–Plassmann vs speculative coloring: rounds and colors per suite
/// graph (JP needs many more rounds; speculation needs conflict repair but
/// converges in 2–3). X-axis = graph index in Table I order.
pub fn jp_vs_speculation(scale: Scale, threads: usize) -> Figure {
    let model = RuntimeModel::OpenMp(Schedule::dynamic100());
    let graphs = super::suite(scale);
    let mut fig = Figure::new(
        format!("Extras: JP vs speculative coloring ({threads} native threads)"),
        (0..graphs.len()).collect(),
    );
    fig.xlabel = "graph (Table I order)".into();
    fig.ylabel = "rounds / colors".into();
    // One sweep job per graph; each drives the native kernels on its own
    // `threads`-wide pool (cross-pool nesting is supported by the runtime).
    // Native rows degrade to NaN per graph; the per-graph x-axis keeps the
    // surviving columns meaningful.
    let rows: Vec<[f64; 5]> = sweep::with_context("extras:jp-vs-speculation", || {
        sweep::map_degraded(
            &graphs,
            |_, (_, g)| {
                let pool = ThreadPool::new(threads);
                let (spec, _) = iterative_coloring_traced(&pool, g, model);
                let jp = jones_plassmann(&pool, g, model, 42);
                [
                    spec.rounds as f64,
                    jp.rounds as f64,
                    spec.num_colors as f64,
                    jp.num_colors as f64,
                    greedy_color(g).num_colors as f64,
                ]
            },
            |_, _| [f64::NAN; 5],
        )
    });
    let col = |i: usize| -> Vec<f64> { rows.iter().map(|r| r[i]).collect() };
    fig.push(Series::new("speculative rounds", col(0)));
    fig.push(Series::new("JP rounds", col(1)));
    fig.push(Series::new("speculative colors", col(2)));
    fig.push(Series::new("JP colors", col(3)));
    fig.push(Series::new("greedy colors", col(4)));
    fig
}

/// Δ-stepping phase counts across the Δ sweep on one suite graph with
/// random weights: the classic U-shape (tiny Δ ⇒ Dijkstra-many buckets,
/// huge Δ ⇒ Bellman–Ford-many light rounds).
pub fn delta_sweep(scale: Scale, threads: usize) -> Figure {
    let g = super::suite_graph(PaperGraph::Hood, scale);
    let w = EdgeWeights::random_symmetric(&g, 0.05, 1.0, 7);
    let model = RuntimeModel::OpenMp(Schedule::dynamic100());
    let src = (g.num_vertices() / 2) as u32;
    let reference = dijkstra(&g, &w, src);
    // Δ multipliers of the mean weight, as integer per-mille for the axis.
    let multipliers = [50usize, 200, 1000, 5000, 20000, 100000];
    let mean_w: f64 = w.values().iter().sum::<f64>() / w.values().len() as f64;
    let phases: Vec<f64> = sweep::with_context("extras:delta-sweep", || {
        sweep::map_degraded(
            &multipliers,
            |_, &m| {
                let pool = ThreadPool::new(threads);
                let delta = mean_w * m as f64 / 1000.0;
                let r = delta_stepping(&pool, &g, &w, src, delta, model);
                // Cross-check correctness while we are here.
                debug_assert!(r
                    .dist
                    .iter()
                    .zip(&reference.dist)
                    .all(|(a, b)| (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-9));
                r.phases as f64
            },
            |_, _| f64::NAN,
        )
    });
    let _ = reference;
    let mut fig = Figure::new(
        format!("Extras: delta-stepping phases vs delta (hood, {threads} threads)"),
        multipliers.to_vec(),
    );
    fig.xlabel = "delta (per-mille of mean weight)".into();
    fig.ylabel = "phases".into();
    fig.push(Series::new("phases", phases));
    fig
}

/// Coloring-quality comparison across algorithms: colors used per suite
/// graph for First Fit, DSATUR, Jones–Plassmann, speculative-parallel, and
/// speculative + iterated greedy; plus the First-Fit class imbalance
/// before/after rebalancing.
pub fn coloring_quality(scale: Scale, threads: usize) -> Figure {
    let model = RuntimeModel::OpenMp(Schedule::dynamic100());
    let graphs = super::suite(scale);
    let mut fig = Figure::new(
        "Extras: coloring quality across algorithms",
        (0..graphs.len()).collect(),
    );
    fig.xlabel = "graph (Table I order)".into();
    fig.ylabel = "colors / imbalance".into();
    let rows: Vec<[f64; 7]> = sweep::with_context("extras:coloring-quality", || {
        sweep::map_degraded(
            &graphs,
            |_, (_, g)| {
                let pool = ThreadPool::new(threads);
                let mut c = greedy_color(g);
                let ff = c.num_colors as f64;
                let imb_before = class_balance(&c, g.num_vertices()).imbalance;
                let imb_after = rebalance(g, &mut c, 10).imbalance;
                let ds = dsatur(g).num_colors as f64;
                let jp = jones_plassmann(&pool, g, model, 42).num_colors as f64;
                let (sp, _) = iterative_coloring_traced(&pool, g, model);
                let improved = iterated_greedy(
                    g,
                    &mic_coloring::seq::Coloring {
                        colors: sp.colors.clone(),
                        num_colors: sp.num_colors,
                    },
                    6,
                );
                [
                    ff,
                    ds,
                    jp,
                    sp.num_colors as f64,
                    improved.num_colors as f64,
                    imb_before,
                    imb_after,
                ]
            },
            |_, _| [f64::NAN; 7],
        )
    });
    let col = |i: usize| -> Vec<f64> { rows.iter().map(|r| r[i]).collect() };
    fig.push(Series::new("first-fit colors", col(0)));
    fig.push(Series::new("dsatur colors", col(1)));
    fig.push(Series::new("jones-plassmann colors", col(2)));
    fig.push(Series::new("speculative colors", col(3)));
    fig.push(Series::new("speculative+iterated colors", col(4)));
    fig.push(Series::new("FF imbalance before", col(5)));
    fig.push(Series::new("FF imbalance after", col(6)));
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jp_needs_more_rounds_but_no_repair() {
        let fig = jp_vs_speculation(Scale::Fraction(128), 4);
        let spec = fig.get("speculative rounds").unwrap();
        let jp = fig.get("JP rounds").unwrap();
        for (s, j) in spec.y.iter().zip(&jp.y) {
            assert!(s <= &4.0, "speculation converges fast, got {s}");
            assert!(j > s, "JP rounds {j} should exceed speculative {s}");
        }
        // Color quality comparable across all three.
        let gc = fig.get("greedy colors").unwrap();
        let jc = fig.get("JP colors").unwrap();
        for (g, j) in gc.y.iter().zip(&jc.y) {
            assert!(*j <= g * 1.8 + 2.0, "JP colors {j} vs greedy {g}");
        }
    }

    #[test]
    fn quality_table_orders_sanely() {
        let fig = coloring_quality(Scale::Fraction(128), 4);
        let ds = fig.get("dsatur colors").unwrap();
        let ff = fig.get("first-fit colors").unwrap();
        let it = fig.get("speculative+iterated colors").unwrap();
        let sp = fig.get("speculative colors").unwrap();
        for i in 0..fig.x.len() {
            assert!(ds.y[i] <= ff.y[i] + 2.0, "DSATUR should be competitive");
            assert!(it.y[i] <= sp.y[i], "iterated never worsens speculation");
        }
        let before = fig.get("FF imbalance before").unwrap();
        let after = fig.get("FF imbalance after").unwrap();
        for (b, a) in before.y.iter().zip(&after.y) {
            assert!(a <= b, "rebalancing must not worsen imbalance");
        }
    }

    #[test]
    fn delta_sweep_is_u_shaped_at_extremes() {
        let fig = delta_sweep(Scale::Fraction(64), 4);
        let p = &fig.get("phases").unwrap().y;
        let min = p.iter().cloned().fold(f64::MAX, f64::min);
        // Both extremes cost more phases than the best middle value.
        assert!(p[0] > min, "tiny delta should pay: {p:?}");
        assert!(
            *p.last().unwrap() >= min,
            "huge delta should not win: {p:?}"
        );
    }
}
