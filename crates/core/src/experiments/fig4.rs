//! Figure 4: layered parallel BFS — implementations against the paper's
//! analytic model, on single graphs (a, b), the whole suite on KNF (c) and
//! the whole suite on the Xeon host (d).

use crate::series::{Figure, Series};
use crate::stats::{geomean, paper_speedups};
use crate::workload_cache::{self, OrderTag};
use mic_bfs::instrument::{BfsWorkload, SimVariant};
use mic_graph::stats::LocalityWindows;
use mic_graph::suite::{PaperGraph, Scale};
use mic_sim::{bfs_model_speedup, simulate_with_scratch, Machine, Policy, SimScratch};
use std::sync::Arc;

/// Which panel of Figure 4.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Panel {
    /// (a) pwtk on KNF: model vs OpenMP-Block(-relaxed).
    Pwtk,
    /// (b) inline_1 on KNF: same series.
    Inline1,
    /// (c) all graphs on KNF: model, OpenMP/TBB block-relaxed, Cilk bag.
    AllKnf,
    /// (d) all graphs on the host CPU: + OpenMP-TLS.
    AllCpu,
}

impl Panel {
    pub fn from_char(c: char) -> Option<Panel> {
        match c {
            'a' => Some(Panel::Pwtk),
            'b' => Some(Panel::Inline1),
            'c' => Some(Panel::AllKnf),
            'd' => Some(Panel::AllCpu),
            _ => None,
        }
    }
}

/// The paper's block size.
const BLOCK: usize = 32;

/// (label, frontier variant, driving policy) — the implementation series
/// of each panel.
fn impl_variants(panel: Panel) -> Vec<(&'static str, SimVariant, Policy)> {
    let block_relaxed = SimVariant::Block {
        block: BLOCK,
        relaxed: true,
    };
    let block_locked = SimVariant::Block {
        block: BLOCK,
        relaxed: false,
    };
    let bag = SimVariant::Bag { grain: 64 };
    let omp = Policy::OmpDynamic { chunk: BLOCK };
    let tbb = Policy::TbbSimple { grain: BLOCK };
    let cilk = Policy::Cilk { grain: 64 };
    match panel {
        Panel::Pwtk | Panel::Inline1 => vec![
            ("OpenMP-Block-relaxed", block_relaxed, omp),
            ("OpenMP-Block", block_locked, omp),
        ],
        Panel::AllKnf => vec![
            ("OpenMP-Block-relaxed", block_relaxed, omp),
            ("TBB-Block-relaxed", block_relaxed, tbb),
            ("CilkPlus-Bag-relaxed", bag, cilk),
        ],
        Panel::AllCpu => vec![
            ("OpenMP-Block-relaxed", block_relaxed, omp),
            ("TBB-Block-relaxed", block_relaxed, tbb),
            ("OpenMP-TLS", SimVariant::Tls, omp),
            ("CilkPlus-Bag-relaxed", bag, cilk),
        ],
    }
}

fn graphs_for(panel: Panel) -> Vec<PaperGraph> {
    match panel {
        Panel::Pwtk => vec![PaperGraph::Pwtk],
        Panel::Inline1 => vec![PaperGraph::Inline1],
        Panel::AllKnf | Panel::AllCpu => PaperGraph::all().to_vec(),
    }
}

/// Figure 4, panel `panel`, at `scale`.
///
/// One sweep job per (variant, graph): each pulls its BFS workload from
/// the cache (instrumented once per variant — the underlying graph and
/// its BFS run once in total) and walks the grid with reused scratch.
pub fn fig4(panel: Panel, scale: Scale) -> Figure {
    let machine = match panel {
        Panel::AllCpu => Machine::xeon_host(),
        _ => Machine::knf(),
    };
    let grid = machine.thread_grid();
    let graphs = graphs_for(panel);
    let windows = LocalityWindows::default();
    let variants = impl_variants(panel);

    let jobs: Vec<(usize, PaperGraph)> = (0..variants.len())
        .flat_map(|v| graphs.iter().map(move |&pg| (v, pg)))
        .collect();
    let label = format!(
        "fig4{}",
        match panel {
            Panel::Pwtk => 'a',
            Panel::Inline1 => 'b',
            Panel::AllKnf => 'c',
            Panel::AllCpu => 'd',
        }
    );
    // The fallback re-fetches the workload on the caller thread (a strict,
    // injection-free path, usually an in-memory cache hit) so the analytic
    // model series below survives even when the simulation job was lost;
    // only the lost variant's cycles degrade to NaN.
    let runs: Vec<(Arc<BfsWorkload>, Vec<f64>)> = crate::sweep::with_context(&label, || {
        crate::sweep::map_degraded(
            &jobs,
            |_, &(v, pg)| {
                let (_, sv, policy) = variants[v];
                let w = workload_cache::bfs(pg, scale, OrderTag::Natural, windows, sv);
                let regions = w.regions(policy);
                let mut scratch = SimScratch::default();
                let cycles = grid
                    .iter()
                    .map(|&t| simulate_with_scratch(&machine, t, &regions, &mut scratch).cycles)
                    .collect();
                (w, cycles)
            },
            |_, &(v, pg)| {
                let (_, sv, _) = variants[v];
                let w = workload_cache::bfs(pg, scale, OrderTag::Natural, windows, sv);
                (w, vec![f64::NAN; grid.len()])
            },
        )
    });

    // The analytic model on the level profiles (variant-independent: take
    // the first variant's workloads).
    let model_y: Vec<f64> = grid
        .iter()
        .map(|&t| {
            let per_graph: Vec<f64> = runs[..graphs.len()]
                .iter()
                .map(|(w, _)| bfs_model_speedup(&w.widths, t))
                .collect();
            geomean(&per_graph)
        })
        .collect();

    // Simulated implementations with the paper's baseline rule.
    let cycles: Vec<Vec<Vec<f64>>> = runs
        .chunks(graphs.len())
        .map(|per_graph| per_graph.iter().map(|(_, c)| c.clone()).collect())
        .collect();
    let speedups = paper_speedups(&cycles);

    let mut fig = Figure::new(format!("Figure 4 ({panel:?}) on {}", machine.name), grid);
    fig.push(Series::new("Model", model_y));
    for ((label, _, _), y) in variants.iter().zip(speedups) {
        fig.push(Series::new(*label, y));
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knf_panels_have_expected_series() {
        let fig = fig4(Panel::AllKnf, Scale::Fraction(64));
        assert_eq!(fig.series.len(), 4);
        assert!(fig.get("Model").is_some());
        assert!(fig.get("CilkPlus-Bag-relaxed").is_some());
    }

    #[test]
    fn bag_is_worst_and_block_tracks_model_early() {
        let fig = fig4(Panel::AllKnf, Scale::Fraction(16));
        let model = fig.get("Model").unwrap();
        let block = fig.get("OpenMP-Block-relaxed").unwrap();
        let bag = fig.get("CilkPlus-Bag-relaxed").unwrap();
        let last = fig.x.len() - 1;
        assert!(bag.y[last] < block.y[last], "bag must trail block");
        // Model is an upper bound at scale (it ignores all overheads).
        assert!(model.y[last] >= block.y[last] * 0.8);
        // Block speedup is sublinear but real.
        assert!(block.y[last] > 2.0 && block.y[last] < fig.x[last] as f64);
    }

    #[test]
    fn relaxed_beats_locked_on_single_graph_panels() {
        let fig = fig4(Panel::Pwtk, Scale::Fraction(16));
        let relaxed = fig.get("OpenMP-Block-relaxed").unwrap();
        let locked = fig.get("OpenMP-Block").unwrap();
        let last = fig.x.len() - 1;
        assert!(
            relaxed.y[last] >= locked.y[last],
            "relaxed {} vs locked {}",
            relaxed.y[last],
            locked.y[last]
        );
    }

    #[test]
    fn inline1_outscales_pwtk() {
        // The paper: "the peak speedup on the inline_1 graph is about
        // twice the speedup achieved on pwtk" (wider levels).
        let a = fig4(Panel::Pwtk, Scale::Fraction(16));
        let b = fig4(Panel::Inline1, Scale::Fraction(16));
        let peak = |f: &Figure| f.get("OpenMP-Block-relaxed").unwrap().peak().1;
        assert!(
            peak(&b) > 1.2 * peak(&a),
            "inline_1 {} vs pwtk {}",
            peak(&b),
            peak(&a)
        );
    }

    #[test]
    fn cpu_panel_uses_host_grid() {
        let fig = fig4(Panel::AllCpu, Scale::Fraction(64));
        assert_eq!(*fig.x.last().unwrap(), 24);
        assert!(fig.get("OpenMP-TLS").is_some());
    }
}
