//! Scale-free exhibits beyond the paper: PageRank, label-propagation
//! connected components, and direction-optimizing hybrid BFS on the RMAT
//! companions of the suite (plus `hood` as the mesh contrast where the
//! comparison is meaningful).
//!
//! These are the kernels the MIC-characterization literature names as
//! stressing Xeon Phi differently from mesh BFS: power-law degree
//! distributions concentrate work on a few hub rows (load imbalance the
//! dynamic schedules must absorb) and collapse the BFS level structure to
//! a handful of very wide frontiers (where the Beamer bottom-up switch
//! pays off — on the paper's FE meshes it never fires).

use crate::series::{Figure, Series};
use crate::workload_cache::{self, OrderTag};
use mic_graph::stats::LocalityWindows;
use mic_graph::suite::{PaperGraph, Scale};
use mic_sim::{simulate, Machine, Policy, Region};

fn speedups(machine: &Machine, grid: &[usize], base: f64, regions: &[Region]) -> Vec<f64> {
    grid.iter()
        .map(|&t| base / simulate(machine, t, regions).cycles)
        .collect()
}

/// The graphs the pagerank/components exhibits sweep: both RMAT
/// companions, then the paper's `hood` mesh for contrast.
fn exhibit_graphs() -> Vec<PaperGraph> {
    let mut v: Vec<PaperGraph> = PaperGraph::scale_free().to_vec();
    v.push(PaperGraph::Hood);
    v
}

/// PageRank scalability: one self-relative speedup curve per graph, on
/// the converged native iteration count.
pub fn pagerank_fig(scale: Scale) -> Figure {
    let machine = Machine::knf();
    let grid = machine.thread_grid();
    let windows = LocalityWindows::default();
    let policy = Policy::OmpDynamic { chunk: 100 };
    let graphs = exhibit_graphs();
    let mut fig = Figure::new(
        "PageRank on scale-free graphs (OpenMP dynamic)",
        grid.clone(),
    );
    let runs: Vec<Vec<f64>> = crate::sweep::with_context("pagerank", || {
        crate::sweep::map_degraded(
            &graphs,
            |_, &pg| {
                let w = workload_cache::pagerank(pg, scale, OrderTag::Natural, windows);
                let regions = w.regions(policy);
                let base = simulate(&machine, 1, &regions).cycles;
                speedups(&machine, &grid, base, &regions)
            },
            |_, _| vec![f64::NAN; grid.len()],
        )
    });
    for (pg, y) in graphs.iter().zip(runs) {
        fig.push(Series::new(pg.name(), y));
    }
    fig
}

/// Connected-components scalability: synchronous label propagation, one
/// self-relative speedup curve per graph.
pub fn components_fig(scale: Scale) -> Figure {
    let machine = Machine::knf();
    let grid = machine.thread_grid();
    let windows = LocalityWindows::default();
    let policy = Policy::OmpDynamic { chunk: 100 };
    let graphs = exhibit_graphs();
    let mut fig = Figure::new(
        "Connected components (label propagation) on scale-free graphs",
        grid.clone(),
    );
    let runs: Vec<Vec<f64>> = crate::sweep::with_context("components", || {
        crate::sweep::map_degraded(
            &graphs,
            |_, &pg| {
                let w = workload_cache::components(pg, scale, OrderTag::Natural, windows);
                let regions = w.regions(policy);
                let base = simulate(&machine, 1, &regions).cycles;
                speedups(&machine, &grid, base, &regions)
            },
            |_, _| vec![f64::NAN; grid.len()],
        )
    });
    for (pg, y) in graphs.iter().zip(runs) {
        fig.push(Series::new(pg.name(), y));
    }
    fig
}

/// Hybrid vs layered BFS on the RMAT companions. Both curves of a graph
/// are normalized to the *layered* one-thread time, so the hybrid curve's
/// elevation above the layered one is the direction-optimization win
/// itself (its switch evidence is the `mic_bfs_direction_switches_total`
/// counter the workload build bumps).
pub fn hybrid_bfs_fig(scale: Scale) -> Figure {
    let machine = Machine::knf();
    let grid = machine.thread_grid();
    let windows = LocalityWindows::default();
    let policy = Policy::OmpDynamic { chunk: 64 };
    let graphs: Vec<PaperGraph> = PaperGraph::scale_free().to_vec();
    let mut fig = Figure::new(
        "Hybrid (direction-optimizing) vs layered BFS on RMAT",
        grid.clone(),
    );
    let runs: Vec<(Vec<f64>, Vec<f64>)> = crate::sweep::with_context("hybrid-bfs", || {
        crate::sweep::map_degraded(
            &graphs,
            |_, &pg| {
                let layered = workload_cache::bfs(
                    pg,
                    scale,
                    OrderTag::Natural,
                    windows,
                    mic_bfs::instrument::SimVariant::Block {
                        block: 32,
                        relaxed: true,
                    },
                )
                .regions(policy);
                let hybrid = workload_cache::hybrid_bfs(pg, scale, OrderTag::Natural, windows)
                    .regions(policy);
                let base = simulate(&machine, 1, &layered).cycles;
                (
                    speedups(&machine, &grid, base, &layered),
                    speedups(&machine, &grid, base, &hybrid),
                )
            },
            |_, _| (vec![f64::NAN; grid.len()], vec![f64::NAN; grid.len()]),
        )
    });
    for (pg, (layered, hybrid)) in graphs.iter().zip(runs) {
        fig.push(Series::new(format!("{} layered", pg.name()), layered));
        fig.push(Series::new(format!("{} hybrid", pg.name()), hybrid));
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pagerank_fig_scales_on_every_graph() {
        let fig = pagerank_fig(Scale::Fraction(64));
        assert_eq!(fig.series.len(), 3);
        let last = fig.x.len() - 1;
        for s in &fig.series {
            assert!(
                s.y[last] > 2.0 && s.y[last] < 121.0,
                "{}: speedup {}",
                s.label,
                s.y[last]
            );
        }
    }

    #[test]
    fn components_fig_scales_on_rmat() {
        let fig = components_fig(Scale::Fraction(64));
        let last = fig.x.len() - 1;
        let s = fig.get("rmat-ef16").unwrap();
        assert!(s.y[last] > 2.0, "rmat-ef16 speedup {}", s.y[last]);
    }

    #[test]
    fn hybrid_beats_layered_on_rmat() {
        let fig = hybrid_bfs_fig(Scale::Fraction(64));
        let last = fig.x.len() - 1;
        for g in ["rmat-ef8", "rmat-ef16"] {
            let layered = fig.get(&format!("{g} layered")).unwrap().y[last];
            let hybrid = fig.get(&format!("{g} hybrid")).unwrap().y[last];
            assert!(
                hybrid > layered,
                "{g}: hybrid {hybrid} should beat layered {layered}"
            );
        }
    }
}
