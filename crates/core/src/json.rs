//! Minimal dependency-free JSON: a recursive-descent reader and a
//! [`Value`] renderer.
//!
//! Grown out of the baseline loader (which still re-exports this module as
//! `baseline::json`) and now shared with the `mic-serve` wire protocol:
//! one reader/writer pair means the server, the client load generator, the
//! baseline gate and the bench JSON exhibits all agree on escaping and
//! number round-tripping. Numbers are `f64`; rendering uses Rust's
//! shortest-round-trip float formatting, so an `f64` survives a
//! render→parse cycle bit-exactly (the serve integration test pins this).
//! Non-finite numbers render as `null` (JSON has no NaN/Inf).

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field by key (first match), if this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Shorthand for building string values.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Render as a compact JSON document (no insignificant whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => {
                if !n.is_finite() {
                    out.push_str("null");
                } else if n.fract() == 0.0 && n.abs() <= (1u64 << 53) as f64 {
                    // Small integral values print without the ".0" —
                    // exactly representable, so still bit-exact.
                    out.push_str(&format!("{n:.0}"));
                } else {
                    // `{:?}` is Rust's shortest representation that parses
                    // back to the same bits — exact round-trips for free.
                    out.push_str(&format!("{n:?}"));
                }
            }
            Value::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\":");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// JSON string-content escaping (quotes, backslashes, control characters).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parse one JSON document (trailing content is an error).
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                expect(b, pos, b':')?;
                fields.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Value::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Value::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Value::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let s = std::str::from_utf8(&b[start..*pos]).unwrap_or("");
            s.parse::<f64>()
                .map(Value::Num)
                .map_err(|_| format!("bad token at byte {start}"))
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err("bad escape".into()),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Multi-byte UTF-8 sequences pass through untouched.
                let len = match c {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let chunk = b.get(*pos..*pos + len).ok_or("truncated utf-8")?;
                out.push_str(std::str::from_utf8(chunk).map_err(|_| "bad utf-8")?);
                *pos += len;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_render_and_reparse() {
        let v = Value::Obj(vec![
            ("s".into(), Value::str("a\"b\\c\nd")),
            ("n".into(), Value::Num(1.25)),
            ("b".into(), Value::Bool(true)),
            ("z".into(), Value::Null),
            (
                "a".into(),
                Value::Arr(vec![Value::Num(1.0), Value::str("x")]),
            ),
        ]);
        assert_eq!(parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for bits in [
            0x3ff0_0000_0000_0001u64, // 1.0000000000000002
            0x4005_bf0a_8b14_5769,    // e
            0x0000_0000_0000_0001,    // smallest subnormal
            0x7fef_ffff_ffff_ffff,    // MAX
        ] {
            let x = f64::from_bits(bits);
            let rendered = Value::Num(x).render();
            let back = parse(&rendered).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), bits, "{rendered}");
        }
    }

    #[test]
    fn non_finite_numbers_render_null() {
        assert_eq!(Value::Num(f64::NAN).render(), "null");
        assert_eq!(Value::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn u64_accessor_is_exact() {
        assert_eq!(Value::Num(3.0).as_u64(), Some(3));
        assert_eq!(Value::Num(3.5).as_u64(), None);
        assert_eq!(Value::Num(-1.0).as_u64(), None);
        assert_eq!(Value::str("3").as_u64(), None);
    }
}
