//! Native wall-clock runners.
//!
//! These execute the *real* kernels on real threads and time them. On the
//! paper's hardware this is the measurement path; in this repository it is
//! the correctness/benchmark path (Criterion benches build on it), while
//! the scalability figures come from the machine simulator — matching the
//! paper's own caveat that absolute numbers on a prototype are not
//! meaningful.

use mic_bfs::{parallel_bfs, BfsVariant};
use mic_coloring::{iterative_coloring, RuntimeModel};
use mic_graph::{Csr, VertexId};
use mic_irregular::kernel::irregular_inplace;
use mic_runtime::ThreadPool;
use std::time::{Duration, Instant};

/// Outcome of a timed native run.
#[derive(Clone, Debug)]
pub struct Timed<T> {
    pub elapsed: Duration,
    pub output: T,
}

fn timed<T>(f: impl FnOnce() -> T) -> Timed<T> {
    let start = Instant::now();
    let output = f();
    Timed {
        elapsed: start.elapsed(),
        output,
    }
}

/// Run and time the parallel iterative coloring; returns the color count
/// and round count.
pub fn run_coloring(pool: &ThreadPool, g: &Csr, model: RuntimeModel) -> Timed<(u32, usize)> {
    timed(|| {
        let r = iterative_coloring(pool, g, model);
        (r.num_colors, r.rounds)
    })
}

/// Run and time a parallel BFS; returns the level count.
pub fn run_bfs(pool: &ThreadPool, g: &Csr, source: VertexId, variant: BfsVariant) -> Timed<u32> {
    timed(|| parallel_bfs(pool, g, source, variant).num_levels)
}

/// Run and time one irregular-computation sweep (in place, Algorithm 5);
/// returns the state checksum.
pub fn run_irregular(pool: &ThreadPool, g: &Csr, iter: usize, model: RuntimeModel) -> Timed<f64> {
    timed(|| {
        let mut state: Vec<f64> = (0..g.num_vertices()).map(|i| (i % 1013) as f64).collect();
        irregular_inplace(pool, g, &mut state, iter, model);
        state.iter().sum()
    })
}

/// Native scaling sweep: run a timed kernel at each thread count (median
/// of `repeats` runs) and report wall-clock speedup relative to one
/// thread. On a multicore host this measures the real thing; on a 1-core
/// CI box it degenerates to ~1 everywhere (the simulator carries the
/// scalability claims there).
pub fn native_scaling<F>(threads: &[usize], repeats: usize, mut run: F) -> crate::series::Figure
where
    F: FnMut(&ThreadPool) -> Duration,
{
    assert!(!threads.is_empty() && repeats >= 1);
    let mut medians = Vec::with_capacity(threads.len());
    for &t in threads {
        let pool = ThreadPool::new(t);
        let mut times: Vec<f64> = (0..repeats).map(|_| run(&pool).as_secs_f64()).collect();
        times.sort_by(f64::total_cmp);
        medians.push(times[times.len() / 2]);
    }
    let base = medians[0];
    let mut fig = crate::series::Figure::new("native scaling", threads.to_vec());
    fig.push(crate::series::Series::new(
        "speedup",
        medians.iter().map(|m| base / m).collect(),
    ));
    fig.push(crate::series::Series::new(
        "ms",
        medians.iter().map(|m| m * 1e3).collect(),
    ));
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use mic_graph::generators::erdos_renyi_gnm;
    use mic_runtime::Schedule;

    #[test]
    fn native_scaling_produces_figure() {
        let g = erdos_renyi_gnm(400, 1600, 1);
        let fig = native_scaling(&[1, 2], 3, |pool| {
            run_coloring(pool, &g, RuntimeModel::OpenMp(Schedule::dynamic100())).elapsed
        });
        assert_eq!(fig.x, vec![1, 2]);
        assert!(fig.get("speedup").unwrap().y[0] > 0.99);
        assert!(fig.get("ms").unwrap().y.iter().all(|&m| m > 0.0));
    }

    #[test]
    fn native_runs_complete_and_report() {
        let pool = ThreadPool::new(4);
        let g = erdos_renyi_gnm(800, 4000, 5);
        let c = run_coloring(&pool, &g, RuntimeModel::OpenMp(Schedule::dynamic100()));
        assert!(c.output.0 >= 2);
        let b = run_bfs(
            &pool,
            &g,
            0,
            BfsVariant::OmpBlock {
                sched: Schedule::Dynamic { chunk: 32 },
                block: 32,
                relaxed: true,
            },
        );
        assert!(b.output >= 2);
        let i = run_irregular(&pool, &g, 2, RuntimeModel::CilkHolder { grain: 32 });
        assert!(i.output.is_finite());
    }
}
