//! Property-based tests: the parallel speculative coloring must be proper
//! on arbitrary graphs under arbitrary models and thread counts.

use mic_coloring::distance2::{check_distance2, greedy_distance2};
use mic_coloring::seq::greedy_color_in_order;
use mic_coloring::verify::check_proper;
use mic_coloring::{greedy_color, iterative_coloring, RuntimeModel};
use mic_graph::{Csr, GraphBuilder, VertexId};
use mic_runtime::{Partitioner, Schedule, ThreadPool};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Csr> {
    (2usize..80).prop_flat_map(|n| {
        proptest::collection::vec((0..n as VertexId, 0..n as VertexId), 0..300).prop_map(
            move |es| {
                let mut b = GraphBuilder::new(n);
                b.extend(es);
                b.build()
            },
        )
    })
}

fn arb_model() -> impl Strategy<Value = RuntimeModel> {
    prop_oneof![
        (1usize..200).prop_map(|c| RuntimeModel::OpenMp(Schedule::Dynamic { chunk: c })),
        Just(RuntimeModel::OpenMp(Schedule::Static { chunk: None })),
        (1usize..100).prop_map(|c| RuntimeModel::OpenMp(Schedule::Guided { min_chunk: c })),
        (1usize..100).prop_map(|g| RuntimeModel::CilkHolder { grain: g }),
        (1usize..100).prop_map(|g| RuntimeModel::Tbb(Partitioner::Simple { grain: g })),
        Just(RuntimeModel::Tbb(Partitioner::Auto)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn parallel_coloring_always_proper(
        g in arb_graph(),
        model in arb_model(),
        t in 1usize..8,
    ) {
        let pool = ThreadPool::new(t);
        let r = iterative_coloring(&pool, &g, model);
        prop_assert!(check_proper(&g, &r.colors).is_ok());
        prop_assert!((r.num_colors as usize) <= g.max_degree() + 1);
        prop_assert_eq!(r.conflicts_per_round.last().copied().unwrap_or(0), 0);
    }

    #[test]
    fn greedy_proper_for_any_visit_order(g in arb_graph(), seed in any::<u64>()) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut order: Vec<VertexId> = (0..g.num_vertices() as VertexId).collect();
        order.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));
        let c = greedy_color_in_order(&g, &order);
        prop_assert!(check_proper(&g, &c.colors).is_ok());
        prop_assert!((c.num_colors as usize) <= g.max_degree() + 1);
    }

    #[test]
    fn distance2_always_valid_and_at_least_distance1(g in arb_graph()) {
        let d2 = greedy_distance2(&g);
        prop_assert!(check_distance2(&g, &d2.colors).is_ok());
        let d1 = greedy_color(&g);
        prop_assert!(d2.num_colors >= d1.num_colors);
    }
}
