//! Coloring validity checks.

use crate::UNCOLORED;
use mic_graph::{Csr, VertexId};

/// Error describing why a coloring is invalid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColoringError {
    /// A vertex was never assigned a color.
    Uncolored(VertexId),
    /// Two adjacent vertices share a color.
    Conflict(VertexId, VertexId),
}

impl std::fmt::Display for ColoringError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ColoringError::Uncolored(v) => write!(f, "vertex {v} is uncolored"),
            ColoringError::Conflict(u, v) => {
                write!(f, "adjacent vertices {u} and {v} share a color")
            }
        }
    }
}

impl std::error::Error for ColoringError {}

/// Check that `colors` is a proper (distance-1) coloring of `g`.
pub fn check_proper(g: &Csr, colors: &[u32]) -> Result<(), ColoringError> {
    assert_eq!(colors.len(), g.num_vertices());
    for v in g.vertices() {
        if colors[v as usize] == UNCOLORED {
            return Err(ColoringError::Uncolored(v));
        }
        for &w in g.neighbors(v) {
            if v < w && colors[v as usize] == colors[w as usize] {
                return Err(ColoringError::Conflict(v, w));
            }
        }
    }
    Ok(())
}

/// Number of distinct colors used (max + 1 over colored vertices).
pub fn num_colors_used(colors: &[u32]) -> u32 {
    colors
        .iter()
        .copied()
        .filter(|&c| c != UNCOLORED)
        .max()
        .map_or(0, |c| c + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mic_graph::generators::path;

    #[test]
    fn accepts_proper() {
        let g = path(4);
        assert!(check_proper(&g, &[0, 1, 0, 1]).is_ok());
    }

    #[test]
    fn rejects_conflict() {
        let g = path(3);
        assert_eq!(
            check_proper(&g, &[0, 0, 1]),
            Err(ColoringError::Conflict(0, 1))
        );
    }

    #[test]
    fn rejects_uncolored() {
        let g = path(2);
        assert_eq!(
            check_proper(&g, &[0, UNCOLORED]),
            Err(ColoringError::Uncolored(1))
        );
    }

    #[test]
    fn counts_colors() {
        assert_eq!(num_colors_used(&[0, 3, 1]), 4);
        assert_eq!(num_colors_used(&[]), 0);
        assert_eq!(num_colors_used(&[UNCOLORED]), 0);
    }
}
