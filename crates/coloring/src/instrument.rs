//! Per-vertex work descriptors of the coloring algorithm, for the machine
//! simulator.
//!
//! The costs below count what the native kernel in [`crate::parallel`]
//! actually does per vertex: stream the adjacency list, read each
//! neighbor's color (hit class determined by the id gap, which is what the
//! paper's random shuffle destroys), stamp the thread-local forbidden
//! array, scan for the first free color. Conflict rounds touch only a tiny
//! fraction of vertices ("the number of conflicting vertices is usually
//! low"), so the simulator re-runs the two sweeps on a small sample.

use mic_graph::stats::{gap_class, LocalityWindows, MemClass};
use mic_graph::Csr;
use mic_sim::{Policy, Region, Work};
use std::sync::Arc;

/// Issue ops per vertex outside the neighbor loop (queue read, color
/// store, scan setup, loop control).
const VERTEX_ISSUE: f64 = 10.0;
/// Issue ops per neighbor (load, compare, stamp, increment).
const EDGE_ISSUE: f64 = 5.0;
/// Forbidden-array stamps and scans per neighbor — always L1 (the array is
/// a few hundred bytes).
const EDGE_L1: f64 = 1.5;
/// Adjacency-array streaming: 16 `u32` ids per 64-byte line. The hardware
/// prefetcher keeps the stream resident, so it costs L2/ring transfers,
/// not demand misses.
const EDGE_STREAM_L2: f64 = 1.0 / 16.0;
/// Fraction of vertices revisited in conflict rounds (the paper reports
/// conflict counts far below 1%).
const CONFLICT_SAMPLE: usize = 1024;

/// The simulator-facing workload of one iterative-coloring execution.
#[derive(Clone)]
pub struct ColoringWorkload {
    /// Per-vertex cost of the tentative-coloring sweep.
    pub tentative: Arc<Vec<Work>>,
    /// Per-vertex cost of the conflict-detection sweep.
    pub detect: Arc<Vec<Work>>,
    /// Sampled conflict-round costs (both sweeps over the sample).
    pub conflict_tentative: Arc<Vec<Work>>,
    pub conflict_detect: Arc<Vec<Work>>,
}

/// Build the workload for `g` with the given locality windows.
pub fn instrument(g: &Csr, windows: LocalityWindows) -> ColoringWorkload {
    let n = g.num_vertices();
    let mut tentative = Vec::with_capacity(n);
    let mut detect = Vec::with_capacity(n);
    for v in g.vertices() {
        let deg = g.degree(v) as f64;
        let (mut l1, mut l2, mut dram) = (0.0f64, 0.0f64, 0.0f64);
        for &w in g.neighbors(v) {
            match gap_class(v, w, windows) {
                MemClass::L1 => l1 += 1.0,
                MemClass::L2 => l2 += 1.0,
                MemClass::Dram => dram += 1.0,
            }
        }
        tentative.push(Work {
            issue: VERTEX_ISSUE + EDGE_ISSUE * deg,
            l1: l1 + EDGE_L1 * deg,
            l2: l2 + EDGE_STREAM_L2 * deg,
            dram,
            flops: 0.0,
            atomics: 0.0,
        });
        detect.push(Work {
            issue: 6.0 + 3.0 * deg,
            l1: l1 + 1.0, // neighbor colors re-read; own color cached
            l2: l2 + EDGE_STREAM_L2 * deg,
            dram,
            flops: 0.0,
            atomics: 0.0,
        });
    }
    let sample =
        |src: &[Work]| -> Vec<Work> { src.iter().step_by(CONFLICT_SAMPLE).copied().collect() };
    ColoringWorkload {
        conflict_tentative: Arc::new(sample(&tentative)),
        conflict_detect: Arc::new(sample(&detect)),
        tentative: Arc::new(tentative),
        detect: Arc::new(detect),
    }
}

impl ColoringWorkload {
    /// The region sequence of one full run under `policy`:
    /// round 1 over all vertices (tentative + detect), a conflict round
    /// over the sample, each sweep a separate parallel region.
    pub fn regions(&self, policy: Policy) -> Vec<Region> {
        vec![
            Region::shared(Arc::clone(&self.tentative), policy),
            Region::shared(Arc::clone(&self.detect), policy),
            Region::shared(Arc::clone(&self.conflict_tentative), policy),
            Region::shared(Arc::clone(&self.conflict_detect), policy),
        ]
    }

    /// Replay-fidelity regions: instead of the fixed conflict sample, use
    /// the *actual* per-round visit sets recorded by
    /// `mic_coloring::parallel::iterative_coloring_traced` — two regions
    /// (tentative + detect) per real round, each over exactly the vertices
    /// that round touched.
    pub fn regions_replay(&self, policy: Policy, round_visits: &[Vec<u32>]) -> Vec<Region> {
        let mut regions = Vec::with_capacity(round_visits.len() * 2);
        for visit in round_visits {
            let tent: Vec<Work> = visit.iter().map(|&v| self.tentative[v as usize]).collect();
            let det: Vec<Work> = visit.iter().map(|&v| self.detect[v as usize]).collect();
            regions.push(Region::new(tent, policy));
            regions.push(Region::new(det, policy));
        }
        regions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mic_graph::generators::{grid2d, Stencil2};
    use mic_graph::ordering::{apply, Ordering};
    use mic_sim::{simulate, Machine};

    #[test]
    fn workload_sizes_match_graph() {
        let g = grid2d(50, 50, Stencil2::FivePoint);
        let w = instrument(&g, LocalityWindows::default());
        assert_eq!(w.tentative.len(), g.num_vertices());
        assert_eq!(w.detect.len(), g.num_vertices());
        assert!(w.conflict_tentative.len() <= g.num_vertices() / CONFLICT_SAMPLE + 1);
        assert!(w.tentative.iter().all(|x| x.is_valid()));
    }

    #[test]
    fn shuffling_moves_reads_to_dram() {
        let g = grid2d(600, 600, Stencil2::FivePoint);
        let (shuffled, _) = apply(&g, Ordering::Random { seed: 4 });
        let nat = instrument(&g, LocalityWindows::default());
        let shf = instrument(&shuffled, LocalityWindows::default());
        let dram_nat: f64 = nat.tentative.iter().map(|w| w.dram).sum();
        let dram_shf: f64 = shf.tentative.iter().map(|w| w.dram).sum();
        assert!(
            dram_shf > 3.0 * dram_nat,
            "shuffle should add DRAM traffic: {dram_nat} -> {dram_shf}"
        );
    }

    #[test]
    fn replay_agrees_with_sampled_approximation() {
        // The fixed conflict-sample approximation must track the real
        // traced rounds closely (the paper's conflicts are tiny).
        use mic_runtime::ThreadPool;
        let g = grid2d(300, 300, Stencil2::FivePoint);
        let pool = ThreadPool::new(8);
        let (_, rounds) = mic_coloring_traced(&pool, &g);
        let w = instrument(&g, LocalityWindows::default());
        let policy = Policy::OmpDynamic { chunk: 100 };
        let m = Machine::knf();
        let sampled = simulate(&m, 61, &w.regions(policy)).cycles;
        let replay = simulate(&m, 61, &w.regions_replay(policy, &rounds)).cycles;
        // The fixed two-round sample over-/under-shoots by the cost of
        // however many conflict rounds the traced run actually had; at 61
        // threads that is a ~10% effect on a graph this small and shrinks
        // with graph size.
        let rel = (sampled - replay).abs() / replay;
        assert!(rel < 0.2, "sampled {sampled} vs replay {replay} ({rel:.3})");
    }

    fn mic_coloring_traced(
        pool: &mic_runtime::ThreadPool,
        g: &Csr,
    ) -> (crate::parallel::ParallelColoring, Vec<Vec<u32>>) {
        use mic_runtime::Schedule;
        crate::parallel::iterative_coloring_traced(
            pool,
            g,
            mic_runtime::RuntimeModel::OpenMp(Schedule::dynamic100()),
        )
    }

    #[test]
    fn shuffled_scales_better_than_natural_at_high_threads() {
        // The paper's central SMT observation: the DRAM-latency-bound
        // (shuffled) kernel keeps scaling to 121 threads, the natural one
        // saturates earlier.
        let g = grid2d(600, 600, Stencil2::FivePoint);
        let (shuffled, _) = apply(&g, Ordering::Random { seed: 4 });
        let m = Machine::knf();
        let policy = Policy::OmpDynamic { chunk: 100 };
        let speedup = |g: &mic_graph::Csr| {
            let w = instrument(g, LocalityWindows::default());
            let regions = w.regions(policy);
            let t1 = simulate(&m, 1, &regions).cycles;
            let t121 = simulate(&m, 121, &regions).cycles;
            t1 / t121
        };
        let s_nat = speedup(&g);
        let s_shf = speedup(&shuffled);
        assert!(
            s_shf > s_nat,
            "shuffled {s_shf} should out-scale natural {s_nat}"
        );
        assert!(
            s_shf > 90.0,
            "shuffled speedup should be near-linear, got {s_shf}"
        );
    }
}
