//! Color-class balancing (toward equitable colorings).
//!
//! The paper's opening application of coloring is scheduling: color
//! classes become synchronization-free parallel phases. Phases are only as
//! fast as their *largest* class, so after minimizing colors one wants the
//! classes *balanced*. This module implements the standard greedy
//! rebalancing pass: visit vertices of over-full classes and move each to
//! the smallest permissible class, never increasing the color count.

use crate::seq::Coloring;
use crate::verify::num_colors_used;
use mic_graph::{Csr, VertexId};

/// Balance statistics of a coloring.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Balance {
    pub largest: usize,
    pub smallest: usize,
    /// largest / ideal (1.0 = perfectly equitable).
    pub imbalance: f64,
}

/// Measure class balance.
pub fn class_balance(coloring: &Coloring, n: usize) -> Balance {
    let k = coloring.num_colors as usize;
    if k == 0 || n == 0 {
        return Balance {
            largest: 0,
            smallest: 0,
            imbalance: 1.0,
        };
    }
    let mut sizes = vec![0usize; k];
    for &c in &coloring.colors {
        sizes[c as usize] += 1;
    }
    let largest = sizes.iter().copied().max().unwrap();
    let smallest = sizes.iter().copied().min().unwrap();
    let ideal = n as f64 / k as f64;
    Balance {
        largest,
        smallest,
        imbalance: largest as f64 / ideal,
    }
}

/// One balancing sweep: vertices in classes above the ideal size move to
/// the smallest permissible class strictly below it. Properness and the
/// color count are preserved. Returns the number of moved vertices.
pub fn rebalance_pass(g: &Csr, coloring: &mut Coloring) -> usize {
    let n = g.num_vertices();
    let k = coloring.num_colors as usize;
    if k <= 1 || n == 0 {
        return 0;
    }
    let mut sizes = vec![0usize; k];
    for &c in &coloring.colors {
        sizes[c as usize] += 1;
    }
    let ideal = n as f64 / k as f64;
    let mut moved = 0usize;
    let mut permissible = vec![true; k];
    for v in 0..n as VertexId {
        let cv = coloring.colors[v as usize] as usize;
        if (sizes[cv] as f64) <= ideal {
            continue;
        }
        permissible.iter_mut().for_each(|p| *p = true);
        for &w in g.neighbors(v) {
            permissible[coloring.colors[w as usize] as usize] = false;
        }
        // Smallest permissible class strictly smaller than the current.
        let target = (0..k)
            .filter(|&c| c != cv && permissible[c])
            .min_by_key(|&c| sizes[c]);
        if let Some(t) = target {
            if (sizes[t] as f64) < ideal && sizes[t] + 1 < sizes[cv] {
                coloring.colors[v as usize] = t as u32;
                sizes[t] += 1;
                sizes[cv] -= 1;
                moved += 1;
            }
        }
    }
    debug_assert_eq!(num_colors_used(&coloring.colors), coloring.num_colors);
    moved
}

/// Iterate balancing sweeps until no vertex moves (or `max_passes`).
pub fn rebalance(g: &Csr, coloring: &mut Coloring, max_passes: usize) -> Balance {
    for _ in 0..max_passes {
        if rebalance_pass(g, coloring) == 0 {
            break;
        }
    }
    class_balance(coloring, g.num_vertices())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::greedy_color;
    use crate::verify::check_proper;
    use mic_graph::generators::{erdos_renyi_gnm, grid2d, Stencil2};
    use mic_graph::suite::{build, PaperGraph, Scale};

    #[test]
    fn balancing_preserves_properness_and_colors() {
        let g = erdos_renyi_gnm(800, 5000, 7);
        let mut c = greedy_color(&g);
        let k0 = c.num_colors;
        rebalance(&g, &mut c, 8);
        check_proper(&g, &c.colors).unwrap();
        assert_eq!(c.num_colors, k0);
    }

    #[test]
    fn first_fit_is_skewed_and_balancing_helps() {
        // First Fit loads low colors heavily; rebalancing must cut the
        // imbalance substantially.
        let g = build(PaperGraph::Hood, Scale::Fraction(128));
        let mut c = greedy_color(&g);
        let before = class_balance(&c, g.num_vertices());
        rebalance(&g, &mut c, 10);
        let after = class_balance(&c, g.num_vertices());
        check_proper(&g, &c.colors).unwrap();
        assert!(
            before.imbalance > 1.5,
            "FF should be skewed, got {}",
            before.imbalance
        );
        assert!(
            after.imbalance < before.imbalance * 0.8,
            "balance {} -> {}",
            before.imbalance,
            after.imbalance
        );
    }

    #[test]
    fn bipartite_grid_balances_well() {
        let g = grid2d(20, 20, Stencil2::FivePoint);
        let mut c = greedy_color(&g);
        let after = rebalance(&g, &mut c, 10);
        check_proper(&g, &c.colors).unwrap();
        // Two classes of a 400-vertex bipartite grid are already even.
        assert!(after.imbalance < 1.05, "{after:?}");
    }

    #[test]
    fn empty_and_trivial() {
        let g = Csr::empty(5);
        let mut c = greedy_color(&g);
        assert_eq!(rebalance_pass(&g, &mut c), 0);
        let b = class_balance(&c, 5);
        assert_eq!(b.largest, 5);
    }
}
