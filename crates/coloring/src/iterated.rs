//! Culberson's iterated greedy — the color-quality improver the paper
//! cites (reference \[15\]: "for some orderings of the vertices it will produce an
//! optimal coloring").
//!
//! Re-running greedy with the vertices grouped by their current color
//! classes never increases the color count; with the classes visited in a
//! good order (largest class first, or reversed) it frequently decreases
//! it. This is the classic cheap way to squeeze colors out of any initial
//! coloring, including the parallel speculative one.

use crate::seq::{greedy_color_in_order, Coloring};
use crate::verify::num_colors_used;
use mic_graph::{Csr, VertexId};

/// How to order the color classes between greedy passes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClassOrder {
    /// Classes in reverse color order (the canonical choice: colors can
    /// only stay or shrink).
    Reverse,
    /// Largest class first (tends to pack better).
    LargestFirst,
    /// Smallest class first.
    SmallestFirst,
}

/// One iterated-greedy pass: regroup vertices by color class per `order`,
/// re-run greedy in that order.
pub fn regroup_pass(g: &Csr, coloring: &Coloring, order: ClassOrder) -> Coloring {
    let k = coloring.num_colors as usize;
    if k == 0 {
        return coloring.clone();
    }
    let mut classes: Vec<Vec<VertexId>> = vec![Vec::new(); k];
    for (v, &c) in coloring.colors.iter().enumerate() {
        classes[c as usize].push(v as VertexId);
    }
    let mut idx: Vec<usize> = (0..k).collect();
    match order {
        ClassOrder::Reverse => idx.reverse(),
        ClassOrder::LargestFirst => idx.sort_by_key(|&i| std::cmp::Reverse(classes[i].len())),
        ClassOrder::SmallestFirst => idx.sort_by_key(|&i| classes[i].len()),
    }
    let visit: Vec<VertexId> = idx.into_iter().flat_map(|i| classes[i].clone()).collect();
    greedy_color_in_order(g, &visit)
}

/// Iterated greedy: alternate class orders for `iterations` passes,
/// keeping the best coloring seen. The color count is non-increasing when
/// whole classes are visited contiguously (Culberson's lemma), so the
/// result never exceeds the input.
pub fn iterated_greedy(g: &Csr, initial: &Coloring, iterations: usize) -> Coloring {
    let mut best = initial.clone();
    let mut cur = initial.clone();
    let orders = [
        ClassOrder::Reverse,
        ClassOrder::LargestFirst,
        ClassOrder::Reverse,
        ClassOrder::SmallestFirst,
    ];
    for i in 0..iterations {
        cur = regroup_pass(g, &cur, orders[i % orders.len()]);
        debug_assert_eq!(num_colors_used(&cur.colors), cur.num_colors);
        if cur.num_colors < best.num_colors {
            best = cur.clone();
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::greedy_color;
    use crate::verify::check_proper;
    use mic_graph::generators::{complete, erdos_renyi_gnm};
    use mic_graph::ordering::{apply, Ordering};
    use mic_graph::suite::{build, PaperGraph, Scale};

    #[test]
    fn passes_never_increase_colors() {
        let g = erdos_renyi_gnm(600, 6000, 4);
        let mut c = greedy_color(&g);
        for order in [
            ClassOrder::Reverse,
            ClassOrder::LargestFirst,
            ClassOrder::SmallestFirst,
        ] {
            let next = regroup_pass(&g, &c, order);
            check_proper(&g, &next.colors).unwrap();
            assert!(next.num_colors <= c.num_colors, "{order:?}");
            c = next;
        }
    }

    #[test]
    fn improves_a_bad_random_order_start() {
        // Start greedy from a shuffled order (bad), then iterate: the
        // count should recover most of the damage.
        let g = build(PaperGraph::Hood, Scale::Fraction(128));
        let natural = greedy_color(&g).num_colors;
        let (shuffled, perm) = apply(&g, Ordering::Random { seed: 3 });
        let bad_on_shuffled = greedy_color(&shuffled);
        // Map back to the original graph's labels.
        let mut colors = vec![0u32; g.num_vertices()];
        for v in 0..g.num_vertices() {
            colors[v] = bad_on_shuffled.colors[perm[v] as usize];
        }
        let bad = Coloring {
            colors,
            num_colors: bad_on_shuffled.num_colors,
        };
        check_proper(&g, &bad.colors).unwrap();
        let improved = iterated_greedy(&g, &bad, 8);
        check_proper(&g, &improved.colors).unwrap();
        assert!(improved.num_colors <= bad.num_colors);
        assert!(
            improved.num_colors as f64 <= natural as f64 * 1.15 + 1.0,
            "iterated {} vs natural {natural} (start {})",
            improved.num_colors,
            bad.num_colors
        );
    }

    #[test]
    fn complete_graph_is_already_optimal() {
        let g = complete(9);
        let c = greedy_color(&g);
        let it = iterated_greedy(&g, &c, 5);
        assert_eq!(it.num_colors, 9);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::empty(0);
        let c = greedy_color(&g);
        assert_eq!(iterated_greedy(&g, &c, 3).num_colors, 0);
    }
}
