//! DSATUR (Brélaz) — the saturation-degree sequential coloring, the
//! strongest classical greedy and the natural quality baseline for the
//! paper's First-Fit variants.
//!
//! Vertices are colored in order of *saturation degree* (number of
//! distinct colors among colored neighbors), breaking ties by degree. On
//! many structured graphs DSATUR uses strictly fewer colors than natural-
//! order First Fit; it is exact on bipartite graphs.

use crate::seq::Coloring;
use crate::UNCOLORED;
use mic_graph::{Csr, VertexId};
use std::collections::BTreeSet;

/// Color `g` with DSATUR.
pub fn dsatur(g: &Csr) -> Coloring {
    let n = g.num_vertices();
    let mut colors = vec![UNCOLORED; n];
    if n == 0 {
        return Coloring {
            colors,
            num_colors: 0,
        };
    }
    // Saturation sets: distinct neighbor colors per vertex.
    let mut saturation: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); n];
    // Ordered set of (saturation, degree, vertex) for max extraction.
    // BTreeSet gives O(log n) updates; keys must stay in sync.
    let mut queue: BTreeSet<(usize, usize, VertexId)> =
        g.vertices().map(|v| (0usize, g.degree(v), v)).collect();
    let mut forbidden: Vec<VertexId> = vec![VertexId::MAX; g.max_degree() + 2];
    let mut num_colors = 0u32;

    while let Some(&(sat, deg, v)) = queue.iter().next_back() {
        queue.remove(&(sat, deg, v));
        // Smallest color not in v's saturation set.
        for &w in g.neighbors(v) {
            let c = colors[w as usize];
            if c != UNCOLORED {
                forbidden[c as usize] = v;
            }
        }
        let mut c = 0u32;
        while forbidden[c as usize] == v {
            c += 1;
        }
        colors[v as usize] = c;
        num_colors = num_colors.max(c + 1);
        // Update uncolored neighbors' saturation.
        for &w in g.neighbors(v) {
            let wi = w as usize;
            if colors[wi] != UNCOLORED {
                continue;
            }
            if saturation[wi].insert(c) {
                let old_key = (saturation[wi].len() - 1, g.degree(w), w);
                if queue.remove(&old_key) {
                    queue.insert((saturation[wi].len(), g.degree(w), w));
                }
            }
        }
    }
    Coloring { colors, num_colors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::greedy_color;
    use crate::verify::check_proper;
    use mic_graph::generators::{
        complete, cycle, erdos_renyi_gnm, grid2d, path, star, watts_strogatz, Stencil2,
    };
    use mic_graph::ordering::{apply, Ordering};

    #[test]
    fn exact_on_bipartite() {
        // DSATUR is exact on bipartite graphs; a shuffled grid defeats
        // natural-order First Fit but not DSATUR.
        let g = grid2d(12, 12, Stencil2::FivePoint);
        let (shuffled, _) = apply(&g, Ordering::Random { seed: 5 });
        let d = dsatur(&shuffled);
        check_proper(&shuffled, &d.colors).unwrap();
        assert_eq!(d.num_colors, 2, "grid is bipartite");
        assert!(
            greedy_color(&shuffled).num_colors > 2,
            "FF should do worse here"
        );
    }

    #[test]
    fn exact_on_even_cycles_and_paths() {
        assert_eq!(dsatur(&cycle(10)).num_colors, 2);
        assert_eq!(dsatur(&cycle(11)).num_colors, 3);
        assert_eq!(dsatur(&path(9)).num_colors, 2);
        assert_eq!(dsatur(&star(20)).num_colors, 2);
    }

    #[test]
    fn complete_graph() {
        let d = dsatur(&complete(7));
        assert_eq!(d.num_colors, 7);
    }

    #[test]
    fn never_worse_bound_and_valid_on_random() {
        for seed in 0..4 {
            let g = erdos_renyi_gnm(500, 3000, seed);
            let d = dsatur(&g);
            check_proper(&g, &d.colors).unwrap();
            assert!(d.num_colors as usize <= g.max_degree() + 1);
        }
    }

    #[test]
    fn usually_at_most_first_fit_on_small_world() {
        let g = watts_strogatz(800, 3, 0.1, 4);
        let d = dsatur(&g).num_colors;
        let ff = greedy_color(&g).num_colors;
        assert!(d <= ff + 1, "DSATUR {d} vs FF {ff}");
        check_proper(&g, &dsatur(&g).colors).unwrap();
    }

    #[test]
    fn empty() {
        assert_eq!(dsatur(&Csr::empty(0)).num_colors, 0);
        assert_eq!(dsatur(&Csr::empty(3)).num_colors, 1);
    }
}
