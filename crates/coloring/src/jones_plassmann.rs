//! Jones–Plassmann parallel coloring — the classic alternative to the
//! paper's speculate-and-repair scheme, included as a baseline.
//!
//! Every vertex draws a random priority; in each round, the vertices that
//! are local priority maxima among their *uncolored* neighbors color
//! themselves. Two adjacent vertices can never color in the same round, so
//! the algorithm needs no conflict detection and — unlike speculation —
//! produces the *same* coloring for every thread count and runtime model
//! (a property the tests pin down). The price is more rounds: O(log n)
//! expected for bounded-degree graphs versus the speculative algorithm's
//! typical 2–3.

use crate::{verify, UNCOLORED};
use mic_graph::{Csr, VertexId};
use mic_runtime::{ConcurrentPushVec, RuntimeModel, ThreadPool};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU32, Ordering};

/// Outcome of a Jones–Plassmann run.
#[derive(Clone, Debug)]
pub struct JpColoring {
    pub colors: Vec<u32>,
    pub num_colors: u32,
    pub rounds: usize,
}

/// Color `g` with random priorities drawn from `seed`.
pub fn jones_plassmann(pool: &ThreadPool, g: &Csr, model: RuntimeModel, seed: u64) -> JpColoring {
    let n = g.num_vertices();
    // Random total order: priority[v] = rank of v in a shuffled sequence.
    let mut order: Vec<VertexId> = (0..n as VertexId).collect();
    order.shuffle(&mut StdRng::seed_from_u64(seed));
    let mut priority = vec![0u32; n];
    for (rank, &v) in order.iter().enumerate() {
        priority[v as usize] = rank as u32;
    }

    let colors: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNCOLORED)).collect();
    // Round in which each vertex was colored. All visibility decisions go
    // through this: a vertex colored in the *current* round is treated as
    // still uncolored by everyone else, so every round works against the
    // deterministic round-start snapshot (otherwise the result would
    // depend on intra-round timing).
    let round_of: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(u32::MAX)).collect();
    let mut active: Vec<VertexId> = (0..n as VertexId).collect();
    let mut rounds = 0u32;

    while !active.is_empty() {
        rounds += 1;
        let next = ConcurrentPushVec::new(active.len());
        {
            let r = rounds;
            let active_ref = &active;
            let colors_ref = &colors;
            let round_ref = &round_of;
            let priority_ref = &priority;
            let next_ref = &next;
            model.drive(pool, active_ref.len(), |chunk, _ctx| {
                // Forbidden-color scratch, stamped per vertex: allocated
                // per chunk since degree-bounded and cheap.
                let mut forbidden: Vec<VertexId> = Vec::new();
                for idx in chunk {
                    let v = active_ref[idx];
                    let pv = priority_ref[v as usize];
                    let colored_before =
                        |w: VertexId| round_ref[w as usize].load(Ordering::Relaxed) < r;
                    let mut is_max = true;
                    for &w in g.neighbors(v) {
                        if !colored_before(w) && priority_ref[w as usize] > pv {
                            is_max = false;
                            break;
                        }
                    }
                    if !is_max {
                        next_ref.push(v);
                        continue;
                    }
                    // Local max in the snapshot: no neighbor colors this
                    // round, and only snapshot colors enter the forbidden
                    // set, so the choice is deterministic.
                    if forbidden.len() < g.degree(v) + 2 {
                        forbidden.resize(g.degree(v) + 2, VertexId::MAX);
                    }
                    for &w in g.neighbors(v) {
                        if colored_before(w) {
                            let c = colors_ref[w as usize].load(Ordering::Relaxed) as usize;
                            // Neighbors may carry colors above deg(v)+1
                            // (their own degrees are larger); those can
                            // never block v's first-fit slot, so skip.
                            if c < forbidden.len() {
                                forbidden[c] = v;
                            }
                        }
                    }
                    let mut c = 0u32;
                    while forbidden[c as usize] == v {
                        c += 1;
                    }
                    colors_ref[v as usize].store(c, Ordering::Relaxed);
                    round_ref[v as usize].store(r, Ordering::Relaxed);
                }
            });
        }
        let mut next = next;
        active = next.drain();
    }
    let rounds = rounds as usize;

    let colors: Vec<u32> = colors.into_iter().map(|c| c.into_inner()).collect();
    let num_colors = verify::num_colors_used(&colors);
    JpColoring {
        colors,
        num_colors,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::greedy_color;
    use crate::verify::check_proper;
    use mic_graph::generators::{complete, erdos_renyi_gnm, grid2d, path, star, Stencil2};
    use mic_runtime::{Partitioner, Schedule};

    #[test]
    fn proper_on_random_graphs() {
        let pool = ThreadPool::new(4);
        for seed in 0..3 {
            let g = erdos_renyi_gnm(1500, 8000, seed);
            let r = jones_plassmann(&pool, &g, RuntimeModel::OpenMp(Schedule::dynamic100()), 42);
            check_proper(&g, &r.colors).unwrap();
            assert!(r.num_colors as usize <= g.max_degree() + 1);
        }
    }

    #[test]
    fn deterministic_across_threads_and_models() {
        let g = erdos_renyi_gnm(1200, 6000, 9);
        let reference = {
            let pool = ThreadPool::new(1);
            jones_plassmann(&pool, &g, RuntimeModel::OpenMp(Schedule::dynamic100()), 7).colors
        };
        for t in [2usize, 4, 8] {
            let pool = ThreadPool::new(t);
            for model in [
                RuntimeModel::OpenMp(Schedule::Static { chunk: Some(13) }),
                RuntimeModel::CilkHolder { grain: 50 },
                RuntimeModel::Tbb(Partitioner::Auto),
            ] {
                let r = jones_plassmann(&pool, &g, model, 7);
                assert_eq!(r.colors, reference, "{model:?} t={t} must be deterministic");
            }
        }
    }

    #[test]
    fn different_seeds_may_differ_but_stay_proper() {
        let pool = ThreadPool::new(4);
        let g = grid2d(30, 30, Stencil2::NinePoint);
        let a = jones_plassmann(&pool, &g, RuntimeModel::CilkHolder { grain: 32 }, 1);
        let b = jones_plassmann(&pool, &g, RuntimeModel::CilkHolder { grain: 32 }, 2);
        check_proper(&g, &a.colors).unwrap();
        check_proper(&g, &b.colors).unwrap();
    }

    #[test]
    fn special_graphs() {
        let pool = ThreadPool::new(4);
        let m = RuntimeModel::OpenMp(Schedule::dynamic100());
        let g = complete(10);
        assert_eq!(jones_plassmann(&pool, &g, m, 3).num_colors, 10);
        let g = star(64);
        assert!(jones_plassmann(&pool, &g, m, 3).num_colors <= 2);
        let g = path(100);
        assert!(jones_plassmann(&pool, &g, m, 3).num_colors <= 3);
    }

    #[test]
    fn round_count_reasonable() {
        // O(log n) expected rounds for bounded degree.
        let pool = ThreadPool::new(8);
        let g = grid2d(60, 60, Stencil2::FivePoint);
        let r = jones_plassmann(
            &pool,
            &g,
            RuntimeModel::Tbb(Partitioner::Simple { grain: 64 }),
            5,
        );
        assert!(r.rounds < 60, "rounds {}", r.rounds);
        check_proper(&g, &r.colors).unwrap();
    }

    #[test]
    fn quality_comparable_to_greedy() {
        let pool = ThreadPool::new(4);
        let g = erdos_renyi_gnm(2000, 12_000, 4);
        let jp = jones_plassmann(&pool, &g, RuntimeModel::OpenMp(Schedule::dynamic100()), 11);
        let gr = greedy_color(&g);
        assert!(
            (jp.num_colors as f64) <= 1.6 * gr.num_colors as f64 + 2.0,
            "JP {} vs greedy {}",
            jp.num_colors,
            gr.num_colors
        );
    }

    #[test]
    fn empty_graph() {
        let pool = ThreadPool::new(2);
        let r = jones_plassmann(
            &pool,
            &Csr::empty(0),
            RuntimeModel::OpenMp(Schedule::dynamic100()),
            0,
        );
        assert_eq!(r.num_colors, 0);
        assert_eq!(r.rounds, 0);
    }
}
