//! Luby's maximal independent set — the randomized primitive underneath
//! Jones–Plassmann (a JP round *is* a Luby round whose winners get colors)
//! and the classic way to parallelize the "independent set" view of
//! coloring the paper's introduction describes (color classes are exactly
//! independent sets).

use mic_graph::{Csr, VertexId};
use mic_runtime::{ConcurrentPushVec, RuntimeModel, ThreadPool};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU8, Ordering};

const UNDECIDED: u8 = 0;
const IN_SET: u8 = 1;
const OUT: u8 = 2;

/// Result of a MIS computation.
#[derive(Clone, Debug)]
pub struct Mis {
    /// Membership per vertex.
    pub in_set: Vec<bool>,
    pub rounds: usize,
}

/// Luby's algorithm with a fixed random priority permutation (Blelloch's
/// deterministic-parallel variant): in each round, every undecided vertex
/// whose priority beats all undecided neighbors joins the set and knocks
/// its neighbors out. Deterministic for a given seed, any thread count.
///
/// ```
/// use mic_coloring::mis::{check_mis, luby_mis};
/// use mic_graph::generators::cycle;
/// use mic_runtime::{RuntimeModel, Schedule, ThreadPool};
/// let g = cycle(12);
/// let pool = ThreadPool::new(4);
/// let mis = luby_mis(&pool, &g, RuntimeModel::OpenMp(Schedule::dynamic100()), 1);
/// assert!(check_mis(&g, &mis.in_set));
/// ```
pub fn luby_mis(pool: &ThreadPool, g: &Csr, model: RuntimeModel, seed: u64) -> Mis {
    let n = g.num_vertices();
    let mut order: Vec<VertexId> = (0..n as VertexId).collect();
    order.shuffle(&mut StdRng::seed_from_u64(seed));
    let mut priority = vec![0u32; n];
    for (rank, &v) in order.iter().enumerate() {
        priority[v as usize] = rank as u32;
    }

    let state: Vec<AtomicU8> = (0..n).map(|_| AtomicU8::new(UNDECIDED)).collect();
    let mut active: Vec<VertexId> = (0..n as VertexId).collect();
    let mut rounds = 0usize;

    while !active.is_empty() {
        rounds += 1;
        // Phase 1: local-max vertices join the set. Only UNDECIDED
        // neighbors compete, judged against the round-start state — but
        // since state only moves UNDECIDED -> {IN_SET, OUT} and a vertex
        // that becomes IN_SET/OUT this round cannot also be a competing
        // local max (priorities are a total order), the phase is
        // deterministic without a snapshot.
        let winners = ConcurrentPushVec::new(active.len());
        {
            let active_ref = &active;
            let state_ref = &state;
            let priority_ref = &priority;
            let winners_ref = &winners;
            model.drive(pool, active_ref.len(), |chunk, _| {
                for i in chunk {
                    let v = active_ref[i];
                    if state_ref[v as usize].load(Ordering::Relaxed) != UNDECIDED {
                        continue;
                    }
                    let pv = priority_ref[v as usize];
                    let wins = g.neighbors(v).iter().all(|&w| {
                        state_ref[w as usize].load(Ordering::Relaxed) == OUT
                            || priority_ref[w as usize] < pv
                    });
                    if wins {
                        state_ref[v as usize].store(IN_SET, Ordering::Relaxed);
                        winners_ref.push(v);
                    }
                }
            });
        }
        // Phase 2: winners knock out their neighbors.
        let mut winners = winners;
        let winners = winners.drain();
        {
            let state_ref = &state;
            let winners_ref = &winners;
            model.drive(pool, winners_ref.len(), |chunk, _| {
                for i in chunk {
                    for &w in g.neighbors(winners_ref[i]) {
                        state_ref[w as usize].store(OUT, Ordering::Relaxed);
                    }
                }
            });
        }
        active.retain(|&v| state[v as usize].load(Ordering::Relaxed) == UNDECIDED);
    }

    let in_set = state
        .into_iter()
        .map(|s| s.into_inner() == IN_SET)
        .collect();
    Mis { in_set, rounds }
}

/// Check maximal independence: no two set members adjacent, and every
/// non-member has a member neighbor.
pub fn check_mis(g: &Csr, in_set: &[bool]) -> bool {
    assert_eq!(in_set.len(), g.num_vertices());
    for v in g.vertices() {
        if in_set[v as usize] {
            if g.neighbors(v).iter().any(|&w| in_set[w as usize]) {
                return false; // not independent
            }
        } else if !g.neighbors(v).iter().any(|&w| in_set[w as usize]) {
            return false; // not maximal
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use mic_graph::generators::{complete, erdos_renyi_gnm, grid2d, path, star, Stencil2};
    use mic_runtime::{Partitioner, Schedule};

    #[test]
    fn valid_on_random_graphs_all_models() {
        let pool = ThreadPool::new(6);
        let g = erdos_renyi_gnm(1500, 7000, 3);
        for model in [
            RuntimeModel::OpenMp(Schedule::Dynamic { chunk: 32 }),
            RuntimeModel::CilkHolder { grain: 32 },
            RuntimeModel::Tbb(Partitioner::Simple { grain: 32 }),
        ] {
            let m = luby_mis(&pool, &g, model, 7);
            assert!(check_mis(&g, &m.in_set), "{model:?}");
        }
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let g = erdos_renyi_gnm(1000, 5000, 9);
        let want = {
            let pool = ThreadPool::new(1);
            luby_mis(&pool, &g, RuntimeModel::OpenMp(Schedule::dynamic100()), 5).in_set
        };
        for t in [2usize, 5, 8] {
            let pool = ThreadPool::new(t);
            let got = luby_mis(&pool, &g, RuntimeModel::CilkHolder { grain: 17 }, 5).in_set;
            assert_eq!(got, want, "t = {t}");
        }
    }

    #[test]
    fn special_graphs() {
        let pool = ThreadPool::new(4);
        let m = RuntimeModel::OpenMp(Schedule::dynamic100());
        // Complete graph: exactly one vertex.
        let mis = luby_mis(&pool, &complete(10), m, 1);
        assert_eq!(mis.in_set.iter().filter(|&&x| x).count(), 1);
        // Star: either the hub alone or all the leaves.
        let g = star(30);
        let mis = luby_mis(&pool, &g, m, 1);
        assert!(check_mis(&g, &mis.in_set));
        // Path: valid MIS (size between n/3 and n/2 + 1).
        let g = path(30);
        let mis = luby_mis(&pool, &g, m, 1);
        assert!(check_mis(&g, &mis.in_set));
        let k = mis.in_set.iter().filter(|&&x| x).count();
        assert!((10..=16).contains(&k), "path MIS size {k}");
    }

    #[test]
    fn grid_rounds_logarithmic() {
        let pool = ThreadPool::new(8);
        let g = grid2d(50, 50, Stencil2::NinePoint);
        let m = luby_mis(&pool, &g, RuntimeModel::OpenMp(Schedule::dynamic100()), 3);
        assert!(check_mis(&g, &m.in_set));
        assert!(m.rounds < 40, "rounds {}", m.rounds);
    }

    #[test]
    fn empty_and_edgeless() {
        let pool = ThreadPool::new(2);
        let m = RuntimeModel::OpenMp(Schedule::dynamic100());
        let mis = luby_mis(&pool, &Csr::empty(5), m, 0);
        assert!(mis.in_set.iter().all(|&x| x), "isolated vertices all join");
        let mis = luby_mis(&pool, &Csr::empty(0), m, 0);
        assert!(mis.in_set.is_empty());
    }
}
