//! Sequential greedy First-Fit coloring (Algorithm 1 of the paper).

use crate::UNCOLORED;
use mic_graph::{Csr, VertexId};

/// A coloring: `colors[v]` is 0-based; `num_colors` = max + 1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Coloring {
    pub colors: Vec<u32>,
    pub num_colors: u32,
}

/// Greedy First-Fit in the given visit `order` (a sequence of all vertex
/// ids). For any order this uses at most Δ + 1 colors; for some orders it
/// is optimal (the properties the paper cites).
///
/// The `forbidden` array is stamped with the current vertex id instead of
/// being cleared per vertex — the same trick as the paper's
/// `forbiddenColors[color[w]] ← v`.
pub fn greedy_color_in_order(g: &Csr, order: &[VertexId]) -> Coloring {
    let n = g.num_vertices();
    assert_eq!(order.len(), n, "order must visit every vertex once");
    let mut colors = vec![UNCOLORED; n];
    // At most Δ + 1 colors ever needed; + 1 slot to find a free color.
    let mut forbidden = vec![VertexId::MAX; g.max_degree() + 2];
    let mut num_colors = 0u32;
    for &v in order {
        for &w in g.neighbors(v) {
            let c = colors[w as usize];
            if c != UNCOLORED {
                forbidden[c as usize] = v;
            }
        }
        let mut c = 0u32;
        while forbidden[c as usize] == v {
            c += 1;
        }
        colors[v as usize] = c;
        num_colors = num_colors.max(c + 1);
    }
    Coloring { colors, num_colors }
}

/// Greedy First-Fit in natural vertex order — the configuration whose
/// color counts Table I reports.
pub fn greedy_color(g: &Csr) -> Coloring {
    let order: Vec<VertexId> = (0..g.num_vertices() as VertexId).collect();
    greedy_color_in_order(g, &order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_proper;
    use mic_graph::generators::{complete, cycle, erdos_renyi_gnm, path, star};

    #[test]
    fn path_uses_two_colors() {
        let g = path(10);
        let c = greedy_color(&g);
        assert_eq!(c.num_colors, 2);
        check_proper(&g, &c.colors).unwrap();
    }

    #[test]
    fn even_cycle_two_odd_cycle_three() {
        let c = greedy_color(&cycle(8));
        assert_eq!(c.num_colors, 2);
        let c = greedy_color(&cycle(9));
        assert_eq!(c.num_colors, 3);
    }

    #[test]
    fn star_uses_two() {
        let c = greedy_color(&star(100));
        assert_eq!(c.num_colors, 2);
    }

    #[test]
    fn complete_uses_n() {
        let g = complete(7);
        let c = greedy_color(&g);
        assert_eq!(c.num_colors, 7);
        check_proper(&g, &c.colors).unwrap();
    }

    #[test]
    fn random_graph_within_delta_plus_one() {
        let g = erdos_renyi_gnm(500, 3000, 17);
        let c = greedy_color(&g);
        assert!(c.num_colors as usize <= g.max_degree() + 1);
        check_proper(&g, &c.colors).unwrap();
    }

    #[test]
    fn reverse_order_still_proper() {
        let g = erdos_renyi_gnm(200, 800, 5);
        let order: Vec<u32> = (0..200u32).rev().collect();
        let c = greedy_color_in_order(&g, &order);
        check_proper(&g, &c.colors).unwrap();
    }

    #[test]
    fn empty_and_edgeless() {
        let c = greedy_color(&Csr::empty(0));
        assert_eq!(c.num_colors, 0);
        let c = greedy_color(&Csr::empty(5));
        assert_eq!(c.num_colors, 1);
        assert!(c.colors.iter().all(|&x| x == 0));
    }
}
