//! Greedy distance-2 coloring.
//!
//! The paper motivates distance-2 coloring as the variant "with many
//! applications including ... the compression of Jacobian and Hessian
//! matrices for sparse linear algebra". Its experiments stop at distance-1;
//! we include the sequential distance-2 kernel as the natural extension.

use crate::seq::Coloring;
use crate::UNCOLORED;
use mic_graph::{Csr, VertexId};

/// Greedy First-Fit distance-2 coloring in natural order: no two vertices
/// within distance two share a color, i.e. the coloring is proper on the
/// square graph G².
pub fn greedy_distance2(g: &Csr) -> Coloring {
    let n = g.num_vertices();
    let mut colors = vec![UNCOLORED; n];
    // Colors needed are bounded by Δ² + 1; allocate lazily by growing.
    let mut forbidden: Vec<VertexId> = vec![VertexId::MAX; g.max_degree() + 2];
    let mut num_colors = 0u32;
    for v in 0..n as VertexId {
        for &w in g.neighbors(v) {
            let cw = colors[w as usize];
            if cw != UNCOLORED {
                grow_stamp(&mut forbidden, cw, v);
            }
            for &x in g.neighbors(w) {
                if x == v {
                    continue;
                }
                let cx = colors[x as usize];
                if cx != UNCOLORED {
                    grow_stamp(&mut forbidden, cx, v);
                }
            }
        }
        let mut c = 0u32;
        while (c as usize) < forbidden.len() && forbidden[c as usize] == v {
            c += 1;
        }
        colors[v as usize] = c;
        num_colors = num_colors.max(c + 1);
    }
    Coloring { colors, num_colors }
}

fn grow_stamp(forbidden: &mut Vec<VertexId>, color: u32, stamp: VertexId) {
    let idx = color as usize;
    if idx >= forbidden.len() {
        forbidden.resize(idx + 2, VertexId::MAX);
    }
    forbidden[idx] = stamp;
}

/// Check that `colors` is a proper distance-2 coloring.
pub fn check_distance2(g: &Csr, colors: &[u32]) -> Result<(), (VertexId, VertexId)> {
    assert_eq!(colors.len(), g.num_vertices());
    for v in g.vertices() {
        for &w in g.neighbors(v) {
            if v < w && colors[v as usize] == colors[w as usize] {
                return Err((v, w));
            }
            for &x in g.neighbors(w) {
                if x != v && v < x && colors[v as usize] == colors[x as usize] {
                    return Err((v, x));
                }
            }
        }
    }
    Ok(())
}

/// Parallel iterative speculative distance-2 coloring: the same
/// speculate-and-repair structure as Algorithms 2–4, with the forbidden
/// set and the conflict check ranging over the 2-hop neighborhood (the
/// extension Gebremedhin–Manne–Pothen describe for Jacobian compression).
pub fn iterative_coloring_d2(
    pool: &mic_runtime::ThreadPool,
    g: &Csr,
    model: mic_runtime::RuntimeModel,
) -> crate::parallel::ParallelColoring {
    use mic_runtime::{ConcurrentPushVec, PerWorker};
    use std::sync::atomic::{AtomicU32, Ordering};

    let n = g.num_vertices();
    let t = pool.num_threads();
    let colors: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNCOLORED)).collect();
    // Distance-2 degree can reach Δ²; allocate lazily per worker.
    let local_fc: PerWorker<Vec<VertexId>> = PerWorker::new(t, |_| Vec::new());

    let mut visit: Vec<VertexId> = (0..n as VertexId).collect();
    let mut rounds = 0usize;
    let mut conflicts_per_round = Vec::new();
    const MAX_ROUNDS: usize = 64;

    while !visit.is_empty() && rounds < MAX_ROUNDS {
        rounds += 1;
        // Tentative d2 coloring.
        {
            let visit_ref = &visit;
            let colors_ref = &colors;
            let fc_ref = &local_fc;
            model.drive(pool, visit_ref.len(), |chunk, ctx| {
                fc_ref.with(ctx, |fc| {
                    for idx in chunk {
                        let v = visit_ref[idx];
                        let stamp = |c: u32, fc: &mut Vec<VertexId>| {
                            let i = c as usize;
                            if i >= fc.len() {
                                fc.resize(i + 2, VertexId::MAX);
                            }
                            fc[i] = v;
                        };
                        for &w in g.neighbors(v) {
                            let cw = colors_ref[w as usize].load(Ordering::Relaxed);
                            if cw != UNCOLORED {
                                stamp(cw, fc);
                            }
                            for &x in g.neighbors(w) {
                                if x == v {
                                    continue;
                                }
                                let cx = colors_ref[x as usize].load(Ordering::Relaxed);
                                if cx != UNCOLORED {
                                    stamp(cx, fc);
                                }
                            }
                        }
                        let mut c = 0u32;
                        while (c as usize) < fc.len() && fc[c as usize] == v {
                            c += 1;
                        }
                        colors_ref[v as usize].store(c, Ordering::Relaxed);
                    }
                });
            });
        }
        // Detect distance-2 conflicts; the lower id recolors.
        let conflicts = ConcurrentPushVec::new(visit.len());
        {
            let visit_ref = &visit;
            let colors_ref = &colors;
            let conflicts_ref = &conflicts;
            model.drive(pool, visit_ref.len(), |chunk, _| {
                'vertex: for idx in chunk {
                    let v = visit_ref[idx];
                    let cv = colors_ref[v as usize].load(Ordering::Relaxed);
                    for &w in g.neighbors(v) {
                        if v < w && cv == colors_ref[w as usize].load(Ordering::Relaxed) {
                            conflicts_ref.push(v);
                            continue 'vertex;
                        }
                        for &x in g.neighbors(w) {
                            if x != v
                                && v < x
                                && cv == colors_ref[x as usize].load(Ordering::Relaxed)
                            {
                                conflicts_ref.push(v);
                                continue 'vertex;
                            }
                        }
                    }
                }
            });
        }
        let mut conflicts = conflicts;
        visit = conflicts.drain();
        conflicts_per_round.push(visit.len());
    }

    let mut colors: Vec<u32> = colors.into_iter().map(|c| c.into_inner()).collect();
    if !visit.is_empty() {
        // Sequential fallback (termination guarantee, practically unused).
        let mut forbidden: Vec<VertexId> = Vec::new();
        for &v in &visit {
            forbidden.clear();
            let stamp = |c: u32, fb: &mut Vec<VertexId>| {
                let i = c as usize;
                if i >= fb.len() {
                    fb.resize(i + 2, VertexId::MAX);
                }
                fb[i] = v;
            };
            for &w in g.neighbors(v) {
                if colors[w as usize] != UNCOLORED {
                    stamp(colors[w as usize], &mut forbidden);
                }
                for &x in g.neighbors(w) {
                    if x != v && colors[x as usize] != UNCOLORED {
                        stamp(colors[x as usize], &mut forbidden);
                    }
                }
            }
            let mut c = 0u32;
            while (c as usize) < forbidden.len() && forbidden[c as usize] == v {
                c += 1;
            }
            colors[v as usize] = c;
        }
        conflicts_per_round.push(0);
    }

    let num_colors = crate::verify::num_colors_used(&colors);
    crate::parallel::ParallelColoring {
        colors,
        num_colors,
        rounds,
        conflicts_per_round,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mic_graph::generators::{erdos_renyi_gnm, grid2d, path, star, Stencil2};

    #[test]
    fn path_needs_three() {
        // On a path, vertices at distance two share a neighbor: 3 colors.
        let c = greedy_distance2(&path(10));
        assert_eq!(c.num_colors, 3);
        check_distance2(&path(10), &c.colors).unwrap();
    }

    #[test]
    fn star_needs_n() {
        // All leaves are pairwise at distance 2 through the hub.
        let g = star(7);
        let c = greedy_distance2(&g);
        assert_eq!(c.num_colors, 7);
        check_distance2(&g, &c.colors).unwrap();
    }

    #[test]
    fn grid_is_valid_and_bounded() {
        let g = grid2d(15, 15, Stencil2::FivePoint);
        let c = greedy_distance2(&g);
        check_distance2(&g, &c.colors).unwrap();
        // Δ = 4, so at most Δ² + 1 = 17 colors.
        assert!(c.num_colors <= 17);
        // ... and strictly more than distance-1 needs.
        assert!(c.num_colors > 2);
    }

    #[test]
    fn random_graph_valid() {
        let g = erdos_renyi_gnm(300, 900, 21);
        let c = greedy_distance2(&g);
        check_distance2(&g, &c.colors).unwrap();
    }

    #[test]
    fn checker_rejects_distance2_conflict() {
        let g = path(3); // 0-1-2: 0 and 2 at distance 2
        assert_eq!(check_distance2(&g, &[0, 1, 0]), Err((0, 2)));
    }

    #[test]
    fn parallel_d2_valid_on_random_graphs() {
        use mic_runtime::{Partitioner, RuntimeModel, Schedule, ThreadPool};
        let pool = ThreadPool::new(6);
        for model in [
            RuntimeModel::OpenMp(Schedule::Dynamic { chunk: 16 }),
            RuntimeModel::CilkHolder { grain: 16 },
            RuntimeModel::Tbb(Partitioner::Simple { grain: 16 }),
        ] {
            let g = erdos_renyi_gnm(600, 1800, 13);
            let r = iterative_coloring_d2(&pool, &g, model);
            check_distance2(&g, &r.colors).unwrap_or_else(|e| panic!("{model:?}: {e:?}"));
            assert_eq!(*r.conflicts_per_round.last().unwrap(), 0);
        }
    }

    #[test]
    fn parallel_d2_matches_star_lower_bound() {
        use mic_runtime::{RuntimeModel, Schedule, ThreadPool};
        let pool = ThreadPool::new(4);
        let g = star(9);
        let r = iterative_coloring_d2(
            &pool,
            &g,
            RuntimeModel::OpenMp(Schedule::Dynamic { chunk: 2 }),
        );
        check_distance2(&g, &r.colors).unwrap();
        assert_eq!(r.num_colors, 9); // hub + 8 mutually-d2 leaves
    }

    #[test]
    fn parallel_d2_quality_near_sequential() {
        use mic_runtime::{RuntimeModel, Schedule, ThreadPool};
        let pool = ThreadPool::new(8);
        let g = grid2d(25, 25, Stencil2::FivePoint);
        let seq = greedy_distance2(&g).num_colors;
        let par = iterative_coloring_d2(
            &pool,
            &g,
            RuntimeModel::OpenMp(Schedule::Dynamic { chunk: 8 }),
        )
        .num_colors;
        assert!(par <= seq + 4, "parallel d2 used {par} vs sequential {seq}");
    }
}
