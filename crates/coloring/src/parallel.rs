//! Parallel iterative speculative coloring (Algorithms 2–4 of the paper)
//! under all three programming models.

use crate::{verify, UNCOLORED};
use mic_graph::{Csr, VertexId};
use mic_runtime::{ConcurrentPushVec, PerWorker, ReducerMax, ThreadPool};
use std::sync::atomic::{AtomicU32, Ordering};

pub use mic_runtime::RuntimeModel;

/// Outcome of the iterative parallel coloring.
#[derive(Clone, Debug)]
pub struct ParallelColoring {
    /// Final proper coloring (0-based).
    pub colors: Vec<u32>,
    /// Number of colors used.
    pub num_colors: u32,
    /// Rounds executed (1 = no conflicts at all).
    pub rounds: usize,
    /// Conflict count after each round (last entry is 0).
    pub conflicts_per_round: Vec<usize>,
}

/// Rounds after which we give up on speculation and finish sequentially.
/// Expected rounds are 2–3; this is a termination guarantee, not a tuning
/// knob.
const MAX_ROUNDS: usize = 64;

/// Algorithms 2–4: speculative tentative coloring + conflict detection,
/// iterated until conflict-free.
///
/// ```
/// use mic_coloring::{check_proper, iterative_coloring, RuntimeModel};
/// use mic_graph::generators::{grid2d, Stencil2};
/// use mic_runtime::{Schedule, ThreadPool};
/// let g = grid2d(20, 20, Stencil2::NinePoint);
/// let pool = ThreadPool::new(4);
/// let r = iterative_coloring(&pool, &g, RuntimeModel::OpenMp(Schedule::dynamic100()));
/// check_proper(&g, &r.colors).unwrap();
/// assert!(r.num_colors <= 9); // Δ + 1 for the 9-point stencil
/// ```
pub fn iterative_coloring(pool: &ThreadPool, g: &Csr, model: RuntimeModel) -> ParallelColoring {
    iterative_coloring_traced(pool, g, model).0
}

/// Like [`iterative_coloring`], but also returns the visit set of every
/// round (round 1 = all vertices, then the conflict sets). The trace feeds
/// the simulator's replay-fidelity instrumentation
/// (`crate::instrument::instrument_rounds`).
pub fn iterative_coloring_traced(
    pool: &ThreadPool,
    g: &Csr,
    model: RuntimeModel,
) -> (ParallelColoring, Vec<Vec<VertexId>>) {
    let n = g.num_vertices();
    let t = pool.num_threads();
    let colors: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNCOLORED)).collect();
    let fc_len = g.max_degree() + 2;
    let mut local_fc: PerWorker<Vec<VertexId>> =
        PerWorker::new(t, move |_| vec![VertexId::MAX; fc_len]);
    if model.eager_tls() {
        local_fc.init_all();
    }

    let mut visit: Vec<VertexId> = (0..n as VertexId).collect();
    let mut rounds = 0usize;
    let mut conflicts_per_round = Vec::new();
    let mut max_color = ReducerMax::new(t, 0u32);

    let mut round_visits: Vec<Vec<VertexId>> = Vec::new();
    while !visit.is_empty() && rounds < MAX_ROUNDS {
        rounds += 1;
        round_visits.push(visit.clone());
        // --- Algorithm 3: ParTentativeColoring ------------------------
        {
            let visit_ref = &visit;
            let colors_ref = &colors;
            let fc_ref = &local_fc;
            let mc_ref = &max_color;
            model.drive(pool, visit_ref.len(), |chunk, ctx| {
                fc_ref.with(ctx, |fc| {
                    let mut local_mc = 0u32;
                    for idx in chunk {
                        let v = visit_ref[idx];
                        for &w in g.neighbors(v) {
                            let c = colors_ref[w as usize].load(Ordering::Relaxed);
                            if c != UNCOLORED {
                                fc[c as usize] = v;
                            }
                        }
                        let mut c = 0u32;
                        while fc[c as usize] == v {
                            c += 1;
                        }
                        colors_ref[v as usize].store(c, Ordering::Relaxed);
                        local_mc = local_mc.max(c + 1);
                    }
                    mc_ref.update(ctx, local_mc);
                });
            });
        }
        // --- Algorithm 4: ParDetectConflict ---------------------------
        let conflicts = ConcurrentPushVec::new(visit.len());
        {
            let visit_ref = &visit;
            let colors_ref = &colors;
            let conflicts_ref = &conflicts;
            model.drive(pool, visit_ref.len(), |chunk, _ctx| {
                for idx in chunk {
                    let v = visit_ref[idx];
                    let cv = colors_ref[v as usize].load(Ordering::Relaxed);
                    for &w in g.neighbors(v) {
                        if cv == colors_ref[w as usize].load(Ordering::Relaxed) && v < w {
                            conflicts_ref.push(v);
                            break;
                        }
                    }
                }
            });
        }
        let mut conflicts = conflicts;
        visit = conflicts.drain();
        conflicts_per_round.push(visit.len());
    }

    let mut colors: Vec<u32> = colors.into_iter().map(|c| c.into_inner()).collect();

    // Termination fallback: finish any stragglers sequentially (practically
    // unreachable; see MAX_ROUNDS).
    if !visit.is_empty() {
        let mut forbidden = vec![VertexId::MAX; fc_len];
        for &v in &visit {
            for &w in g.neighbors(v) {
                let c = colors[w as usize];
                if c != UNCOLORED && w != v {
                    forbidden[c as usize] = v;
                }
            }
            let mut c = 0u32;
            while forbidden[c as usize] == v {
                c += 1;
            }
            colors[v as usize] = c;
        }
        conflicts_per_round.push(0);
    }

    let num_colors = verify::num_colors_used(&colors).max(max_color.get());
    (
        ParallelColoring {
            colors,
            num_colors,
            rounds,
            conflicts_per_round,
        },
        round_visits,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::greedy_color;
    use crate::verify::check_proper;
    use mic_graph::generators::{
        complete, erdos_renyi_gnm, grid2d, path, rgg3d_with_avg_degree, Box3, Stencil2,
    };
    use mic_runtime::{Partitioner, Schedule};

    fn models() -> Vec<RuntimeModel> {
        vec![
            RuntimeModel::OpenMp(Schedule::Static { chunk: None }),
            RuntimeModel::OpenMp(Schedule::Static { chunk: Some(40) }),
            RuntimeModel::OpenMp(Schedule::Dynamic { chunk: 100 }),
            RuntimeModel::OpenMp(Schedule::Guided { min_chunk: 10 }),
            RuntimeModel::CilkHolder { grain: 64 },
            RuntimeModel::CilkWorkerId { grain: 64 },
            RuntimeModel::Tbb(Partitioner::Simple { grain: 40 }),
            RuntimeModel::Tbb(Partitioner::Auto),
            RuntimeModel::Tbb(Partitioner::Affinity),
        ]
    }

    #[test]
    fn all_models_produce_proper_colorings() {
        let pool = ThreadPool::new(4);
        let g = erdos_renyi_gnm(2000, 10_000, 3);
        for model in models() {
            let r = iterative_coloring(&pool, &g, model);
            check_proper(&g, &r.colors).unwrap_or_else(|e| panic!("{model:?}: {e}"));
            assert!(r.num_colors as usize <= g.max_degree() + 1, "{model:?}");
            assert_eq!(*r.conflicts_per_round.last().unwrap(), 0, "{model:?}");
        }
    }

    #[test]
    fn mesh_graph_color_quality_close_to_sequential() {
        // The paper verified parallel color counts never exceeded the
        // sequential count by more than 5%; give a little slack on a small
        // mesh.
        let pool = ThreadPool::new(8);
        let g = rgg3d_with_avg_degree(4000, Box3::new(4.0, 1.0, 1.0), 20.0, 11);
        let seq = greedy_color(&g).num_colors;
        for model in RuntimeModel::paper_best() {
            let par = iterative_coloring(&pool, &g, model).num_colors;
            assert!(
                (par as f64) <= (seq as f64) * 1.25 + 2.0,
                "{model:?}: parallel used {par} colors vs sequential {seq}"
            );
        }
    }

    #[test]
    fn single_thread_matches_round_one_everywhere() {
        // With one thread there can be no conflicts: one round.
        let pool = ThreadPool::new(1);
        let g = grid2d(40, 40, Stencil2::NinePoint);
        let r = iterative_coloring(
            &pool,
            &g,
            RuntimeModel::OpenMp(Schedule::Dynamic { chunk: 16 }),
        );
        assert_eq!(r.rounds, 1);
        assert_eq!(r.conflicts_per_round, vec![0]);
        check_proper(&g, &r.colors).unwrap();
    }

    #[test]
    fn complete_graph_all_distinct() {
        let pool = ThreadPool::new(4);
        let g = complete(12);
        let r = iterative_coloring(&pool, &g, RuntimeModel::CilkHolder { grain: 1 });
        check_proper(&g, &r.colors).unwrap();
        assert_eq!(r.num_colors, 12);
    }

    #[test]
    fn path_two_colors() {
        let pool = ThreadPool::new(4);
        let g = path(500);
        let r = iterative_coloring(
            &pool,
            &g,
            RuntimeModel::Tbb(Partitioner::Simple { grain: 8 }),
        );
        check_proper(&g, &r.colors).unwrap();
        assert!(
            r.num_colors <= 3,
            "path should need at most 2-3 colors, got {}",
            r.num_colors
        );
    }

    #[test]
    fn empty_graph() {
        let pool = ThreadPool::new(2);
        let g = Csr::empty(0);
        let r = iterative_coloring(&pool, &g, RuntimeModel::OpenMp(Schedule::dynamic100()));
        assert_eq!(r.num_colors, 0);
        assert_eq!(r.rounds, 0);
    }

    #[test]
    fn reports_round_counts() {
        let pool = ThreadPool::new(8);
        let g = erdos_renyi_gnm(3000, 30_000, 9);
        let r = iterative_coloring(
            &pool,
            &g,
            RuntimeModel::OpenMp(Schedule::Dynamic { chunk: 4 }),
        );
        assert!(r.rounds >= 1 && r.rounds < MAX_ROUNDS);
        assert_eq!(r.conflicts_per_round.len(), r.rounds);
        check_proper(&g, &r.colors).unwrap();
    }
}
