//! Graph coloring: sequential greedy (Algorithm 1 of the paper) and the
//! parallel iterative speculative algorithm (Algorithms 2–4), under all
//! three programming models.
//!
//! The parallel algorithm is Gebremedhin–Manne speculation made iterative
//! (Bozdağ et al., then Çatalyürek et al., whose OpenMP implementation the
//! paper ports to MIC): color all vertices optimistically in parallel, then
//! detect conflicts (adjacent same-colored pairs) in a second parallel
//! sweep, and re-color the conflicting vertices in the next round.
//! "The graph is traversed at least twice — once for coloring and once for
//! detecting eventual conflicts."
//!
//! - [`seq`]: Algorithm 1 (`SeqGreedyColoring`) with pluggable vertex
//!   orderings — First Fit on the natural order gives the paper's Table I
//!   color counts;
//! - [`parallel`]: Algorithms 2–4 with the runtime model (OpenMP schedule,
//!   Cilk grain with holder or worker-id TLS, TBB partitioner) as a
//!   parameter — the axis of Figure 1;
//! - [`verify`]: proper-coloring checks used by every test;
//! - [`instrument`]: per-vertex [`mic_sim::Work`] descriptors of the same
//!   algorithm, which `mic-sim` schedules to regenerate Figures 1 and 2.
//!
//! Extensions beyond the paper's experiments: [`mod@jones_plassmann`]
//! (deterministic parallel coloring), [`mis`] (Luby's maximal independent
//! set, JP's primitive), [`dsatur`] (the saturation-degree quality
//! baseline), [`iterated`] (Culberson's iterated greedy, which the paper
//! cites), [`balance`] (equitable class rebalancing for the scheduling
//! application the paper opens with), and [`distance2`] (greedy +
//! speculative-parallel distance-2, the Jacobian-compression variant the
//! paper motivates).

pub mod balance;
pub mod distance2;
pub mod dsatur;
pub mod instrument;
pub mod iterated;
pub mod jones_plassmann;
pub mod mis;
pub mod parallel;
pub mod seq;
pub mod verify;

/// Marker for "not yet colored".
pub const UNCOLORED: u32 = u32::MAX;

pub use jones_plassmann::jones_plassmann;
pub use parallel::{iterative_coloring, ParallelColoring, RuntimeModel};
pub use seq::{greedy_color, Coloring};
pub use verify::{check_proper, num_colors_used};
