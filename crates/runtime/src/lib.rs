//! Re-implementations of the three programming models the paper evaluates —
//! OpenMP, Cilk Plus and Intel TBB — on top of a small persistent thread
//! pool, plus the concurrent building blocks the kernels share.
//!
//! The paper's comparison dimension is the *scheduling discipline* of each
//! model, not the vendor runtime binaries:
//!
//! - [`openmp`]: `parallel for` with `static` / `dynamic` / `guided`
//!   scheduling and a chunk size (§II-A of the paper);
//! - [`cilk`]: recursive-splitting `cilk_for` executed by work stealing, and
//!   the holder/reducer thread-local mechanisms (§II-B);
//! - [`tbb`]: blocked ranges with the `simple` / `auto` / `affinity`
//!   partitioners and `combinable`-style TLS (§II-C).
//!
//! All of them run on [`pool::ThreadPool`], which may be over-subscribed
//! (more workers than hardware threads) — the paper itself runs up to 121
//! threads on a 31-core card, and this crate is used natively only for
//! *correctness*; scalability numbers come from the `mic-sim` machine model.
//!
//! [`concurrent`] provides the shared lock-free pieces: a push-only
//! concurrent vector (used for the coloring conflict list) and the paper's
//! *block-accessed queue* (§IV-C), the novel data structure behind its best
//! BFS implementation. [`deque`] and [`injector`] are the lock-free
//! scheduling substrate: a Chase–Lev work-stealing deque per worker and an
//! MPMC injector (unbounded segmented + bounded ring variants) that the
//! Cilk/TBB engines and the serve admission path are built on. [`sync`]
//! adds the OpenMP `barrier`/`critical`/`single` constructs for
//! persistent-team kernels plus the [`sync::EventCount`] park/unpark
//! primitive behind the pool's lock-free dispatch, [`scan`] the parallel
//! prefix sum behind SNAP-style queue merges, and [`pipeline`] a TBB-style
//! `parallel_pipeline` with in-order serial stages.

pub mod cilk;
pub mod concurrent;
pub mod deque;
pub mod fault;
pub mod injector;
pub mod model;
pub mod openmp;
pub mod pipeline;
pub mod pool;
pub mod scan;
pub mod sync;
pub mod tbb;
pub mod tls;
pub mod trace;

pub use cilk::cilk_for;
pub use concurrent::{BlockCursor, BlockQueue, BlockWriter, ConcurrentPushVec};
pub use deque::WsDeque;
pub use fault::{FaultAction, FaultSite};
pub use injector::{BoundedQueue, Injector, Steal};
pub use model::RuntimeModel;
pub use openmp::{parallel_for, parallel_for_chunks, parallel_reduce, Schedule};
pub use pipeline::{run_pipeline, Stage};
pub use pool::{PoolError, ThreadPool, WorkerCtx};
pub use scan::{exclusive_scan, exclusive_scan_seq};
pub use sync::{park_spin, set_park_spin, Critical, EventCount, RegionBarrier, Single};
pub use tbb::{tbb_parallel_for, Partitioner};
pub use tls::{Combinable, Holder, PerWorker, ReducerMax};
pub use trace::{capture as capture_native_trace, NativeEvent, NativeEventKind};
