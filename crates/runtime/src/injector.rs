//! Lock-free MPMC queues: the shared [`Injector`] behind the stealing
//! runtimes and the bounded [`BoundedQueue`] ring behind mic-serve's
//! admission control.
//!
//! Both are built on the *guard-word* technique from the RustSpeak
//! `conc_vec.rs` exemplar (SNIPPETS.md): a producer first reserves a slot
//! index with one atomic RMW, writes the payload, and only then flips a
//! per-slot guard word with a `Release` store; a consumer may touch the
//! payload only after observing the guard with an `Acquire` load, so the
//! guard pair — not the cursor RMW — is what publishes the data. The
//! exemplar's FIXME asks whether its guard re-load "can't be relaxed";
//! it cannot, and DESIGN.md ("Lock-free structures") spells out why along
//! with every ordering used here.
//!
//! [`Injector`] is unbounded and two-tier: a [`BoundedQueue`] ring is the
//! fast path (slots are reused lap after lap, so sustained traffic stays
//! in cache), and a linked chain of fixed-size one-shot guard-word
//! segments absorbs overflow when the ring fills. One-shot segments have
//! no wraparound — a slot has exactly one producer and one consumer for
//! its whole life — and drained segments are kept on the chain until
//! `Drop`: reclaiming them under concurrent thieves would need hazard
//! pointers, and overflow is rare and loop-scoped, so we buy memory
//! safety with a little memory. The price of the two tiers is strict
//! global FIFO: order holds within each tier, but once overflow occurs a
//! later ring push can be stolen before an earlier overflowed task. A
//! work-distribution queue does not need inter-task order (the engines
//! track completion by a remaining-iterations counter, the pipeline
//! reorders by sequence number), and no current caller assumes it.
//!
//! [`BoundedQueue`] is a fixed-capacity ring with a per-slot sequence
//! number (a generalized guard word that also encodes the lap), after
//! Vyukov's bounded MPMC queue: full and empty are detected from the
//! sequence lag without ever blocking, which is exactly the shape an
//! admission queue wants — a full ring is an explicit `shed`, never a
//! wait.

use crossbeam_utils::CachePadded;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};

/// Result of a steal attempt (mirrors `crossbeam_deque::Steal`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Steal<T> {
    /// The queue was observed empty.
    Empty,
    /// One task was taken.
    Success(T),
    /// Lost a race (or caught a producer mid-publish); try again.
    Retry,
}

impl<T> Steal<T> {
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(t) => Some(t),
            _ => None,
        }
    }
}

/// Guard-word states for one-shot segment slots.
const EMPTY: usize = 0;
const FULL: usize = 1;
const TAKEN: usize = 2;

/// Slots per segment. Small enough that a loop-scoped injector stays
/// cheap, large enough that segment hops are rare.
const SEG: usize = 128;

struct Slot<T> {
    guard: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

struct Segment<T> {
    /// Producer cursor: `fetch_add` hands out write indices. Indices
    /// `>= SEG` mean "this segment is exhausted, move to `next`".
    reserve: CachePadded<AtomicUsize>,
    /// Consumer cursor: advanced by CAS only after the slot's guard was
    /// observed `FULL`, so it can never pass a producer.
    consume: CachePadded<AtomicUsize>,
    next: AtomicPtr<Segment<T>>,
    slots: Box<[Slot<T>]>,
}

impl<T> Segment<T> {
    fn new() -> Box<Segment<T>> {
        Box::new(Segment {
            reserve: CachePadded::new(AtomicUsize::new(0)),
            consume: CachePadded::new(AtomicUsize::new(0)),
            next: AtomicPtr::new(ptr::null_mut()),
            slots: (0..SEG)
                .map(|_| Slot {
                    guard: AtomicUsize::new(EMPTY),
                    value: UnsafeCell::new(MaybeUninit::uninit()),
                })
                .collect(),
        })
    }
}

/// Fast-path ring size. Sized for steady-state occupancy (a few tasks
/// per worker): the engines keep at most a handful of spilled ranges
/// queued at once, so overflow into segments marks a genuine burst.
const INJ_RING: usize = 256;

/// An unbounded lock-free MPMC FIFO. `push` never blocks and never
/// returns `Retry`; `steal` is lock-free (a stalled thief cannot block
/// the others — at worst they observe `Retry`).
///
/// Two tiers (see the module docs): a slot-reusing [`BoundedQueue`] ring
/// takes all steady-state traffic, and the one-shot segment chain below
/// absorbs bursts past [`INJ_RING`]. `steal` drains the ring before the
/// overflow, so order across the tiers is not strictly FIFO.
pub struct Injector<T> {
    /// Cache-hot fast path; overflow spills to the segment chain.
    ring: BoundedQueue<T>,
    /// Consumer-side segment (lags or equals `tail`).
    head: CachePadded<AtomicPtr<Segment<T>>>,
    /// Producer-side segment.
    tail: CachePadded<AtomicPtr<Segment<T>>>,
    /// The original first segment; `Drop` walks the chain from here.
    first: *mut Segment<T>,
    /// Failed CASes (slot claims lost to a sibling, segment-install races).
    retries: AtomicU64,
}

// SAFETY: all shared state is atomics; payload hand-off is published by
// the per-slot guard (`Release` store by the unique producer of the slot,
// `Acquire` load by its unique consumer — the CAS winner on `consume`).
unsafe impl<T: Send> Send for Injector<T> {}
unsafe impl<T: Send> Sync for Injector<T> {}

impl<T> Injector<T> {
    pub fn new() -> Injector<T> {
        let seg = Box::into_raw(Segment::new());
        Injector {
            ring: BoundedQueue::new(INJ_RING),
            head: CachePadded::new(AtomicPtr::new(seg)),
            tail: CachePadded::new(AtomicPtr::new(seg)),
            first: seg,
            retries: AtomicU64::new(0),
        }
    }

    /// Append one task: onto the ring while it has room, spilling to the
    /// segment chain past that. Lock-free throughout; the spill path adds
    /// at most one allocation per `SEG` overflowed tasks.
    pub fn push(&self, task: T) {
        match self.ring.push(task) {
            Ok(()) => {}
            Err(task) => self.push_overflow(task),
        }
    }

    /// Segment-chain push — the burst path once the ring is full.
    fn push_overflow(&self, task: T) {
        let mut seg = self.tail.load(Ordering::Acquire);
        loop {
            // SAFETY: segments are only freed in Drop (&mut self), so any
            // pointer loaded from head/tail/next stays valid for the
            // whole call.
            let s = unsafe { &*seg };
            let idx = s.reserve.fetch_add(1, Ordering::Relaxed);
            if idx < SEG {
                // SAFETY: `idx` was handed out exactly once, so this
                // producer owns the slot; the guard below publishes it.
                unsafe { (*s.slots[idx].value.get()).write(task) };
                s.slots[idx].guard.store(FULL, Ordering::Release);
                return;
            }
            // Segment exhausted: make sure a successor exists, then move
            // the tail forward (best effort — any tail at or past `seg`
            // is fine, later pushers re-load it).
            let mut next = s.next.load(Ordering::Acquire);
            if next.is_null() {
                let fresh = Box::into_raw(Segment::new());
                match s.next.compare_exchange(
                    ptr::null_mut(),
                    fresh,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => next = fresh,
                    Err(existing) => {
                        // SAFETY: `fresh` was never shared.
                        drop(unsafe { Box::from_raw(fresh) });
                        self.retries.fetch_add(1, Ordering::Relaxed);
                        next = existing;
                    }
                }
            }
            if self
                .tail
                .compare_exchange(seg, next, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                self.retries.fetch_add(1, Ordering::Relaxed);
            }
            seg = self.tail.load(Ordering::Acquire);
        }
    }

    /// Take a task: the ring first (the cache-hot common case), then the
    /// overflow chain. `Retry` means a race was lost (another thief
    /// claimed the slot, or its producer has reserved but not yet
    /// published it) — the caller's loop shape decides how hard to spin.
    pub fn steal(&self) -> Steal<T> {
        if let Some(v) = self.ring.pop() {
            return Steal::Success(v);
        }
        self.steal_overflow()
    }

    /// Segment-chain steal, consulted only once the ring reads empty.
    fn steal_overflow(&self) -> Steal<T> {
        let mut seg_ptr = self.head.load(Ordering::Acquire);
        loop {
            // SAFETY: see `push` — segments live until Drop.
            let seg = unsafe { &*seg_ptr };
            let idx = seg.consume.load(Ordering::Acquire);
            if idx >= SEG {
                // Fully drained segment: hop to the successor.
                let next = seg.next.load(Ordering::Acquire);
                if next.is_null() {
                    return Steal::Empty;
                }
                let _ =
                    self.head
                        .compare_exchange(seg_ptr, next, Ordering::AcqRel, Ordering::Acquire);
                seg_ptr = self.head.load(Ordering::Acquire);
                continue;
            }
            let slot = &seg.slots[idx];
            match slot.guard.load(Ordering::Acquire) {
                EMPTY => {
                    // Nothing published at the cursor. If no producer has
                    // even reserved the slot the queue is empty here; a
                    // reserved-but-unpublished slot is a producer mid-write
                    // (the guard-word wait, surfaced as Retry).
                    if seg.reserve.load(Ordering::Acquire) <= idx {
                        return Steal::Empty;
                    }
                    return Steal::Retry;
                }
                FULL => {
                    if seg
                        .consume
                        .compare_exchange(idx, idx + 1, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        // SAFETY: winning the cursor CAS makes this thief
                        // the unique consumer of `idx`; the Acquire guard
                        // load above pairs with the producer's Release.
                        let v = unsafe { (*slot.value.get()).assume_init_read() };
                        slot.guard.store(TAKEN, Ordering::Release);
                        return Steal::Success(v);
                    }
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    return Steal::Retry;
                }
                _ => {
                    // TAKEN at the cursor means our `consume` read was
                    // stale (a winner advanced past it already).
                    return Steal::Retry;
                }
            }
        }
    }

    /// Whether the queue is observably empty (racy, advisory — the same
    /// contract callers relied on with the mutexed shim).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate number of queued tasks (ring plus overflow).
    pub fn len(&self) -> usize {
        let mut n = self.ring.len();
        let mut seg_ptr = self.head.load(Ordering::Acquire);
        while !seg_ptr.is_null() {
            // SAFETY: segments live until Drop.
            let seg = unsafe { &*seg_ptr };
            let r = seg.reserve.load(Ordering::Acquire).min(SEG);
            let c = seg.consume.load(Ordering::Acquire).min(SEG);
            n += r.saturating_sub(c);
            seg_ptr = seg.next.load(Ordering::Acquire);
        }
        n
    }

    /// Failed-CAS count since construction, across both tiers
    /// (contention telemetry).
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed) + self.ring.retries()
    }
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Injector::new()
    }
}

impl<T> Drop for Injector<T> {
    fn drop(&mut self) {
        // Exclusive access: walk the whole chain from the original first
        // segment, dropping published-but-unconsumed payloads.
        let mut seg_ptr = self.first;
        while !seg_ptr.is_null() {
            // SAFETY: every segment was Box::into_raw'd and appears on
            // the chain exactly once.
            let seg = unsafe { Box::from_raw(seg_ptr) };
            for slot in seg.slots.iter() {
                if slot.guard.load(Ordering::Relaxed) == FULL {
                    // SAFETY: published and never consumed.
                    unsafe { (*slot.value.get()).assume_init_drop() };
                }
            }
            seg_ptr = seg.next.load(Ordering::Relaxed);
        }
    }
}

/// One cell of the bounded ring: `seq` encodes both the publication state
/// and the lap (see `push`/`pop`).
struct Cell<T> {
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// A bounded lock-free MPMC ring (Vyukov). `push` on a full ring fails
/// immediately with the value back — the admission-control contract —
/// and `pop` on an empty ring returns `None`.
pub struct BoundedQueue<T> {
    cells: Box<[Cell<T>]>,
    mask: usize,
    enqueue: CachePadded<AtomicUsize>,
    dequeue: CachePadded<AtomicUsize>,
    retries: AtomicU64,
}

// SAFETY: payload hand-off is published through each cell's `seq`
// (Release store after write, Acquire load before read); the enqueue and
// dequeue cursors give each cell a unique producer and consumer per lap.
unsafe impl<T: Send> Send for BoundedQueue<T> {}
unsafe impl<T: Send> Sync for BoundedQueue<T> {}

impl<T> BoundedQueue<T> {
    /// A ring holding at least `capacity` items (rounded up to a power of
    /// two, minimum 2).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        let cap = capacity.max(2).next_power_of_two();
        BoundedQueue {
            cells: (0..cap)
                .map(|i| Cell {
                    seq: AtomicUsize::new(i),
                    value: UnsafeCell::new(MaybeUninit::uninit()),
                })
                .collect(),
            mask: cap - 1,
            enqueue: CachePadded::new(AtomicUsize::new(0)),
            dequeue: CachePadded::new(AtomicUsize::new(0)),
            retries: AtomicU64::new(0),
        }
    }

    /// Ring capacity (the rounded-up power of two).
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Append; `Err(task)` if the ring is full. Lock-free: a failed CAS
    /// means another producer made progress.
    pub fn push(&self, task: T) -> Result<(), T> {
        let mut pos = self.enqueue.load(Ordering::Relaxed);
        loop {
            let cell = &self.cells[pos & self.mask];
            let seq = cell.seq.load(Ordering::Acquire);
            // `seq == pos`: the cell is free this lap. `seq < pos`: the
            // consumer of the previous lap has not freed it — full.
            // `seq > pos`: our cursor read was stale; reload.
            if seq == pos {
                match self.enqueue.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the cursor CAS gives this
                        // producer the cell for lap `pos`.
                        unsafe { (*cell.value.get()).write(task) };
                        cell.seq.store(pos + 1, Ordering::Release);
                        return Ok(());
                    }
                    Err(cur) => {
                        self.retries.fetch_add(1, Ordering::Relaxed);
                        pos = cur;
                    }
                }
            } else if seq < pos {
                return Err(task);
            } else {
                pos = self.enqueue.load(Ordering::Relaxed);
            }
        }
    }

    /// Take the oldest item; `None` if the ring is empty.
    pub fn pop(&self) -> Option<T> {
        let mut pos = self.dequeue.load(Ordering::Relaxed);
        loop {
            let cell = &self.cells[pos & self.mask];
            let seq = cell.seq.load(Ordering::Acquire);
            // `seq == pos + 1`: published this lap. `seq <= pos`: nothing
            // published yet — empty. `seq > pos + 1`: stale cursor.
            if seq == pos + 1 {
                match self.dequeue.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the cursor CAS makes this the
                        // unique consumer of the cell for this lap; the
                        // Acquire `seq` load pairs with the producer's
                        // Release store.
                        let v = unsafe { (*cell.value.get()).assume_init_read() };
                        // Free the cell for the producer one lap ahead.
                        cell.seq.store(pos + self.mask + 1, Ordering::Release);
                        return Some(v);
                    }
                    Err(cur) => {
                        self.retries.fetch_add(1, Ordering::Relaxed);
                        pos = cur;
                    }
                }
            } else if seq <= pos {
                return None;
            } else {
                pos = self.dequeue.load(Ordering::Relaxed);
            }
        }
    }

    /// Approximate occupancy (racy, advisory).
    pub fn len(&self) -> usize {
        let e = self.enqueue.load(Ordering::Relaxed);
        let d = self.dequeue.load(Ordering::Relaxed);
        e.saturating_sub(d)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Failed-CAS count since construction (contention telemetry).
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }
}

impl<T> Drop for BoundedQueue<T> {
    fn drop(&mut self) {
        while self.pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn injector_fifo_order_single_thread() {
        let inj = Injector::new();
        for i in 0..10 {
            inj.push(i);
        }
        let mut got = Vec::new();
        loop {
            match inj.steal() {
                Steal::Success(v) => got.push(v),
                Steal::Empty => break,
                Steal::Retry => {}
            }
        }
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert!(inj.is_empty());
    }

    #[test]
    fn injector_crosses_segment_boundaries() {
        // Push enough to fill the ring and then cross several overflow
        // segment boundaries. Drained single-threaded the order is still
        // 0..n: the ring holds the oldest items and is drained first.
        let inj = Injector::new();
        let n = INJ_RING + SEG * 3 + 17;
        for i in 0..n {
            inj.push(i);
        }
        assert_eq!(inj.len(), n);
        let mut got = Vec::new();
        loop {
            match inj.steal() {
                Steal::Success(v) => got.push(v),
                Steal::Empty => break,
                Steal::Retry => {}
            }
        }
        assert_eq!(got, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn injector_drop_releases_unconsumed() {
        // Drop with published-but-unconsumed items in BOTH tiers must not
        // leak or double-free (exercised under the default allocator +
        // miri-less CI by just running it).
        let inj = Injector::new();
        for i in 0..(INJ_RING + SEG + 5) {
            inj.push(vec![i; 4]);
        }
        let _ = inj.steal();
        drop(inj);
    }

    #[test]
    fn injector_concurrent_storm_exactly_once() {
        let inj = Arc::new(Injector::new());
        let producers = 4;
        let consumers = 4;
        let per = 5_000usize;
        let sum = Arc::new(AtomicUsize::new(0));
        let count = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for p in 0..producers {
            let inj = Arc::clone(&inj);
            handles.push(std::thread::spawn(move || {
                for i in 0..per {
                    inj.push(p * per + i);
                }
            }));
        }
        let total = producers * per;
        for _ in 0..consumers {
            let inj = Arc::clone(&inj);
            let sum = Arc::clone(&sum);
            let count = Arc::clone(&count);
            handles.push(std::thread::spawn(move || loop {
                match inj.steal() {
                    Steal::Success(v) => {
                        sum.fetch_add(v, Ordering::Relaxed);
                        count.fetch_add(1, Ordering::Relaxed);
                    }
                    Steal::Retry => std::thread::yield_now(),
                    Steal::Empty => {
                        if count.load(Ordering::Relaxed) >= total {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(count.load(Ordering::Relaxed), total);
        assert_eq!(sum.load(Ordering::Relaxed), total * (total - 1) / 2);
        assert!(inj.is_empty());
    }

    #[test]
    fn bounded_push_pop_and_full() {
        let q: BoundedQueue<usize> = BoundedQueue::new(4);
        assert_eq!(q.capacity(), 4);
        for i in 0..4 {
            assert!(q.push(i).is_ok());
        }
        assert_eq!(q.push(99), Err(99));
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
        // Reusable after wraparound.
        for lap in 0..3 {
            for i in 0..4 {
                assert!(q.push(lap * 10 + i).is_ok());
            }
            for i in 0..4 {
                assert_eq!(q.pop(), Some(lap * 10 + i));
            }
        }
    }

    #[test]
    fn bounded_concurrent_exactly_once() {
        let q = Arc::new(BoundedQueue::new(64));
        let producers = 4;
        let per = 10_000usize;
        let sum = Arc::new(AtomicUsize::new(0));
        let count = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for p in 0..producers {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..per {
                    let mut v = p * per + i;
                    loop {
                        match q.push(v) {
                            Ok(()) => break,
                            Err(back) => {
                                v = back;
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            }));
        }
        let total = producers * per;
        for _ in 0..4 {
            let q = Arc::clone(&q);
            let sum = Arc::clone(&sum);
            let count = Arc::clone(&count);
            handles.push(std::thread::spawn(move || loop {
                match q.pop() {
                    Some(v) => {
                        sum.fetch_add(v, Ordering::Relaxed);
                        count.fetch_add(1, Ordering::Relaxed);
                    }
                    None => {
                        if count.load(Ordering::Relaxed) >= total {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(count.load(Ordering::Relaxed), total);
        assert_eq!(sum.load(Ordering::Relaxed), total * (total - 1) / 2);
    }
}
