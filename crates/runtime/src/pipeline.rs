//! A TBB-style linear pipeline (`tbb::parallel_pipeline`).
//!
//! The paper's §II-C: TBB's "flow graph construct allows to define tasks
//! that are repeatedly executed by taking some data as an input and
//! producing an output. It allows to easily set up a pipeline of tasks
//! that perform complex tasks such as, typically, video compression,
//! graphical rendering, and data processing." This module provides the
//! linear special case: a serial in-order source, any mix of parallel and
//! serial(-in-order) middle stages, and a serial in-order sink, with a
//! bound on tokens in flight (TBB's `max_number_of_live_tokens`).
//!
//! Simplification relative to TBB: all stages transform the same token
//! type `T` (TBB lets each stage change the type); in exchange the whole
//! pipeline needs no per-token boxing.

use crate::injector::{Injector, Steal};
use crate::pool::ThreadPool;
use parking_lot::Mutex;
use std::collections::BinaryHeap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// A middle stage of the pipeline.
pub enum Stage<T> {
    /// Tokens processed concurrently, in any order.
    Parallel(Box<dyn Fn(T) -> T + Sync + Send>),
    /// Tokens processed one at a time, in source order
    /// (TBB `serial_in_order`).
    Serial(Box<dyn FnMut(T) -> T + Send>),
}

impl<T> Stage<T> {
    /// A parallel stage from a closure.
    pub fn parallel(f: impl Fn(T) -> T + Sync + Send + 'static) -> Self {
        Stage::Parallel(Box::new(f))
    }

    /// A serial in-order stage from a closure.
    pub fn serial(f: impl FnMut(T) -> T + Send + 'static) -> Self {
        Stage::Serial(Box::new(f))
    }
}

struct Token<T> {
    seq: u64,
    value: T,
}

impl<T> PartialEq for Token<T> {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl<T> Eq for Token<T> {}
impl<T> PartialOrd for Token<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Token<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.seq.cmp(&self.seq) // min-heap by sequence number
    }
}

/// Reorder buffer + function of a serial in-order middle stage.
struct SerialState<T> {
    expected: u64,
    pending: BinaryHeap<Token<T>>,
    f: Box<dyn FnMut(T) -> T + Send>,
}

/// Reorder buffer + consumer of the sink.
struct SinkState<T, K> {
    expected: u64,
    pending: BinaryHeap<Token<T>>,
    f: K,
}

// The parallel variant carries an Injector inline (it is touched on every
// token); the size gap to the serial variant is irrelevant because nodes
// live in one short Vec.
#[allow(clippy::large_enum_variant)]
enum Node<T> {
    Parallel {
        inbox: Injector<Token<T>>,
        f: Box<dyn Fn(T) -> T + Sync + Send>,
    },
    Serial {
        state: Mutex<SerialState<T>>,
    },
}

fn forward<T, K>(nodes: &[Node<T>], sink: &Mutex<SinkState<T, K>>, i: usize, tok: Token<T>) {
    if i < nodes.len() {
        match &nodes[i] {
            Node::Parallel { inbox, .. } => inbox.push(tok),
            Node::Serial { state } => state.lock().pending.push(tok),
        }
    } else {
        sink.lock().pending.push(tok);
    }
}

/// Run a pipeline: `source` yields items (serially, in order), each passes
/// through `stages`, and `sink` consumes them **in source order**. At most
/// `max_tokens` items are in flight at once (memory backpressure).
///
/// ```
/// use mic_runtime::{run_pipeline, Stage, ThreadPool};
/// let pool = ThreadPool::new(4);
/// let mut i = 0u64;
/// let mut out = Vec::new();
/// run_pipeline(
///     &pool,
///     move || { i += 1; (i <= 5).then_some(i) },
///     vec![Stage::parallel(|v: u64| v * v)],
///     |v| out.push(v),
///     8,
/// );
/// assert_eq!(out, vec![1, 4, 9, 16, 25]); // in order despite parallelism
/// ```
pub fn run_pipeline<T, S, K>(
    pool: &ThreadPool,
    source: S,
    stages: Vec<Stage<T>>,
    sink: K,
    max_tokens: usize,
) where
    T: Send,
    S: FnMut() -> Option<T> + Send,
    K: FnMut(T) + Send,
{
    assert!(max_tokens >= 1, "need at least one live token");
    let nodes: Vec<Node<T>> = stages
        .into_iter()
        .map(|s| match s {
            Stage::Parallel(f) => Node::Parallel {
                inbox: Injector::new(),
                f,
            },
            Stage::Serial(f) => Node::Serial {
                state: Mutex::new(SerialState {
                    expected: 0,
                    pending: BinaryHeap::new(),
                    f,
                }),
            },
        })
        .collect();

    struct SourceState<S> {
        f: S,
        next_seq: u64,
        exhausted: bool,
    }
    let source = Mutex::new(SourceState {
        f: source,
        next_seq: 0,
        exhausted: false,
    });
    let sink = Mutex::new(SinkState {
        expected: 0,
        pending: BinaryHeap::new(),
        f: sink,
    });
    let in_flight = AtomicUsize::new(0);
    // A panicking stage consumes its token without forwarding it, which
    // would strand `in_flight` above zero; the abort flag releases the
    // other workers and the panic propagates through the pool.
    let aborted = AtomicBool::new(false);
    // Re-raise a caught panic, marking the pipeline aborted first.
    let bail = |p: Box<dyn std::any::Any + Send>| -> ! {
        aborted.store(true, Ordering::Release);
        resume_unwind(p)
    };

    pool.run(|_ctx| loop {
        if aborted.load(Ordering::Acquire) {
            break;
        }
        let mut progressed = false;

        // 1. Drain the sink: consume every ready token in order.
        {
            let mut st = sink.lock();
            while st.pending.peek().map(|t| t.seq) == Some(st.expected) {
                let tok = st.pending.pop().unwrap();
                st.expected += 1;
                if let Err(p) = catch_unwind(AssertUnwindSafe(|| (st.f)(tok.value))) {
                    bail(p);
                }
                in_flight.fetch_sub(1, Ordering::AcqRel);
                progressed = true;
            }
        }

        // 2. Advance middle stages, last to first (drains before filling).
        for (i, node) in nodes.iter().enumerate().rev() {
            match node {
                Node::Parallel { inbox, f } => loop {
                    match inbox.steal() {
                        Steal::Success(tok) => {
                            let value = match catch_unwind(AssertUnwindSafe(|| f(tok.value))) {
                                Ok(v) => v,
                                Err(p) => bail(p),
                            };
                            forward(
                                &nodes,
                                &sink,
                                i + 1,
                                Token {
                                    seq: tok.seq,
                                    value,
                                },
                            );
                            progressed = true;
                            break;
                        }
                        Steal::Empty => break,
                        Steal::Retry => {}
                    }
                },
                Node::Serial { state } => {
                    // Holding the lock across `f` *is* the serial
                    // guarantee; in-order comes from the reorder buffer.
                    let mut st = state.lock();
                    if st.pending.peek().map(|t| t.seq) == Some(st.expected) {
                        let tok = st.pending.pop().unwrap();
                        st.expected += 1;
                        let value = match catch_unwind(AssertUnwindSafe(|| (st.f)(tok.value))) {
                            Ok(v) => v,
                            Err(p) => {
                                drop(st);
                                bail(p)
                            }
                        };
                        drop(st);
                        forward(
                            &nodes,
                            &sink,
                            i + 1,
                            Token {
                                seq: tok.seq,
                                value,
                            },
                        );
                        progressed = true;
                    }
                }
            }
        }

        // 3. Produce a new token if there is room.
        if in_flight.load(Ordering::Acquire) < max_tokens {
            let mut src = source.lock();
            if !src.exhausted {
                match catch_unwind(AssertUnwindSafe(|| (src.f)())) {
                    Ok(Some(value)) => {
                        let tok = Token {
                            seq: src.next_seq,
                            value,
                        };
                        src.next_seq += 1;
                        drop(src);
                        in_flight.fetch_add(1, Ordering::AcqRel);
                        forward(&nodes, &sink, 0, tok);
                        progressed = true;
                    }
                    Ok(None) => src.exhausted = true,
                    Err(p) => {
                        drop(src);
                        bail(p)
                    }
                }
            }
        }

        // 4. Terminate once the source is dry and every token is consumed.
        if !progressed {
            if in_flight.load(Ordering::Acquire) == 0 && source.lock().exhausted {
                break;
            }
            std::hint::spin_loop();
            std::thread::yield_now();
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn counter_source(n: usize) -> impl FnMut() -> Option<u64> + Send {
        let mut i = 0u64;
        move || {
            if (i as usize) < n {
                i += 1;
                Some(i - 1)
            } else {
                None
            }
        }
    }

    #[test]
    fn sink_sees_items_in_order() {
        let pool = ThreadPool::new(6);
        let n = 2000;
        let mut seen = Vec::new();
        {
            let sink = |v: u64| seen.push(v);
            run_pipeline(
                &pool,
                counter_source(n),
                vec![Stage::parallel(|v: u64| v * 3), Stage::parallel(|v| v + 1)],
                sink,
                32,
            );
        }
        let want: Vec<u64> = (0..n as u64).map(|v| v * 3 + 1).collect();
        assert_eq!(seen, want);
    }

    #[test]
    fn serial_stage_is_exclusive_and_ordered() {
        let pool = ThreadPool::new(8);
        let n = 1000;
        // The serial stage checks it always sees consecutive sequence
        // values (in-order) — any concurrency or reorder would break it.
        let mut expected_next = 0u64;
        let mut out = Vec::new();
        {
            let stage = Stage::serial(move |v: u64| {
                assert_eq!(v, expected_next, "serial stage must run in order");
                expected_next += 1;
                v
            });
            run_pipeline(&pool, counter_source(n), vec![stage], |v| out.push(v), 16);
        }
        assert_eq!(out, (0..n as u64).collect::<Vec<_>>());
    }

    #[test]
    fn mixed_stages_compose() {
        let pool = ThreadPool::new(4);
        let n = 500;
        let mut running_sum = 0u64;
        let mut sums = Vec::new();
        {
            let stages = vec![
                Stage::parallel(|v: u64| v * v),
                Stage::serial(move |v: u64| {
                    running_sum += v;
                    running_sum
                }),
            ];
            run_pipeline(&pool, counter_source(n), stages, |v| sums.push(v), 8);
        }
        // Prefix sums of squares, exact and ordered.
        let mut acc = 0u64;
        let want: Vec<u64> = (0..n as u64)
            .map(|v| {
                acc += v * v;
                acc
            })
            .collect();
        assert_eq!(sums, want);
    }

    #[test]
    fn empty_source() {
        let pool = ThreadPool::new(3);
        let mut count = 0usize;
        run_pipeline(
            &pool,
            || None::<u64>,
            vec![Stage::parallel(|v| v)],
            |_| count += 1,
            4,
        );
        assert_eq!(count, 0);
    }

    #[test]
    fn no_middle_stages() {
        let pool = ThreadPool::new(2);
        let mut out = Vec::new();
        run_pipeline(&pool, counter_source(10), Vec::new(), |v| out.push(v), 2);
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn token_cap_bounds_memory() {
        // With max_tokens = 1 the pipeline degenerates to strict
        // tick-tock; correctness must hold and peak in-flight is 1.
        let pool = ThreadPool::new(4);
        static PEAK: AtomicUsize = AtomicUsize::new(0);
        static CURRENT: AtomicUsize = AtomicUsize::new(0);
        PEAK.store(0, Ordering::SeqCst);
        CURRENT.store(0, Ordering::SeqCst);
        let mut produced = 0u64;
        let source = move || {
            if produced < 100 {
                produced += 1;
                let c = CURRENT.fetch_add(1, Ordering::SeqCst) + 1;
                PEAK.fetch_max(c, Ordering::SeqCst);
                Some(produced - 1)
            } else {
                None
            }
        };
        let mut got = 0u64;
        run_pipeline(
            &pool,
            source,
            vec![Stage::parallel(|v| v)],
            |_| {
                CURRENT.fetch_sub(1, Ordering::SeqCst);
                got += 1;
            },
            1,
        );
        assert_eq!(got, 100);
        assert_eq!(PEAK.load(Ordering::SeqCst), 1, "token cap violated");
    }
}
