//! Lock-free concurrent containers shared by the kernels.
//!
//! [`ConcurrentPushVec`] is the paper's conflict-list idiom: "we use an
//! atomic fetch and add to obtain a unique index in the Conflict array"
//! (§IV). [`BlockQueue`] is the paper's main data-structure contribution
//! (§IV-C): a contiguous shared queue where each thread reserves *blocks*
//! of slots with one fetch-and-add per block, and partially filled blocks
//! are padded with a sentinel instead of compacted.

use crossbeam_utils::CachePadded;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A fixed-capacity vector supporting concurrent `push` from many threads
/// via a single fetch-and-add per element.
pub struct ConcurrentPushVec<T> {
    data: Vec<UnsafeCell<Option<T>>>,
    len: CachePadded<AtomicUsize>,
}

// SAFETY: `push` hands out a unique index per call, so writes never alias;
// reads only happen through `&mut self` methods after writers are done.
unsafe impl<T: Send> Sync for ConcurrentPushVec<T> {}
unsafe impl<T: Send> Send for ConcurrentPushVec<T> {}

impl<T> ConcurrentPushVec<T> {
    /// An empty vector with room for `capacity` elements.
    pub fn new(capacity: usize) -> Self {
        ConcurrentPushVec {
            data: (0..capacity).map(|_| UnsafeCell::new(None)).collect(),
            len: CachePadded::new(AtomicUsize::new(0)),
        }
    }

    /// Append `v`, returning its index.
    ///
    /// # Panics
    /// Panics if capacity is exceeded.
    #[inline]
    pub fn push(&self, v: T) -> usize {
        let idx = self.len.fetch_add(1, Ordering::Relaxed);
        assert!(idx < self.data.len(), "ConcurrentPushVec capacity exceeded");
        // SAFETY: `idx` is unique to this call.
        unsafe { *self.data[idx].get() = Some(v) };
        idx
    }

    /// Number of elements pushed so far. Exact once all writers are done.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire).min(self.data.len())
    }

    /// Whether no elements have been pushed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.data.len()
    }

    /// Drain the contents into a `Vec` (after the parallel region) and
    /// reset to empty.
    pub fn drain(&mut self) -> Vec<T> {
        let n = *self.len.get_mut();
        let out = self.data[..n]
            .iter_mut()
            .map(|c| c.get_mut().take().expect("pushed slot"))
            .collect();
        *self.len.get_mut() = 0;
        out
    }

    /// Reset to empty without reading (contents are dropped).
    pub fn clear(&mut self) {
        let n = *self.len.get_mut();
        for c in &mut self.data[..n] {
            *c.get_mut() = None;
        }
        *self.len.get_mut() = 0;
    }
}

/// The paper's block-accessed shared queue (§IV-C).
///
/// A contiguous array plus one shared cursor. Each writer holds a private
/// block of `block_size` slots obtained with a single
/// `fetch_add(block_size)`; pushes go to the private block until it fills.
/// When a region ends, partially filled blocks are padded with `sentinel`
/// ("an invalid vertex ID, such as -1") — consumers skip sentinel entries
/// instead of paying for compaction. Keeping blocks small bounds the waste;
/// keeping them above one slot bounds the atomics — the tradeoff the paper
/// calls out, and the `ablation` bench sweeps.
///
/// ```
/// use mic_runtime::{BlockQueue, ThreadPool};
/// let pool = ThreadPool::new(4);
/// let q: BlockQueue<u32> = BlockQueue::with_writers(1000, 32, 4, u32::MAX);
/// pool.run(|ctx| {
///     let mut w = q.writer();
///     for i in (ctx.id..1000).step_by(ctx.num_threads) {
///         w.push(i as u32);
///     }
/// });
/// let mut q = q;
/// let mut items = q.items();
/// items.sort_unstable();
/// assert_eq!(items.len(), 1000);
/// ```
pub struct BlockQueue<T> {
    data: Vec<UnsafeCell<T>>,
    cursor: CachePadded<AtomicUsize>,
    block_size: usize,
    sentinel: T,
}

// SAFETY: writers own disjoint blocks (unique fetch_add reservations);
// reads happen through `&mut self` after the region.
unsafe impl<T: Send> Sync for BlockQueue<T> {}
unsafe impl<T: Send> Send for BlockQueue<T> {}

impl<T: Copy + PartialEq> BlockQueue<T> {
    /// A queue holding at most `capacity` useful items. Internally it
    /// over-allocates so that every writer can always grab one more block.
    pub fn new(capacity: usize, block_size: usize, sentinel: T) -> Self {
        assert!(block_size >= 1, "block size must be at least 1");
        // Worst case every active writer strands a partly-filled block;
        // writers are unknown here, so leave modest slack (use
        // `with_writers` when the writer count is known).
        let cap = capacity + block_size * 2;
        BlockQueue {
            data: (0..cap).map(|_| UnsafeCell::new(sentinel)).collect(),
            cursor: CachePadded::new(AtomicUsize::new(0)),
            block_size,
            sentinel,
        }
    }

    /// A queue sized for `capacity` items written by at most `writers`
    /// concurrent threads (each may strand one partly filled block).
    pub fn with_writers(capacity: usize, block_size: usize, writers: usize, sentinel: T) -> Self {
        let block_size = block_size.max(1);
        let cap = capacity + block_size * (writers + 1);
        BlockQueue {
            data: (0..cap).map(|_| UnsafeCell::new(sentinel)).collect(),
            cursor: CachePadded::new(AtomicUsize::new(0)),
            block_size,
            sentinel,
        }
    }

    /// Open a writer handle. Each concurrent writer thread needs its own.
    pub fn writer(&self) -> BlockWriter<'_, T> {
        BlockWriter {
            queue: self,
            cursor: BlockCursor::default(),
        }
    }

    /// Append `v` through an external [`BlockCursor`] — the same protocol
    /// as [`BlockWriter::push`], but with the per-thread block state stored
    /// by the caller (e.g. in a `PerWorker` slot that outlives individual
    /// scheduler chunks, exactly like the paper's per-thread blocks).
    #[inline]
    pub fn push_with(&self, cur: &mut BlockCursor, v: T) {
        debug_assert!(v != self.sentinel, "cannot push the sentinel value");
        if cur.pos == cur.end {
            let base = self.cursor.fetch_add(self.block_size, Ordering::Relaxed);
            assert!(
                base + self.block_size <= self.data.len(),
                "BlockQueue out of space (capacity misconfigured)"
            );
            cur.pos = base;
            cur.end = base + self.block_size;
        }
        // SAFETY: `cur.pos` lies inside a block uniquely reserved via the
        // fetch_add above (cursors must not be shared across threads, which
        // the `&mut` receiver enforces per call site).
        unsafe { *self.data[cur.pos].get() = v };
        cur.pos += 1;
    }

    /// The sentinel value.
    pub fn sentinel(&self) -> T {
        self.sentinel
    }

    /// Block size.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Slots handed out so far (valid items plus sentinel padding).
    pub fn raw_len(&self) -> usize {
        self.cursor.load(Ordering::Acquire).min(self.data.len())
    }

    /// Read one handed-out slot through a shared reference.
    ///
    /// Only call when no writer is concurrently active on *this* queue —
    /// the layered-BFS pattern reads the current level's (already sealed)
    /// queue while writers fill the *next* level's queue.
    #[inline]
    pub fn slot(&self, idx: usize) -> T {
        debug_assert!(idx < self.data.len());
        // SAFETY: caller guarantees no concurrent writers; slots below
        // raw_len were initialized by writers, the rest at construction.
        unsafe { *self.data[idx].get() }
    }

    /// The written prefix, sentinels included (call after the region).
    pub fn raw_slice(&mut self) -> &[T] {
        let n = (*self.cursor.get_mut()).min(self.data.len());
        // SAFETY: exclusive access; the prefix was initialized by writers
        // or is sentinel-filled from construction/reset.
        unsafe { std::slice::from_raw_parts(self.data.as_ptr() as *const T, n) }
    }

    /// Collect the non-sentinel items (test/convenience path; kernels
    /// iterate `raw_slice` and skip sentinels inline, as the paper does).
    pub fn items(&mut self) -> Vec<T> {
        let s = self.sentinel;
        self.raw_slice()
            .iter()
            .copied()
            .filter(|v| *v != s)
            .collect()
    }

    /// Reset through a shared reference.
    ///
    /// # Safety
    /// The caller must guarantee exclusive access for the duration of the
    /// call — no concurrent reader or writer. The intended pattern is a
    /// persistent worker team where only the barrier leader resets, between
    /// two barrier episodes.
    pub unsafe fn reset_exclusive(&self) {
        let n = self.cursor.load(Ordering::Acquire).min(self.data.len());
        for c in &self.data[..n] {
            // SAFETY: exclusivity guaranteed by the caller.
            unsafe { *c.get() = self.sentinel };
        }
        self.cursor.store(0, Ordering::Release);
    }

    /// Reset to empty, re-filling the used prefix with the sentinel.
    pub fn reset(&mut self) {
        let n = (*self.cursor.get_mut()).min(self.data.len());
        for c in &mut self.data[..n] {
            *c.get_mut() = self.sentinel;
        }
        *self.cursor.get_mut() = 0;
    }
}

/// Per-thread block reservation state: the half-open range of slots this
/// thread may still fill. Plain data so it can live anywhere (notably in a
/// `PerWorker` slot).
#[derive(Clone, Copy, Debug, Default)]
pub struct BlockCursor {
    pos: usize,
    end: usize,
}

/// A per-thread handle writing into a [`BlockQueue`].
///
/// Dropping the writer leaves the rest of its current block holding the
/// sentinel (slots are pre-filled at construction/reset), which is the
/// paper's padding scheme.
pub struct BlockWriter<'q, T> {
    queue: &'q BlockQueue<T>,
    cursor: BlockCursor,
}

impl<T: Copy + PartialEq> BlockWriter<'_, T> {
    /// Append one item, grabbing a fresh block if the current one is full.
    ///
    /// # Panics
    /// Panics if the item equals the sentinel or the queue is out of space.
    #[inline]
    pub fn push(&mut self, v: T) {
        self.queue.push_with(&mut self.cursor, v);
    }
}

impl<T> Drop for BlockWriter<'_, T> {
    fn drop(&mut self) {
        // Slots in `pos..end` still hold the sentinel from construction or
        // reset, so nothing to write — the padding is already in place.
        // (The paper describes explicitly writing -1; pre-filling at reset
        // time is equivalent and keeps the hot path shorter.)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::openmp::{parallel_for, Schedule};
    use crate::pool::ThreadPool;

    #[test]
    fn push_vec_unique_indices_and_contents() {
        let pool = ThreadPool::new(6);
        let cv: ConcurrentPushVec<usize> = ConcurrentPushVec::new(5000);
        parallel_for(&pool, 0..5000, Schedule::Dynamic { chunk: 7 }, |i, _| {
            if i % 3 == 0 {
                cv.push(i);
            }
        });
        let mut cv = cv;
        let mut out = cv.drain();
        out.sort_unstable();
        let expected: Vec<usize> = (0..5000).filter(|i| i % 3 == 0).collect();
        assert_eq!(out, expected);
        assert!(cv.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity exceeded")]
    fn push_vec_overflow_panics() {
        let cv: ConcurrentPushVec<u32> = ConcurrentPushVec::new(2);
        cv.push(1);
        cv.push(2);
        cv.push(3);
    }

    #[test]
    fn block_queue_single_thread_roundtrip() {
        let mut q: BlockQueue<u32> = BlockQueue::new(100, 8, u32::MAX);
        {
            let mut w = q.writer();
            for i in 0..20 {
                w.push(i);
            }
        }
        let mut items = q.items();
        items.sort_unstable();
        assert_eq!(items, (0..20).collect::<Vec<_>>());
        // 20 items in blocks of 8 → 3 blocks → 24 raw slots.
        assert_eq!(q.raw_len(), 24);
    }

    #[test]
    fn block_queue_parallel_no_loss_no_dup() {
        let pool = ThreadPool::new(8);
        let n = 10_000;
        let q: BlockQueue<u32> = BlockQueue::with_writers(n, 32, 8, u32::MAX);
        pool.run(|ctx| {
            let mut w = q.writer();
            let mut i = ctx.id;
            while i < n {
                w.push(i as u32);
                i += ctx.num_threads;
            }
        });
        let mut q = q;
        let mut items = q.items();
        items.sort_unstable();
        assert_eq!(items, (0..n as u32).collect::<Vec<_>>());
    }

    #[test]
    fn block_queue_reset_reusable() {
        let pool = ThreadPool::new(4);
        let mut q: BlockQueue<u32> = BlockQueue::with_writers(1000, 16, 4, u32::MAX);
        for round in 0..3 {
            let qref = &q;
            pool.run(|ctx| {
                let mut w = qref.writer();
                for i in (ctx.id..100).step_by(ctx.num_threads) {
                    w.push((round * 1000 + i) as u32);
                }
            });
            let mut items = q.items();
            items.sort_unstable();
            let expected: Vec<u32> = (0..100).map(|i| (round * 1000 + i) as u32).collect();
            assert_eq!(items, expected, "round {round}");
            q.reset();
            assert_eq!(q.raw_len(), 0);
        }
    }

    #[test]
    fn block_queue_block_size_one_behaves() {
        let mut q: BlockQueue<u32> = BlockQueue::new(10, 1, u32::MAX);
        {
            let mut w = q.writer();
            w.push(5);
            w.push(6);
        }
        assert_eq!(q.items(), vec![5, 6]);
        assert_eq!(q.raw_len(), 2); // no padding waste with block 1
    }

    #[test]
    fn sentinel_padding_is_counted_but_skipped() {
        let mut q: BlockQueue<u32> = BlockQueue::new(64, 16, u32::MAX);
        {
            let mut w = q.writer();
            w.push(1); // occupies one slot of a 16-slot block
        }
        assert_eq!(q.raw_len(), 16);
        assert_eq!(q.items(), vec![1]);
        let raw = q.raw_slice();
        assert_eq!(raw.iter().filter(|&&v| v == u32::MAX).count(), 15);
    }
}
