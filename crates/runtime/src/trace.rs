//! mic-trace, native side: scheduling events from the real runtimes.
//!
//! The simulator's trace (see `mic-sim::trace`) answers "where did the
//! *simulated machine's* time go"; this module answers the companion
//! question for the native runs — which worker executed which chunk, and
//! where work stealing happened. The OpenMP shim records every chunk it
//! hands out, the Cilk and TBB engines additionally record steals, and the
//! pool records each worker's span inside a region.
//!
//! Collection is process-global and off by default: every hook is gated on
//! one relaxed atomic load, so the kernels pay nothing measurable when no
//! capture is active. [`capture`] serializes concurrent capture sessions
//! (first come, first served) so parallel tests cannot interleave their
//! event streams.

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// What a native event describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NativeEventKind {
    /// A worker executed one chunk of a parallel loop.
    Chunk { lo: usize, hi: usize },
    /// A worker took work published by `victim` (`usize::MAX` when the
    /// victim is unknown, e.g. a Cilk injector steal).
    Steal { victim: usize },
    /// One worker's span inside a pool region (`ThreadPool::run`).
    Region { epoch: u64 },
}

/// One native scheduling event. Timestamps are microseconds since the
/// process's trace epoch; instantaneous events have `start_us == end_us`.
#[derive(Clone, Copy, Debug)]
pub struct NativeEvent {
    /// Which runtime shim emitted it ("omp", "cilk", "tbb", "pool").
    pub runtime: &'static str,
    /// Worker id within the pool.
    pub worker: usize,
    /// Trace lane of the emitting thread (see [`set_lane`]): 0 for the
    /// default lane, `shard + 1` for serve shard executors. Exporters use
    /// it to keep per-shard pools on separate timeline rows.
    pub lane: usize,
    pub start_us: f64,
    pub end_us: f64,
    pub kind: NativeEventKind,
}

thread_local! {
    static LANE: Cell<usize> = const { Cell::new(0) };
}

/// Assign the calling thread to a trace lane. Pools inherit the lane of
/// the thread that creates (or respawns into) them, so a serve shard that
/// builds its pool from its executor thread tags every event that pool
/// emits. Lane 0 is the anonymous default.
pub fn set_lane(lane: usize) {
    LANE.with(|l| l.set(lane));
}

/// The calling thread's trace lane (0 unless [`set_lane`] was called).
pub fn current_lane() -> usize {
    LANE.with(|l| l.get())
}

static ENABLED: AtomicBool = AtomicBool::new(false);

fn events() -> &'static Mutex<Vec<NativeEvent>> {
    static EVENTS: OnceLock<Mutex<Vec<NativeEvent>>> = OnceLock::new();
    EVENTS.get_or_init(|| Mutex::new(Vec::new()))
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Whether a capture session is active. The hooks in the runtime shims
/// check this before doing any work; it is a single relaxed load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Microseconds since the process's trace epoch.
pub fn now_us() -> f64 {
    epoch().elapsed().as_secs_f64() * 1e6
}

/// Record one event (dropped unless a capture session is active).
pub fn emit(ev: NativeEvent) {
    if !enabled() {
        return;
    }
    events().lock().unwrap_or_else(|e| e.into_inner()).push(ev);
}

/// Record a steal observed by `thief` (victim `usize::MAX` = unknown).
/// This is the single choke point every stealing runtime reports through,
/// so the metrics layer counts steals here too, labeled by victim.
#[inline]
pub fn emit_steal(runtime: &'static str, thief: usize, victim: usize) {
    if mic_metrics::enabled() {
        let victim_label = if victim == usize::MAX {
            "unknown".to_string()
        } else {
            victim.to_string()
        };
        mic_metrics::counter(
            "mic_runtime_steals_total",
            "Work-stealing events observed by the native runtimes, by victim worker",
            &[("runtime", runtime), ("victim", &victim_label)],
        )
        .inc();
    }
    if !enabled() {
        return;
    }
    let t = now_us();
    emit(NativeEvent {
        runtime,
        worker: thief,
        lane: current_lane(),
        start_us: t,
        end_us: t,
        kind: NativeEventKind::Steal { victim },
    });
}

/// Bucket edges for native chunk latencies: 0.1 µs … ≈ 1.7 s.
fn chunk_seconds_buckets() -> Vec<f64> {
    mic_metrics::exp_buckets(1e-7, 4.0, 13)
}

/// Wrap a chunk body so each invocation is timed and recorded when a
/// capture session is active. This is also the chunk-boundary fault site:
/// an installed [`crate::fault`] hook is consulted with the chunk's first
/// iteration index before the body runs. `sched` names the scheduling
/// discipline that produced the chunk ("static", "dynamic", "guided",
/// "simple", "auto", "affinity") and labels the per-schedule chunk-latency
/// histogram when metrics are enabled.
pub(crate) fn timed_chunk<F>(
    runtime: &'static str,
    sched: &'static str,
    body: F,
) -> impl Fn(Range<usize>, crate::pool::WorkerCtx)
where
    F: Fn(Range<usize>, crate::pool::WorkerCtx),
{
    move |r, ctx| {
        crate::fault::apply_chunk(runtime, ctx.id, r.start as u64);
        let trace_on = enabled();
        let metrics_on = mic_metrics::enabled();
        if !trace_on && !metrics_on {
            body(r, ctx);
            return;
        }
        let t0 = now_us();
        body(r.clone(), ctx);
        let t1 = now_us();
        if trace_on {
            emit(NativeEvent {
                runtime,
                worker: ctx.id,
                lane: current_lane(),
                start_us: t0,
                end_us: t1,
                kind: NativeEventKind::Chunk {
                    lo: r.start,
                    hi: r.end,
                },
            });
        }
        if metrics_on {
            let labels = [("runtime", runtime), ("sched", sched)];
            mic_metrics::counter(
                "mic_runtime_chunks_total",
                "Chunks executed by the native runtime shims",
                &labels,
            )
            .inc();
            mic_metrics::histogram(
                "mic_runtime_chunk_seconds",
                "Native chunk execution latency per runtime and schedule",
                &labels,
                &chunk_seconds_buckets(),
            )
            .observe((t1 - t0) * 1e-6);
        }
    }
}

fn session_lock() -> &'static Mutex<()> {
    static SESSION: OnceLock<Mutex<()>> = OnceLock::new();
    SESSION.get_or_init(|| Mutex::new(()))
}

/// Run `f` with native tracing enabled and return its result together with
/// every event the runtimes emitted while it ran. Sessions are serialized
/// process-wide; nested captures would deadlock (don't).
pub fn capture<R>(f: impl FnOnce() -> R) -> (R, Vec<NativeEvent>) {
    let _session = session_lock().lock().unwrap_or_else(|e| e.into_inner());
    events().lock().unwrap_or_else(|e| e.into_inner()).clear();
    ENABLED.store(true, Ordering::SeqCst);
    let result = f();
    ENABLED.store(false, Ordering::SeqCst);
    let evs = std::mem::take(&mut *events().lock().unwrap_or_else(|e| e.into_inner()));
    (result, evs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::openmp::{parallel_for_chunks, Schedule};
    use crate::pool::ThreadPool;
    use crate::tbb::{tbb_parallel_for, Partitioner};
    use std::sync::atomic::AtomicUsize;

    fn chunk_coverage(evs: &[NativeEvent], runtime: &str, n: usize) -> Vec<bool> {
        let mut seen = vec![false; n];
        for ev in evs {
            if let NativeEventKind::Chunk { lo, hi } = ev.kind {
                if ev.runtime == runtime {
                    assert!(ev.end_us >= ev.start_us);
                    for s in &mut seen[lo..hi] {
                        assert!(!*s, "index covered twice");
                        *s = true;
                    }
                }
            }
        }
        seen
    }

    #[test]
    fn capture_records_openmp_chunks_and_pool_regions() {
        let pool = ThreadPool::new(4);
        let n = 997;
        let hits = AtomicUsize::new(0);
        let ((), evs) = capture(|| {
            parallel_for_chunks(&pool, 0..n, Schedule::Dynamic { chunk: 64 }, |r, _| {
                hits.fetch_add(r.len(), Ordering::Relaxed);
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), n);
        assert!(chunk_coverage(&evs, "omp", n).into_iter().all(|s| s));
        let regions = evs
            .iter()
            .filter(|e| matches!(e.kind, NativeEventKind::Region { .. }))
            .count();
        assert_eq!(regions, 4, "one region span per worker");
        assert!(!enabled(), "capture must disable tracing on exit");
    }

    #[test]
    fn capture_records_cilk_chunks() {
        let pool = ThreadPool::new(3);
        let n = 500;
        let ((), evs) = capture(|| {
            crate::cilk::cilk_for(&pool, 0..n, 32, |_, _| {});
        });
        assert!(chunk_coverage(&evs, "cilk", n).into_iter().all(|s| s));
    }

    #[test]
    fn capture_records_tbb_chunks_and_auto_steals() {
        let pool = ThreadPool::new(4);
        let n = 2000;
        let ((), evs) = capture(|| {
            tbb_parallel_for(&pool, 0..n, Partitioner::Auto, |_, _| {
                std::hint::black_box(0);
            });
        });
        assert!(chunk_coverage(&evs, "tbb", n).into_iter().all(|s| s));
        // Steals may or may not occur (timing), but any recorded one must
        // name a thief different from its victim.
        for ev in &evs {
            if let NativeEventKind::Steal { victim } = ev.kind {
                assert_ne!(ev.worker, victim);
            }
        }
    }

    #[test]
    fn nothing_recorded_when_disabled() {
        let pool = ThreadPool::new(2);
        parallel_for_chunks(&pool, 0..100, Schedule::Static { chunk: None }, |_, _| {});
        // A later capture starts from a clean slate.
        let ((), evs) = capture(|| {});
        assert!(evs.is_empty());
    }
}
