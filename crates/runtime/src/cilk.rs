//! Cilk Plus-style loops: recursive range splitting executed by work
//! stealing (§II-B of the paper).
//!
//! `cilk for` in Cilk Plus recursively spawns halves of the iteration space
//! until a grain size is reached; idle workers steal the *shallowest*
//! (largest) pending subranges. We reproduce that discipline with a local
//! LIFO stack per worker (the "deep" end, executed locally) and a shared
//! injector (the "shallow" end, exposed for stealing): whenever a worker
//! splits a range it keeps the front half and publishes the back half. This
//! preserves Cilk's key properties — geometric task sizes, grain-bounded
//! leaves, steals take big pieces — without pinning per-OS-thread deques
//! into the generic pool.

use crate::pool::{ThreadPool, WorkerCtx};
use crossbeam_deque::{Injector, Steal};
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Default grain: like Cilk Plus, aim for ~8 leaves per worker so steals
/// stay rare but balance is achievable.
pub fn default_grain(n: usize, threads: usize) -> usize {
    (n / (8 * threads.max(1))).max(1)
}

/// `cilk_for` over `range` with the given `grain` (use
/// [`default_grain`] to mimic Cilk's automatic choice). `body` receives
/// leaf subranges of length `<= grain`.
pub fn cilk_for<F>(pool: &ThreadPool, range: Range<usize>, grain: usize, body: F)
where
    F: Fn(Range<usize>, WorkerCtx) + Sync,
{
    cilk_for_labeled(pool, range, grain, "cilk", body);
}

/// The splitting engine behind [`cilk_for`], labeled for tracing. TBB's
/// simple partitioner shares the engine but reports as "tbb". Injected
/// ranges carry the id of the worker that published them (`usize::MAX` for
/// the root range) so a pop by a different worker is recorded as a steal.
pub(crate) fn cilk_for_labeled<F>(
    pool: &ThreadPool,
    range: Range<usize>,
    grain: usize,
    runtime: &'static str,
    body: F,
) where
    F: Fn(Range<usize>, WorkerCtx) + Sync,
{
    if range.is_empty() {
        return;
    }
    let body = crate::trace::timed_chunk(runtime, "simple", body);
    let grain = grain.max(1);
    let total = range.len();
    let injector: Injector<(Range<usize>, usize)> = Injector::new();
    injector.push((range, usize::MAX));
    let remaining = AtomicUsize::new(total);
    // A panicking leaf would strand `remaining` above zero and leave the
    // other workers spinning forever; the abort flag releases them, and
    // the panic itself is re-raised through the pool to the caller.
    let aborted = AtomicBool::new(false);

    pool.run(|ctx| {
        let mut local: Vec<Range<usize>> = Vec::new();
        'outer: while remaining.load(Ordering::Acquire) > 0 {
            if aborted.load(Ordering::Acquire) {
                break;
            }
            // Take the deepest local range, else steal from the injector.
            let task = match local.pop() {
                Some(r) => r,
                None => loop {
                    match injector.steal() {
                        Steal::Success((r, owner)) => {
                            if owner != ctx.id && owner != usize::MAX {
                                crate::trace::emit_steal(runtime, ctx.id, owner);
                            }
                            break r;
                        }
                        Steal::Empty => {
                            if remaining.load(Ordering::Acquire) == 0
                                || aborted.load(Ordering::Acquire)
                            {
                                break 'outer;
                            }
                            std::hint::spin_loop();
                            std::thread::yield_now();
                        }
                        Steal::Retry => {}
                    }
                },
            };
            // Split down to the grain, keeping the front half local-ish and
            // publishing the back half for thieves.
            let mut r = task;
            while r.len() > grain {
                let mid = r.start + r.len() / 2;
                let back = mid..r.end;
                // Publish generously while the pool is likely hungry,
                // otherwise keep it on the local stack.
                if injector.is_empty() {
                    injector.push((back, ctx.id));
                } else {
                    local.push(back);
                }
                r = r.start..mid;
            }
            let len = r.len();
            if let Err(p) = catch_unwind(AssertUnwindSafe(|| body(r, ctx))) {
                aborted.store(true, Ordering::Release);
                resume_unwind(p);
            }
            remaining.fetch_sub(len, Ordering::AcqRel);
        }
    });
}

/// Fork–join on two independent closures, Cilk's `spawn`/`sync` pair.
/// Runs on plain scoped threads (it is used standalone, not inside pool
/// regions — the paper's kernels only need `cilk_for`).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().expect("joined closure panicked");
        (ra, rb)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn covers_every_index_once() {
        let pool = ThreadPool::new(6);
        for grain in [1, 3, 64, 10_000] {
            let n = 2777;
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            cilk_for(&pool, 0..n, grain, |r, _| {
                for i in r {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "grain {grain} missed/duplicated"
            );
        }
    }

    #[test]
    fn leaves_respect_grain() {
        let pool = ThreadPool::new(4);
        let max_leaf = AtomicUsize::new(0);
        cilk_for(&pool, 0..10_000, 100, |r, _| {
            max_leaf.fetch_max(r.len(), Ordering::Relaxed);
        });
        assert!(max_leaf.load(Ordering::Relaxed) <= 100);
    }

    #[test]
    fn sum_matches_sequential() {
        let pool = ThreadPool::new(8);
        let sum = AtomicU64::new(0);
        cilk_for(&pool, 10..5000, default_grain(4990, 8), |r, _| {
            let s: u64 = r.map(|i| i as u64).sum();
            sum.fetch_add(s, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), (10..5000u64).sum::<u64>());
    }

    #[test]
    fn empty_and_tiny_ranges() {
        let pool = ThreadPool::new(3);
        let hits = AtomicUsize::new(0);
        cilk_for(&pool, 0..0, 10, |_, _| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 0);
        cilk_for(&pool, 0..1, 10, |r, _| {
            hits.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = join(|| 2 + 2, || "ok".len());
        assert_eq!((a, b), (4, 2));
    }

    #[test]
    fn default_grain_sane() {
        assert_eq!(default_grain(0, 4), 1);
        assert_eq!(default_grain(800, 4), 25);
        assert!(default_grain(7, 64) >= 1);
    }
}
