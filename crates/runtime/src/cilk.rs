//! Cilk Plus-style loops: recursive range splitting executed by work
//! stealing (§II-B of the paper).
//!
//! `cilk for` in Cilk Plus recursively spawns halves of the iteration space
//! until a grain size is reached; idle workers steal the *shallowest*
//! (largest) pending subranges. We reproduce that discipline with a
//! per-worker Chase–Lev deque ([`crate::deque::WsDeque`]): the owner works
//! the deep LIFO end (cache-warm subranges), thieves take the shallow FIFO
//! end (the oldest, largest pieces). A shared lock-free
//! [`Injector`](crate::injector::Injector) seeds the root range and absorbs
//! deque overflow, so no path through the loop takes a lock. This preserves
//! Cilk's key properties — geometric task sizes, grain-bounded leaves,
//! steals take big pieces — while the hand-off itself is CAS-only.

use crate::deque::WsDeque;
use crate::injector::{Injector, Steal};
use crate::pool::{ThreadPool, WorkerCtx};
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Per-worker deque capacity for the splitting engines. Splitting one range
/// down to the grain pushes at most ⌈log₂(n/grain)⌉ back-halves (~64 for
/// any realistic loop); overflow beyond this spills to the shared injector
/// rather than blocking.
pub(crate) const ENGINE_DEQUE_CAP: usize = 256;

/// Publish the contention telemetry a loop accumulated (lost steal CASes on
/// the worker deques and the injector) to the metrics registry.
pub(crate) fn record_cas_retries<T>(deques: &[WsDeque<T>], injector_retries: u64) {
    if !mic_metrics::enabled() {
        return;
    }
    let total: u64 = deques.iter().map(|d| d.retries()).sum::<u64>() + injector_retries;
    if total > 0 {
        mic_metrics::counter(
            "mic_runtime_cas_retries_total",
            "Lost steal CASes on work-stealing deques and injectors",
            &[],
        )
        .add(total as f64);
    }
}

/// Default grain: like Cilk Plus, aim for ~8 leaves per worker so steals
/// stay rare but balance is achievable.
pub fn default_grain(n: usize, threads: usize) -> usize {
    (n / (8 * threads.max(1))).max(1)
}

/// `cilk_for` over `range` with the given `grain` (use
/// [`default_grain`] to mimic Cilk's automatic choice). `body` receives
/// leaf subranges of length `<= grain`.
pub fn cilk_for<F>(pool: &ThreadPool, range: Range<usize>, grain: usize, body: F)
where
    F: Fn(Range<usize>, WorkerCtx) + Sync,
{
    cilk_for_labeled(pool, range, grain, "cilk", body);
}

/// The splitting engine behind [`cilk_for`], labeled for tracing. TBB's
/// simple partitioner shares the engine but reports as "tbb". Injected
/// ranges carry the id of the worker that published them (`usize::MAX` for
/// the root range) so a pop by a different worker is recorded as a steal.
pub(crate) fn cilk_for_labeled<F>(
    pool: &ThreadPool,
    range: Range<usize>,
    grain: usize,
    runtime: &'static str,
    body: F,
) where
    F: Fn(Range<usize>, WorkerCtx) + Sync,
{
    if range.is_empty() {
        return;
    }
    let body = crate::trace::timed_chunk(runtime, "simple", body);
    let grain = grain.max(1);
    let total = range.len();
    let threads = pool.num_threads();
    // Per-worker Chase–Lev deques, indexed by pool worker id; the shared
    // injector carries the root range and any deque overflow.
    let deques: Vec<WsDeque<Range<usize>>> = (0..threads)
        .map(|_| WsDeque::new(ENGINE_DEQUE_CAP))
        .collect();
    let injector: Injector<(Range<usize>, usize)> = Injector::new();
    injector.push((range, usize::MAX));
    let remaining = AtomicUsize::new(total);
    // A panicking leaf would strand `remaining` above zero and leave the
    // other workers spinning forever; the abort flag releases them, and
    // the panic itself is re-raised through the pool to the caller.
    let aborted = AtomicBool::new(false);

    pool.run(|ctx| {
        let mine = &deques[ctx.id];
        'outer: while remaining.load(Ordering::Acquire) > 0 {
            if aborted.load(Ordering::Acquire) {
                break;
            }
            // Take the deepest range from our own deque, else steal: first
            // from the injector (root/overflow), then from siblings' FIFO
            // ends — the oldest, largest subranges, Cilk's discipline.
            //
            // SAFETY (pop/push): worker `ctx.id` is the sole owner of
            // `deques[ctx.id]` — ids are unique within the region.
            let task = match unsafe { mine.pop() } {
                Some(r) => r,
                None => loop {
                    match injector.steal() {
                        Steal::Success((r, owner)) => {
                            if owner != ctx.id && owner != usize::MAX {
                                crate::trace::emit_steal(runtime, ctx.id, owner);
                            }
                            break r;
                        }
                        Steal::Retry => {
                            std::thread::yield_now();
                            continue;
                        }
                        Steal::Empty => {}
                    }
                    let mut found = None;
                    for k in 1..threads {
                        let victim = (ctx.id + k) % threads;
                        match deques[victim].steal() {
                            Steal::Success(r) => {
                                crate::trace::emit_steal(runtime, ctx.id, victim);
                                found = Some(r);
                                break;
                            }
                            // A lost CAS means the victim is active; move
                            // on to the next one rather than re-hammering.
                            Steal::Retry | Steal::Empty => {}
                        }
                    }
                    if let Some(r) = found {
                        break r;
                    }
                    if remaining.load(Ordering::Acquire) == 0 || aborted.load(Ordering::Acquire) {
                        break 'outer;
                    }
                    std::hint::spin_loop();
                    std::thread::yield_now();
                },
            };
            // Split down to the grain, keeping the front half and pushing
            // the back half on our own deque, where thieves can take it
            // from the FIFO end. A full deque spills to the injector.
            let mut r = task;
            while r.len() > grain {
                let mid = r.start + r.len() / 2;
                let back = mid..r.end;
                if let Err(back) = unsafe { mine.push(back) } {
                    injector.push((back, ctx.id));
                }
                r = r.start..mid;
            }
            let len = r.len();
            if let Err(p) = catch_unwind(AssertUnwindSafe(|| body(r, ctx))) {
                aborted.store(true, Ordering::Release);
                resume_unwind(p);
            }
            remaining.fetch_sub(len, Ordering::AcqRel);
        }
    });
    record_cas_retries(&deques, injector.retries());
}

/// Fork–join on two independent closures, Cilk's `spawn`/`sync` pair.
/// Runs on plain scoped threads (it is used standalone, not inside pool
/// regions — the paper's kernels only need `cilk_for`).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().expect("joined closure panicked");
        (ra, rb)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn covers_every_index_once() {
        let pool = ThreadPool::new(6);
        for grain in [1, 3, 64, 10_000] {
            let n = 2777;
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            cilk_for(&pool, 0..n, grain, |r, _| {
                for i in r {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "grain {grain} missed/duplicated"
            );
        }
    }

    #[test]
    fn leaves_respect_grain() {
        let pool = ThreadPool::new(4);
        let max_leaf = AtomicUsize::new(0);
        cilk_for(&pool, 0..10_000, 100, |r, _| {
            max_leaf.fetch_max(r.len(), Ordering::Relaxed);
        });
        assert!(max_leaf.load(Ordering::Relaxed) <= 100);
    }

    #[test]
    fn sum_matches_sequential() {
        let pool = ThreadPool::new(8);
        let sum = AtomicU64::new(0);
        cilk_for(&pool, 10..5000, default_grain(4990, 8), |r, _| {
            let s: u64 = r.map(|i| i as u64).sum();
            sum.fetch_add(s, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), (10..5000u64).sum::<u64>());
    }

    #[test]
    fn empty_and_tiny_ranges() {
        let pool = ThreadPool::new(3);
        let hits = AtomicUsize::new(0);
        cilk_for(&pool, 0..0, 10, |_, _| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 0);
        cilk_for(&pool, 0..1, 10, |r, _| {
            hits.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = join(|| 2 + 2, || "ok".len());
        assert_eq!((a, b), (4, 2));
    }

    #[test]
    fn default_grain_sane() {
        assert_eq!(default_grain(0, 4), 1);
        assert_eq!(default_grain(800, 4), 25);
        assert!(default_grain(7, 64) >= 1);
    }
}
