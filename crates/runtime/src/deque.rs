//! A Chase–Lev work-stealing deque: the per-worker queue behind the Cilk
//! and TBB engines.
//!
//! One worker (the *owner*) pushes and pops at the bottom — plain loads
//! and stores, no RMW on the fast path — while any number of thieves
//! `steal` from the top with a CAS. The owner end is LIFO (depth-first,
//! cache-warm subranges), the thief end is FIFO (the oldest, largest
//! subrange), which is exactly Cilk's "steal the shallowest frame"
//! discipline.
//!
//! The memory-ordering protocol is the C11 one from Lê, Pop, Cohen &
//! Zappa Nardelli, "Correct and Efficient Work-Stealing for Weak Memory
//! Models" (PPoPP'13): `SeqCst` fences order the owner's bottom
//! decrement against thief top reads, and the single-element race is
//! resolved by a `SeqCst` CAS on `top`. DESIGN.md ("Lock-free
//! structures") documents each ordering.
//!
//! The buffer is fixed-capacity (no growth): growing a Chase–Lev deque
//! safely requires epoch reclamation of the old buffer, and the runtimes
//! have a natural overflow valve — the shared [`crate::injector`] — so a
//! full deque simply spills there. `push` returns the task back on
//! overflow instead of blocking or reallocating.

use crate::injector::Steal;
use crossbeam_utils::CachePadded;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicI64, AtomicU64, Ordering};

/// A fixed-capacity Chase–Lev deque.
///
/// Ownership discipline: exactly one thread at a time may call the
/// `unsafe` owner ops ([`push`](WsDeque::push) / [`pop`](WsDeque::pop));
/// any thread may call [`steal`](WsDeque::steal). The runtimes uphold
/// this by indexing a `Vec<WsDeque<_>>` with the pool worker id.
pub struct WsDeque<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: i64,
    /// Thief end. Monotonically increasing.
    top: CachePadded<AtomicI64>,
    /// Owner end. Only the owner writes it.
    bottom: CachePadded<AtomicI64>,
    /// Steal CASes lost to a sibling thief or to the owner's last-element
    /// pop (contention telemetry).
    retries: AtomicU64,
}

// SAFETY: the slot at a given index is written by the owner before the
// Release publication of `bottom`, and read by at most one other thread
// (the winner of the `top` CAS) after Acquire loads; the ownership
// discipline (documented on the type) keeps owner ops single-threaded.
unsafe impl<T: Send> Send for WsDeque<T> {}
unsafe impl<T: Send> Sync for WsDeque<T> {}

impl<T> WsDeque<T> {
    /// A deque holding at most `capacity` tasks (rounded up to a power of
    /// two, minimum 2).
    pub fn new(capacity: usize) -> WsDeque<T> {
        let cap = capacity.max(2).next_power_of_two();
        WsDeque {
            buf: (0..cap)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
            mask: cap as i64 - 1,
            top: CachePadded::new(AtomicI64::new(0)),
            bottom: CachePadded::new(AtomicI64::new(0)),
            retries: AtomicU64::new(0),
        }
    }

    #[inline]
    fn slot(&self, i: i64) -> *mut MaybeUninit<T> {
        self.buf[(i & self.mask) as usize].get()
    }

    /// Owner: push a task at the bottom. Returns `Err(task)` when the
    /// deque is full (spill it to the injector).
    ///
    /// # Safety
    /// Must only be called by the deque's current owner thread, never
    /// concurrently with [`pop`](WsDeque::pop).
    #[inline]
    pub unsafe fn push(&self, task: T) -> Result<(), T> {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        if b - t > self.mask {
            return Err(task); // full
        }
        // SAFETY: index `b` is outside the live window [t, b), and any
        // previous occupant of the slot was consumed a full lap ago.
        unsafe { (*self.slot(b)).write(task) };
        // Publish: thieves read the slot only after an Acquire load of
        // `bottom` observes this Release store.
        self.bottom.store(b + 1, Ordering::Release);
        Ok(())
    }

    /// Owner: pop the most recently pushed task (LIFO end).
    ///
    /// # Safety
    /// Must only be called by the deque's current owner thread.
    #[inline]
    pub unsafe fn pop(&self) -> Option<T> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        // Reserve the bottom slot *before* reading `top`: the SeqCst
        // fence makes the store visible to any thief whose top read
        // follows, closing the both-take-the-last-element window.
        self.bottom.store(b, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t > b {
            // Already empty: undo the reservation.
            self.bottom.store(b + 1, Ordering::Relaxed);
            return None;
        }
        // SAFETY: slot `b` is inside the live window and this thread
        // wrote it (owner ops are single-threaded).
        let task = unsafe { (*self.slot(b)).assume_init_read() };
        if t == b {
            // Last element: race the thieves for it with a CAS on top.
            if self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_err()
            {
                // A thief won and will read the slot; forget our copy.
                std::mem::forget(task);
                self.bottom.store(b + 1, Ordering::Relaxed);
                return None;
            }
            self.bottom.store(b + 1, Ordering::Relaxed);
            return Some(task);
        }
        Some(task)
    }

    /// Thief: take the oldest task (FIFO end). Any thread may call this.
    #[inline]
    pub fn steal(&self) -> Steal<T> {
        let t = self.top.load(Ordering::Acquire);
        // Order this thief's `top` read before its `bottom` read against
        // the owner's pop (which stores `bottom` then fences).
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        // SAFETY: read the candidate *before* the CAS: winning the CAS
        // retroactively licenses the copy; losing it means another thief
        // or the owner consumed the slot, so the copy must be forgotten,
        // not dropped.
        let task = unsafe { (*self.slot(t)).assume_init_read() };
        if self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_err()
        {
            std::mem::forget(task);
            self.retries.fetch_add(1, Ordering::Relaxed);
            return Steal::Retry;
        }
        Steal::Success(task)
    }

    /// Approximate number of queued tasks (racy, advisory).
    pub fn len(&self) -> usize {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        (b - t).max(0) as usize
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lost steal CASes since construction (contention telemetry).
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }
}

impl<T> Drop for WsDeque<T> {
    fn drop(&mut self) {
        // Exclusive access: drop the live window [top, bottom).
        let t = *self.top.get_mut();
        let b = *self.bottom.get_mut();
        for i in t..b {
            // SAFETY: slots in the live window hold initialized tasks.
            unsafe { (*self.slot(i)).assume_init_drop() };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn owner_lifo_thief_fifo() {
        let d: WsDeque<u32> = WsDeque::new(8);
        unsafe {
            d.push(1).unwrap();
            d.push(2).unwrap();
            d.push(3).unwrap();
        }
        // Thief takes the oldest …
        assert_eq!(d.steal(), Steal::Success(1));
        // … owner takes the newest.
        assert_eq!(unsafe { d.pop() }, Some(3));
        assert_eq!(unsafe { d.pop() }, Some(2));
        assert_eq!(unsafe { d.pop() }, None);
        assert!(d.steal().is_empty());
    }

    #[test]
    fn overflow_returns_task() {
        let d: WsDeque<u32> = WsDeque::new(2);
        unsafe {
            d.push(1).unwrap();
            d.push(2).unwrap();
            assert_eq!(d.push(3), Err(3));
            // Freeing one slot re-admits.
            assert_eq!(d.pop(), Some(2));
            d.push(3).unwrap();
        }
    }

    #[test]
    fn wraparound_reuses_slots() {
        let d: WsDeque<usize> = WsDeque::new(4);
        for round in 0..100 {
            unsafe {
                d.push(round).unwrap();
                assert_eq!(d.pop(), Some(round));
            }
        }
        assert!(d.is_empty());
    }

    #[test]
    fn storm_every_item_exactly_once() {
        // One owner pushing + popping, three thieves stealing; every
        // pushed item must surface exactly once across all takers.
        let d: Arc<WsDeque<usize>> = Arc::new(WsDeque::new(64));
        let n = 20_000usize;
        let taken = Arc::new(AtomicUsize::new(0));
        let sum = Arc::new(AtomicUsize::new(0));
        let done = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let d = Arc::clone(&d);
            let taken = Arc::clone(&taken);
            let sum = Arc::clone(&sum);
            let done = Arc::clone(&done);
            handles.push(std::thread::spawn(move || loop {
                match d.steal() {
                    Steal::Success(v) => {
                        sum.fetch_add(v, Ordering::Relaxed);
                        taken.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {
                        if done.load(Ordering::Acquire) == 1 && d.is_empty() {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            }));
        }
        // Owner: push everything, popping when full; drain at the end.
        let mut next = 0usize;
        while next < n {
            // SAFETY: this thread is the sole owner.
            match unsafe { d.push(next) } {
                Ok(()) => next += 1,
                Err(_) => {
                    if let Some(v) = unsafe { d.pop() } {
                        sum.fetch_add(v, Ordering::Relaxed);
                        taken.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        while let Some(v) = unsafe { d.pop() } {
            sum.fetch_add(v, Ordering::Relaxed);
            taken.fetch_add(1, Ordering::Relaxed);
        }
        done.store(1, Ordering::Release);
        for h in handles {
            h.join().unwrap();
        }
        // Thieves may have drained concurrently with the owner's final
        // drain; together they must account for every item exactly once.
        assert_eq!(taken.load(Ordering::Relaxed), n);
        assert_eq!(sum.load(Ordering::Relaxed), n * (n - 1) / 2);
    }
}
