//! The runtime-model axis of the paper's experiments: which programming
//! model (and which of its scheduling knobs) drives a parallel loop.

use crate::cilk::cilk_for;
use crate::openmp::{parallel_for_chunks, Schedule};
use crate::pool::{ThreadPool, WorkerCtx};
use crate::tbb::{tbb_parallel_for, Partitioner};
use std::ops::Range;

/// Which runtime drives a parallel loop — the comparison axis of
/// Figures 1 and 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RuntimeModel {
    /// OpenMP `parallel for` with the given schedule; thread-id-indexed
    /// local storage allocated up front (§IV-A1 of the paper).
    OpenMp(Schedule),
    /// Cilk Plus `cilk_for` with a holder view for local storage,
    /// initialized on first touch (§IV-A2, the recommended way).
    CilkHolder { grain: usize },
    /// Cilk Plus `cilk_for` indexing local storage by worker number —
    /// possible but discouraged; kept for the Figure 1b comparison.
    CilkWorkerId { grain: usize },
    /// TBB `parallel_for` with the given partitioner;
    /// `enumerable_thread_specific`-style local storage (§IV-A3).
    Tbb(Partitioner),
}

impl RuntimeModel {
    /// The best-performing configuration per model reported by the paper
    /// for the coloring kernel: OpenMP dynamic/100, Cilk holder/100, TBB
    /// simple/40.
    pub fn paper_best() -> [RuntimeModel; 3] {
        [
            RuntimeModel::OpenMp(Schedule::Dynamic { chunk: 100 }),
            RuntimeModel::CilkHolder { grain: 100 },
            RuntimeModel::Tbb(Partitioner::Simple { grain: 40 }),
        ]
    }

    /// Whether thread-local storage is initialized eagerly (OpenMP /
    /// worker-id styles) or on first touch (holder / TBB).
    pub fn eager_tls(&self) -> bool {
        matches!(
            self,
            RuntimeModel::OpenMp(_) | RuntimeModel::CilkWorkerId { .. }
        )
    }

    /// A short display name ("OpenMP", "CilkPlus", "TBB").
    pub fn family(&self) -> &'static str {
        match self {
            RuntimeModel::OpenMp(_) => "OpenMP",
            RuntimeModel::CilkHolder { .. } | RuntimeModel::CilkWorkerId { .. } => "CilkPlus",
            RuntimeModel::Tbb(_) => "TBB",
        }
    }

    /// Run `body` over `0..len` chunk-wise under this model.
    pub fn drive<F>(&self, pool: &ThreadPool, len: usize, body: F)
    where
        F: Fn(Range<usize>, WorkerCtx) + Sync,
    {
        match *self {
            RuntimeModel::OpenMp(sched) => parallel_for_chunks(pool, 0..len, sched, body),
            RuntimeModel::CilkHolder { grain } | RuntimeModel::CilkWorkerId { grain } => {
                cilk_for(pool, 0..len, grain, body)
            }
            RuntimeModel::Tbb(part) => tbb_parallel_for(pool, 0..len, part, body),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn all_models_cover_range() {
        let pool = ThreadPool::new(4);
        let all = [
            RuntimeModel::OpenMp(Schedule::Guided { min_chunk: 3 }),
            RuntimeModel::CilkHolder { grain: 10 },
            RuntimeModel::CilkWorkerId { grain: 10 },
            RuntimeModel::Tbb(Partitioner::Affinity),
        ];
        for m in all {
            let n = 500;
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            m.drive(&pool, n, |r, _| {
                for i in r {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1), "{m:?}");
        }
    }

    #[test]
    fn families_and_tls_style() {
        assert_eq!(
            RuntimeModel::OpenMp(Schedule::dynamic100()).family(),
            "OpenMP"
        );
        assert_eq!(RuntimeModel::CilkHolder { grain: 1 }.family(), "CilkPlus");
        assert_eq!(RuntimeModel::Tbb(Partitioner::Auto).family(), "TBB");
        assert!(RuntimeModel::OpenMp(Schedule::dynamic100()).eager_tls());
        assert!(!RuntimeModel::CilkHolder { grain: 1 }.eager_tls());
        assert!(RuntimeModel::CilkWorkerId { grain: 1 }.eager_tls());
    }
}
