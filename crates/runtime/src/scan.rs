//! Parallel prefix sums (scan) — the primitive behind SNAP's queue merge:
//! per-thread queue lengths are exclusive-scanned to give every thread its
//! write offset into the global queue, then all copies proceed in parallel.
//!
//! The implementation is the classic two-pass block scan: block-local
//! reductions in parallel, a (short) sequential scan over block totals,
//! then parallel local scans seeded with the block offsets.

use crate::openmp::{parallel_for_chunks, Schedule};
use crate::pool::ThreadPool;
use std::sync::atomic::{AtomicU64, Ordering};

/// Exclusive prefix sum of `values` in place (`values[i]` becomes the sum
/// of the original `values[..i]`); returns the total.
pub fn exclusive_scan_seq(values: &mut [u64]) -> u64 {
    let mut acc = 0u64;
    for v in values.iter_mut() {
        let x = *v;
        *v = acc;
        acc += x;
    }
    acc
}

/// Parallel exclusive prefix sum; semantics identical to
/// [`exclusive_scan_seq`]. Uses blocks of roughly `n / (4 t)` elements.
pub fn exclusive_scan(pool: &ThreadPool, values: &mut [u64]) -> u64 {
    let n = values.len();
    let t = pool.num_threads();
    if n < 4 * t || t == 1 {
        return exclusive_scan_seq(values);
    }
    let block = n.div_ceil(4 * t);
    let num_blocks = n.div_ceil(block);

    // Pass 1: block totals.
    let totals: Vec<AtomicU64> = (0..num_blocks).map(|_| AtomicU64::new(0)).collect();
    {
        let values_ref = &*values;
        let totals_ref = &totals;
        parallel_for_chunks(
            pool,
            0..num_blocks,
            Schedule::Dynamic { chunk: 1 },
            |blocks, _| {
                for b in blocks {
                    let lo = b * block;
                    let hi = (lo + block).min(n);
                    let sum: u64 = values_ref[lo..hi].iter().sum();
                    totals_ref[b].store(sum, Ordering::Relaxed);
                }
            },
        );
    }
    // Pass 2: sequential scan over the (few) block totals.
    let mut offsets: Vec<u64> = totals.into_iter().map(|a| a.into_inner()).collect();
    let grand_total = exclusive_scan_seq(&mut offsets);
    // Pass 3: local scans seeded with the block offsets. Blocks are
    // disjoint, so hand out raw sub-slices.
    struct Ptr(*mut u64);
    unsafe impl Sync for Ptr {}
    let base = Ptr(values.as_mut_ptr());
    {
        let offsets_ref = &offsets;
        parallel_for_chunks(
            pool,
            0..num_blocks,
            Schedule::Dynamic { chunk: 1 },
            |blocks, _| {
                let _ = &base;
                for b in blocks {
                    let lo = b * block;
                    let hi = (lo + block).min(n);
                    // SAFETY: block b's range [lo, hi) is touched by exactly
                    // one task.
                    let slice = unsafe { std::slice::from_raw_parts_mut(base.0.add(lo), hi - lo) };
                    let mut acc = offsets_ref[b];
                    for v in slice {
                        let x = *v;
                        *v = acc;
                        acc += x;
                    }
                }
            },
        );
    }
    grand_total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential() {
        let pool = ThreadPool::new(5);
        for n in [0usize, 1, 7, 100, 1023, 10_000] {
            let original: Vec<u64> = (0..n as u64).map(|i| (i * 7) % 13).collect();
            let mut a = original.clone();
            let mut b = original.clone();
            let ta = exclusive_scan_seq(&mut a);
            let tb = exclusive_scan(&pool, &mut b);
            assert_eq!(a, b, "n = {n}");
            assert_eq!(ta, tb);
        }
    }

    #[test]
    fn scan_of_ones_is_identity_index() {
        let pool = ThreadPool::new(4);
        let mut v = vec![1u64; 500];
        let total = exclusive_scan(&pool, &mut v);
        assert_eq!(total, 500);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i as u64);
        }
    }

    #[test]
    fn queue_merge_offsets_use_case() {
        // The SNAP pattern: per-thread queue lengths → write offsets.
        let pool = ThreadPool::new(4);
        let mut lens = vec![3u64, 0, 5, 2];
        let total = exclusive_scan(&pool, &mut lens);
        assert_eq!(lens, vec![0, 3, 3, 8]);
        assert_eq!(total, 10);
    }
}
