//! OpenMP-style `parallel for` with the three scheduling policies of
//! §II-A of the paper.

use crate::pool::{ThreadPool, WorkerCtx};
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// OpenMP loop scheduling policy.
///
/// The paper's coloring results (Figure 1a) compare all three; `dynamic`
/// with chunk 100 wins at scale because its per-chunk cost is a single
/// fetch-and-add while its load balance tracks the irregular per-vertex
/// work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Schedule {
    /// Iterations pre-partitioned; with `chunk = None` each thread gets one
    /// contiguous interval, otherwise chunks are dealt round-robin.
    Static { chunk: Option<usize> },
    /// Chunks handed out first-come-first-served from a shared counter.
    Dynamic { chunk: usize },
    /// Chunk size starts at `remaining / (2 t)` and decays geometrically,
    /// never below `min_chunk`.
    Guided { min_chunk: usize },
}

impl Schedule {
    /// The paper's best-performing configuration for the coloring kernel.
    pub fn dynamic100() -> Self {
        Schedule::Dynamic { chunk: 100 }
    }
}

/// `#pragma omp parallel for schedule(...)` over `range`, invoking `body`
/// per iteration index.
///
/// ```
/// use mic_runtime::{parallel_for, Schedule, ThreadPool};
/// use std::sync::atomic::{AtomicU64, Ordering};
/// let pool = ThreadPool::new(4);
/// let sum = AtomicU64::new(0);
/// parallel_for(&pool, 0..1000, Schedule::Dynamic { chunk: 64 }, |i, _ctx| {
///     sum.fetch_add(i as u64, Ordering::Relaxed);
/// });
/// assert_eq!(sum.into_inner(), 499_500);
/// ```
pub fn parallel_for<F>(pool: &ThreadPool, range: Range<usize>, schedule: Schedule, body: F)
where
    F: Fn(usize, WorkerCtx) + Sync,
{
    parallel_for_chunks(pool, range, schedule, |chunk, ctx| {
        for i in chunk {
            body(i, ctx);
        }
    });
}

/// Chunk-granular variant: `body` receives whole index ranges. This is what
/// the kernels use — it mirrors how the real runtimes hand out chunks and
/// is the granularity at which the simulator models scheduling.
pub fn parallel_for_chunks<F>(pool: &ThreadPool, range: Range<usize>, schedule: Schedule, body: F)
where
    F: Fn(Range<usize>, WorkerCtx) + Sync,
{
    if range.is_empty() {
        return;
    }
    let sched_label = match schedule {
        Schedule::Static { .. } => "static",
        Schedule::Dynamic { .. } => "dynamic",
        Schedule::Guided { .. } => "guided",
    };
    let body = crate::trace::timed_chunk("omp", sched_label, body);
    let t = pool.num_threads();
    let (start, end) = (range.start, range.end);
    let n = end - start;
    match schedule {
        Schedule::Static { chunk: None } => {
            // One contiguous interval per thread, remainder spread over the
            // first threads (the usual OpenMP static split).
            pool.run(|ctx| {
                let base = n / t;
                let extra = n % t;
                let lo = start + ctx.id * base + ctx.id.min(extra);
                let len = base + usize::from(ctx.id < extra);
                if len > 0 {
                    body(lo..lo + len, ctx);
                }
            });
        }
        Schedule::Static { chunk: Some(chunk) } => {
            let chunk = chunk.max(1);
            pool.run(|ctx| {
                let mut c = ctx.id;
                loop {
                    let lo = start + c * chunk;
                    if lo >= end {
                        break;
                    }
                    body(lo..(lo + chunk).min(end), ctx);
                    c += t;
                }
            });
        }
        Schedule::Dynamic { chunk } => {
            let chunk = chunk.max(1);
            let counter = AtomicUsize::new(start);
            pool.run(|ctx| loop {
                let lo = counter.fetch_add(chunk, Ordering::Relaxed);
                if lo >= end {
                    break;
                }
                body(lo..(lo + chunk).min(end), ctx);
            });
        }
        Schedule::Guided { min_chunk } => {
            let min_chunk = min_chunk.max(1);
            let counter = AtomicUsize::new(start);
            pool.run(|ctx| loop {
                let mut lo = counter.load(Ordering::Relaxed);
                let hi = loop {
                    if lo >= end {
                        return;
                    }
                    let remaining = end - lo;
                    let chunk = (remaining / (2 * t)).max(min_chunk).min(remaining);
                    match counter.compare_exchange_weak(
                        lo,
                        lo + chunk,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => break lo + chunk,
                        Err(cur) => lo = cur,
                    }
                };
                body(lo..hi, ctx);
            });
        }
    }
}

/// Map-reduce over a range: `map(i)` per iteration, combined pairwise with
/// the associative `reduce`, starting from `identity` per chunk. The
/// OpenMP `reduction(...)` clause as a function.
///
/// ```
/// use mic_runtime::{parallel_reduce, Schedule, ThreadPool};
/// let pool = ThreadPool::new(4);
/// let max = parallel_reduce(
///     &pool, 0..1000, Schedule::Dynamic { chunk: 64 },
///     u64::MIN, |i| (i as u64 * 2654435761) % 1013, u64::max,
/// );
/// assert_eq!(max, (0..1000u64).map(|i| (i * 2654435761) % 1013).max().unwrap());
/// ```
pub fn parallel_reduce<T, M, R>(
    pool: &ThreadPool,
    range: Range<usize>,
    schedule: Schedule,
    identity: T,
    map: M,
    reduce: R,
) -> T
where
    T: Clone + Send + Sync + 'static,
    M: Fn(usize) -> T + Sync,
    R: Fn(T, T) -> T + Sync,
{
    let mut partials: crate::tls::PerWorker<T> = {
        let identity = identity.clone();
        crate::tls::PerWorker::new(pool.num_threads(), move |_| identity.clone())
    };
    {
        let partials_ref = &partials;
        let map_ref = &map;
        let reduce_ref = &reduce;
        parallel_for_chunks(pool, range, schedule, |chunk, ctx| {
            let mut acc: Option<T> = None;
            for i in chunk {
                let v = map_ref(i);
                acc = Some(match acc.take() {
                    None => v,
                    Some(a) => reduce_ref(a, v),
                });
            }
            if let Some(v) = acc {
                partials_ref.with(ctx, |p| {
                    *p = reduce_ref(p.clone(), v);
                });
            }
        });
    }
    partials.take_values().into_iter().fold(identity, &reduce)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    fn schedules() -> Vec<Schedule> {
        vec![
            Schedule::Static { chunk: None },
            Schedule::Static { chunk: Some(1) },
            Schedule::Static { chunk: Some(7) },
            Schedule::Dynamic { chunk: 1 },
            Schedule::Dynamic { chunk: 13 },
            Schedule::Guided { min_chunk: 1 },
            Schedule::Guided { min_chunk: 5 },
        ]
    }

    #[test]
    fn every_index_exactly_once_all_schedules() {
        let pool = ThreadPool::new(5);
        for sched in schedules() {
            let n = 1003;
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            parallel_for(&pool, 0..n, sched, |i, _| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "{sched:?} missed or duplicated indices"
            );
        }
    }

    #[test]
    fn sum_matches_sequential() {
        let pool = ThreadPool::new(4);
        let expected: u64 = (0..10_000u64).map(|i| i * 3).sum();
        for sched in schedules() {
            let sum = AtomicU64::new(0);
            parallel_for(&pool, 0..10_000, sched, |i, _| {
                sum.fetch_add(i as u64 * 3, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), expected, "{sched:?}");
        }
    }

    #[test]
    fn nonzero_range_start() {
        let pool = ThreadPool::new(3);
        for sched in schedules() {
            let sum = AtomicU64::new(0);
            parallel_for(&pool, 100..200, sched, |i, _| {
                sum.fetch_add(i as u64, Ordering::Relaxed);
            });
            assert_eq!(
                sum.load(Ordering::Relaxed),
                (100..200u64).sum::<u64>(),
                "{sched:?}"
            );
        }
    }

    #[test]
    fn empty_range_is_noop() {
        let pool = ThreadPool::new(2);
        for sched in schedules() {
            let hits = AtomicUsize::new(0);
            parallel_for(&pool, 5..5, sched, |_, _| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(hits.load(Ordering::Relaxed), 0);
        }
    }

    #[test]
    fn range_smaller_than_thread_count() {
        let pool = ThreadPool::new(8);
        for sched in schedules() {
            let hits = AtomicUsize::new(0);
            parallel_for(&pool, 0..3, sched, |_, _| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(hits.load(Ordering::Relaxed), 3, "{sched:?}");
        }
    }

    #[test]
    fn chunks_are_disjoint_and_cover() {
        let pool = ThreadPool::new(4);
        for sched in schedules() {
            let n = 517;
            let seen: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            parallel_for_chunks(&pool, 0..n, sched, |chunk, _| {
                assert!(!chunk.is_empty(), "empty chunk handed out by {sched:?}");
                for i in chunk {
                    seen[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(
                seen.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "{sched:?}"
            );
        }
    }

    #[test]
    fn static_no_chunk_is_contiguous_per_thread() {
        let pool = ThreadPool::new(4);
        // Record (worker, chunk) pairs; each worker must appear at most once.
        let firsts: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(usize::MAX)).collect();
        parallel_for_chunks(
            &pool,
            0..100,
            Schedule::Static { chunk: None },
            |chunk, ctx| {
                let prev = firsts[ctx.id].swap(chunk.start, Ordering::Relaxed);
                assert_eq!(prev, usize::MAX, "worker {0} saw two chunks", ctx.id);
                assert_eq!(chunk.len(), 25);
            },
        );
    }
}
