//! Thread-local storage and reductions in the styles of all three models.
//!
//! The paper's coloring kernel needs a per-thread `forbiddenColors` array
//! and a max-reduction for the color count, and implements them three ways
//! (§IV-A): thread-id-indexed arrays (OpenMP), holders/reducers (Cilk Plus)
//! and `enumerable_thread_specific`/`combinable` (TBB). [`PerWorker`] is the
//! common mechanism: one cache-padded, lazily initialized slot per worker
//! id. [`Holder`] and [`Combinable`] are the Cilk/TBB-flavoured aliases and
//! [`ReducerMax`] is the Cilk `reducer_max` equivalent.

use crate::pool::WorkerCtx;
use crossbeam_utils::CachePadded;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, Ordering};

/// One lazily initialized value per worker id.
///
/// Slots are padded to cache lines — the paper stores each thread's
/// `forbiddenColors` "contiguously in memory (but without sharing a cache
/// line)" for the same reason.
pub struct PerWorker<T> {
    slots: Vec<CachePadded<Slot<T>>>,
    init: Box<dyn Fn(usize) -> T + Send + Sync>,
}

struct Slot<T> {
    value: UnsafeCell<Option<T>>,
    /// Guards against aliased access from a buggy caller; toggled around
    /// every borrow.
    borrowed: AtomicBool,
}

// SAFETY: each slot is only accessed by the worker whose id indexes it
// (enforced by taking `WorkerCtx`), and `borrowed` catches violations.
unsafe impl<T: Send> Sync for PerWorker<T> {}
unsafe impl<T: Send> Send for PerWorker<T> {}

impl<T> PerWorker<T> {
    /// Storage for `num_threads` workers; `init(worker_id)` runs on first
    /// access from that worker (TBB's and Cilk's on-demand semantics; the
    /// OpenMP style simply touches every slot up front).
    pub fn new(num_threads: usize, init: impl Fn(usize) -> T + Send + Sync + 'static) -> Self {
        let slots = (0..num_threads)
            .map(|_| {
                CachePadded::new(Slot {
                    value: UnsafeCell::new(None),
                    borrowed: AtomicBool::new(false),
                })
            })
            .collect();
        PerWorker {
            slots,
            init: Box::new(init),
        }
    }

    /// Number of slots.
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// Eagerly initialize every slot (the OpenMP / Cilk-worker-id style:
    /// storage allocated up front, before the parallel region, instead of
    /// on first touch).
    pub fn init_all(&mut self) {
        for id in 0..self.slots.len() {
            let v = self.slots[id].value.get_mut();
            if v.is_none() {
                *v = Some((self.init)(id));
            }
        }
    }

    /// Access this worker's value, initializing it on first use.
    ///
    /// # Panics
    /// Panics if `ctx.id` is out of range or the slot is already borrowed
    /// (which would mean two workers share an id — a pool bug).
    pub fn with<R>(&self, ctx: WorkerCtx, f: impl FnOnce(&mut T) -> R) -> R {
        let slot = &self.slots[ctx.id];
        assert!(
            !slot.borrowed.swap(true, Ordering::Acquire),
            "PerWorker slot {} aliased",
            ctx.id
        );
        // SAFETY: the `borrowed` flag proves exclusive access; only the
        // worker owning `ctx.id` reaches this slot during a region.
        let value = unsafe { &mut *slot.value.get() };
        let v = value.get_or_insert_with(|| (self.init)(ctx.id));
        let out = f(v);
        slot.borrowed.store(false, Ordering::Release);
        out
    }

    /// Iterate over the values of all initialized slots (exclusive access,
    /// for use after the parallel region).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.slots
            .iter_mut()
            .filter_map(|s| s.value.get_mut().as_mut())
    }

    /// Drain all initialized values.
    pub fn take_values(&mut self) -> Vec<T> {
        self.slots
            .iter_mut()
            .filter_map(|s| s.value.get_mut().take())
            .collect()
    }

    /// Fold all initialized values into one (TBB `combinable::combine`).
    pub fn combine(&mut self, f: impl Fn(T, T) -> T) -> Option<T> {
        self.take_values().into_iter().reduce(f)
    }
}

/// Cilk Plus *holder*: per-worker scratch space allocated on demand.
pub type Holder<T> = PerWorker<T>;

/// TBB *combinable*: per-worker value with a final `combine`.
pub type Combinable<T> = PerWorker<T>;

/// Cilk Plus `reducer_max`: write-mostly per-worker maxima reduced at the
/// end of the region.
pub struct ReducerMax<T> {
    inner: PerWorker<T>,
    identity: T,
}

impl<T: Ord + Copy + Send + Sync + 'static> ReducerMax<T> {
    /// A reducer over `num_threads` workers starting from `identity`.
    pub fn new(num_threads: usize, identity: T) -> Self {
        ReducerMax {
            inner: PerWorker::new(num_threads, move |_| identity),
            identity,
        }
    }

    /// Fold `v` into this worker's view.
    #[inline]
    pub fn update(&self, ctx: WorkerCtx, v: T) {
        self.inner.with(ctx, |m| {
            if v > *m {
                *m = v;
            }
        });
    }

    /// Reduce all views (after the region).
    pub fn get(&mut self) -> T {
        let id = self.identity;
        self.inner.iter_mut().fold(id, |acc, &mut v| acc.max(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::openmp::{parallel_for, Schedule};
    use crate::pool::ThreadPool;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn per_worker_accumulates_privately() {
        let pool = ThreadPool::new(4);
        let mut acc: PerWorker<u64> = PerWorker::new(4, |_| 0);
        parallel_for(&pool, 0..1000, Schedule::Dynamic { chunk: 16 }, |i, ctx| {
            acc.with(ctx, |a| *a += i as u64);
        });
        let total: u64 = acc.iter_mut().map(|v| *v).sum();
        assert_eq!(total, (0..1000u64).sum());
    }

    #[test]
    fn lazy_init_only_touched_slots() {
        let pool = ThreadPool::new(8);
        let inits = std::sync::Arc::new(AtomicUsize::new(0));
        let inits2 = std::sync::Arc::clone(&inits);
        let mut acc: PerWorker<usize> = PerWorker::new(8, move |id| {
            inits2.fetch_add(1, Ordering::Relaxed);
            id * 100
        });
        // Single-iteration loop: only one worker touches its slot.
        parallel_for(&pool, 0..1, Schedule::Dynamic { chunk: 1 }, |_, ctx| {
            acc.with(ctx, |v| assert_eq!(*v, ctx.id * 100));
        });
        assert_eq!(inits.load(Ordering::Relaxed), 1);
        assert_eq!(acc.take_values().len(), 1);
    }

    #[test]
    fn combine_folds_views() {
        let pool = ThreadPool::new(3);
        let mut c: Combinable<u64> = Combinable::new(3, |_| 0);
        parallel_for(&pool, 0..300, Schedule::Static { chunk: None }, |i, ctx| {
            c.with(ctx, |v| *v += i as u64);
        });
        assert_eq!(c.combine(|a, b| a + b), Some((0..300u64).sum()));
    }

    #[test]
    fn combine_empty_is_none() {
        let mut c: Combinable<u64> = Combinable::new(4, |_| 0);
        assert_eq!(c.combine(|a, b| a + b), None);
    }

    #[test]
    fn reducer_max_matches_sequential_max() {
        let pool = ThreadPool::new(5);
        let values: Vec<u32> = (0..997)
            .map(|i| (i * 2654435761u64 % 10007) as u32)
            .collect();
        let mut red = ReducerMax::new(5, 0u32);
        parallel_for(
            &pool,
            0..values.len(),
            Schedule::Guided { min_chunk: 8 },
            |i, ctx| {
                red.update(ctx, values[i]);
            },
        );
        assert_eq!(red.get(), *values.iter().max().unwrap());
    }

    #[test]
    fn reducer_identity_when_untouched() {
        let mut red = ReducerMax::new(4, 42u32);
        assert_eq!(red.get(), 42);
    }
}
