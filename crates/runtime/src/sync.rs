//! In-region synchronization: the OpenMP `barrier`, `critical` and
//! `single` constructs (§II-A of the paper mentions all three).
//!
//! These let a kernel keep one *persistent team* across phases instead of
//! forking a fresh parallel region per phase — the alternative BFS
//! organization the `persistent` variant benchmarks (each fork/join pays
//! the pool wake/sleep; a barrier among already-running workers is much
//! cheaper).

use crate::pool::WorkerCtx;
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// A reusable barrier for the `num_threads` workers of one region
/// (sense-reversing, blocking). Create it outside `pool.run` and have every
/// worker call [`RegionBarrier::wait`] the same number of times.
pub struct RegionBarrier {
    num_threads: usize,
    arrived: AtomicUsize,
    sense: AtomicBool,
    lock: Mutex<()>,
    cv: Condvar,
}

impl RegionBarrier {
    /// A barrier for `num_threads` participants.
    pub fn new(num_threads: usize) -> Self {
        assert!(num_threads >= 1);
        RegionBarrier {
            num_threads,
            arrived: AtomicUsize::new(0),
            sense: AtomicBool::new(false),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Block until all participants have arrived. Returns `true` on exactly
    /// one participant per episode (the "leader", as in
    /// `std::sync::Barrier`), which is handy for serial interludes.
    pub fn wait(&self) -> bool {
        let my_sense = !self.sense.load(Ordering::Acquire);
        let pos = self.arrived.fetch_add(1, Ordering::AcqRel) + 1;
        if pos == self.num_threads {
            // Last arrival: reset and flip the sense, waking everyone.
            self.arrived.store(0, Ordering::Release);
            let _g = self.lock.lock();
            self.sense.store(my_sense, Ordering::Release);
            self.cv.notify_all();
            true
        } else {
            let mut g = self.lock.lock();
            while self.sense.load(Ordering::Acquire) != my_sense {
                self.cv.wait(&mut g);
            }
            false
        }
    }
}

/// An OpenMP-style named `critical` section: at most one worker inside at
/// a time. A thin, intention-revealing wrapper over a mutex.
pub struct Critical<T> {
    inner: Mutex<T>,
}

impl<T> Critical<T> {
    /// Protect `value`.
    pub fn new(value: T) -> Self {
        Critical {
            inner: Mutex::new(value),
        }
    }

    /// Run `f` exclusively.
    pub fn section<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        f(&mut self.inner.lock())
    }

    /// Unwrap after the region.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

/// An OpenMP `single` construct: the closure runs on exactly one of the
/// workers that reach it (the first), per episode. Reusable across
/// episodes via [`Single::reset`].
pub struct Single {
    taken: AtomicBool,
}

impl Single {
    pub fn new() -> Self {
        Single {
            taken: AtomicBool::new(false),
        }
    }

    /// Run `f` if this worker is the first to arrive; returns whether it
    /// ran here.
    pub fn run(&self, f: impl FnOnce()) -> bool {
        if self
            .taken
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            f();
            true
        } else {
            false
        }
    }

    /// Re-arm for the next episode (call between barriers).
    pub fn reset(&self) {
        self.taken.store(false, Ordering::Release);
    }
}

impl Default for Single {
    fn default() -> Self {
        Self::new()
    }
}

/// Convenience: a per-region helper bundling a barrier sized to the
/// context's team.
pub fn team_barrier(ctx: WorkerCtx) -> usize {
    ctx.num_threads
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ThreadPool;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn barrier_synchronizes_phases() {
        let t = 6;
        let pool = ThreadPool::new(t);
        let barrier = RegionBarrier::new(t);
        let phase1 = AtomicUsize::new(0);
        let phase2_saw = AtomicUsize::new(usize::MAX);
        pool.run(|_ctx| {
            phase1.fetch_add(1, Ordering::SeqCst);
            barrier.wait();
            // Everyone must observe the completed phase 1.
            phase2_saw.fetch_min(phase1.load(Ordering::SeqCst), Ordering::SeqCst);
            barrier.wait();
        });
        assert_eq!(phase2_saw.load(Ordering::SeqCst), t);
    }

    #[test]
    fn barrier_elects_exactly_one_leader_per_episode() {
        let t = 5;
        let pool = ThreadPool::new(t);
        let barrier = RegionBarrier::new(t);
        let leaders = AtomicUsize::new(0);
        pool.run(|_| {
            for _ in 0..10 {
                if barrier.wait() {
                    leaders.fetch_add(1, Ordering::SeqCst);
                }
            }
        });
        assert_eq!(leaders.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn barrier_many_episodes_stress() {
        let t = 4;
        let pool = ThreadPool::new(t);
        let barrier = RegionBarrier::new(t);
        let counter = AtomicU64::new(0);
        let episodes = 500u64;
        pool.run(|_| {
            for e in 0..episodes {
                counter.fetch_add(1, Ordering::SeqCst);
                barrier.wait();
                // After each barrier the counter is exactly t * (e + 1).
                assert_eq!(counter.load(Ordering::SeqCst), t as u64 * (e + 1));
                barrier.wait();
            }
        });
    }

    #[test]
    fn critical_serializes() {
        let pool = ThreadPool::new(8);
        let acc = Critical::new(Vec::new());
        pool.run(|ctx| {
            for i in 0..100 {
                acc.section(|v| v.push(ctx.id * 1000 + i));
            }
        });
        let v = acc.into_inner();
        assert_eq!(v.len(), 800);
    }

    #[test]
    fn single_runs_once_per_episode() {
        let t = 6;
        let pool = ThreadPool::new(t);
        let barrier = RegionBarrier::new(t);
        let single = Single::new();
        let runs = AtomicUsize::new(0);
        pool.run(|_| {
            for _ in 0..20 {
                single.run(|| {
                    runs.fetch_add(1, Ordering::SeqCst);
                });
                if barrier.wait() {
                    single.reset();
                }
                barrier.wait();
            }
        });
        assert_eq!(runs.load(Ordering::SeqCst), 20);
    }

    #[test]
    fn team_barrier_reports_team_size() {
        let pool = ThreadPool::new(3);
        let sizes = AtomicUsize::new(0);
        pool.run(|ctx| {
            sizes.fetch_max(team_barrier(ctx), Ordering::SeqCst);
        });
        assert_eq!(sizes.load(Ordering::SeqCst), 3);
    }
}
