//! In-region synchronization: the OpenMP `barrier`, `critical` and
//! `single` constructs (§II-A of the paper mentions all three).
//!
//! These let a kernel keep one *persistent team* across phases instead of
//! forking a fresh parallel region per phase — the alternative BFS
//! organization the `persistent` variant benchmarks (each fork/join pays
//! the pool wake/sleep; a barrier among already-running workers is much
//! cheaper).

use crate::pool::WorkerCtx;
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// Default spin budget before an [`EventCount`] waiter parks.
pub const DEFAULT_PARK_SPIN: usize = 64;

/// Spin budget before parking, settable via `MIC_STEAL_SPIN` (routed
/// through `SuiteConfig::install`, never read from the environment here).
static PARK_SPIN: AtomicUsize = AtomicUsize::new(DEFAULT_PARK_SPIN);

/// Set the process-wide spin-before-park budget (0 = park immediately).
pub fn set_park_spin(iters: usize) {
    PARK_SPIN.store(iters, Ordering::Relaxed);
}

/// The current spin-before-park budget.
pub fn park_spin() -> usize {
    PARK_SPIN.load(Ordering::Relaxed)
}

/// A futex-style event count: the park/unpark half of a lock-free
/// protocol. State lives elsewhere (atomics); waiters spin on their
/// predicate for [`park_spin`] iterations, then sleep until a
/// [`notify`](EventCount::notify) advances the epoch.
///
/// The notify fast path is one `SeqCst` RMW plus one load — it takes the
/// internal mutex **only when a waiter is actually parked**, so producers
/// (pool submitters, serve enqueuers) never block on a lock when the
/// consumers are running hot. The lost-wakeup race is closed the classic
/// event-count way: a waiter (1) loads the epoch, (2) re-checks its
/// predicate, (3) publishes itself in `parked`, and only sleeps while the
/// epoch still equals its ticket — all `SeqCst`, so whichever of
/// `parked.fetch_add` and `epoch.fetch_add` comes first in the single
/// total order, either the notifier sees the waiter and takes the mutex,
/// or the waiter sees the new epoch and never sleeps (the full argument
/// is in DESIGN.md "Lock-free structures").
pub struct EventCount {
    epoch: AtomicU64,
    parked: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
    parks: AtomicU64,
    /// Metrics label for park events; `None` = unlabeled/uncounted.
    site: Option<&'static str>,
}

impl EventCount {
    pub fn new() -> EventCount {
        EventCount {
            epoch: AtomicU64::new(0),
            parked: AtomicUsize::new(0),
            lock: Mutex::new(()),
            cv: Condvar::new(),
            parks: AtomicU64::new(0),
            site: None,
        }
    }

    /// An event count whose park events are exported as
    /// `mic_runtime_parks_total{site=...}` when metrics are enabled.
    pub fn named(site: &'static str) -> EventCount {
        EventCount {
            site: Some(site),
            ..EventCount::new()
        }
    }

    /// Wake every parked waiter (and fence so unparked spinners re-check
    /// their predicate). Lock-free unless someone is actually asleep.
    pub fn notify(&self) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
        if self.parked.load(Ordering::SeqCst) > 0 {
            // The mutex orders this notify against a waiter between its
            // epoch check and its cv.wait; without it the wakeup could
            // fall into that window and be lost.
            let _g = self.lock.lock();
            self.cv.notify_all();
        }
    }

    /// Block until `cond()` is true: spin [`park_spin`] iterations, then
    /// park. `cond` must become true only via state changes followed by
    /// [`notify`](EventCount::notify).
    pub fn park_until(&self, mut cond: impl FnMut() -> bool) {
        let spin = park_spin();
        let mut spun = 0usize;
        loop {
            if cond() {
                return;
            }
            if spun < spin {
                spun += 1;
                std::hint::spin_loop();
                if spun % 16 == 0 {
                    // Oversubscribed pools (the paper runs 121 threads on
                    // 31 cores) starve without an occasional yield.
                    std::thread::yield_now();
                }
                continue;
            }
            let ticket = self.epoch.load(Ordering::SeqCst);
            if cond() {
                return;
            }
            self.parked.fetch_add(1, Ordering::SeqCst);
            {
                let mut g = self.lock.lock();
                while self.epoch.load(Ordering::SeqCst) == ticket {
                    self.cv.wait(&mut g);
                }
            }
            self.parked.fetch_sub(1, Ordering::SeqCst);
            self.parks.fetch_add(1, Ordering::Relaxed);
            if mic_metrics::enabled() {
                if let Some(site) = self.site {
                    mic_metrics::counter(
                        "mic_runtime_parks_total",
                        "Event-count park episodes (a waiter exhausted its spin budget and slept)",
                        &[("site", site)],
                    )
                    .inc();
                }
            }
        }
    }

    /// Completed park episodes (contention telemetry).
    pub fn parks(&self) -> u64 {
        self.parks.load(Ordering::Relaxed)
    }
}

impl Default for EventCount {
    fn default() -> Self {
        EventCount::new()
    }
}

/// A reusable barrier for the `num_threads` workers of one region
/// (sense-reversing, blocking). Create it outside `pool.run` and have every
/// worker call [`RegionBarrier::wait`] the same number of times.
pub struct RegionBarrier {
    num_threads: usize,
    arrived: AtomicUsize,
    sense: AtomicBool,
    lock: Mutex<()>,
    cv: Condvar,
}

impl RegionBarrier {
    /// A barrier for `num_threads` participants.
    pub fn new(num_threads: usize) -> Self {
        assert!(num_threads >= 1);
        RegionBarrier {
            num_threads,
            arrived: AtomicUsize::new(0),
            sense: AtomicBool::new(false),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Block until all participants have arrived. Returns `true` on exactly
    /// one participant per episode (the "leader", as in
    /// `std::sync::Barrier`), which is handy for serial interludes.
    pub fn wait(&self) -> bool {
        let my_sense = !self.sense.load(Ordering::Acquire);
        let pos = self.arrived.fetch_add(1, Ordering::AcqRel) + 1;
        if pos == self.num_threads {
            // Last arrival: reset and flip the sense, waking everyone.
            self.arrived.store(0, Ordering::Release);
            let _g = self.lock.lock();
            self.sense.store(my_sense, Ordering::Release);
            self.cv.notify_all();
            true
        } else {
            let mut g = self.lock.lock();
            while self.sense.load(Ordering::Acquire) != my_sense {
                self.cv.wait(&mut g);
            }
            false
        }
    }
}

/// An OpenMP-style named `critical` section: at most one worker inside at
/// a time. A thin, intention-revealing wrapper over a mutex.
pub struct Critical<T> {
    inner: Mutex<T>,
}

impl<T> Critical<T> {
    /// Protect `value`.
    pub fn new(value: T) -> Self {
        Critical {
            inner: Mutex::new(value),
        }
    }

    /// Run `f` exclusively.
    pub fn section<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        f(&mut self.inner.lock())
    }

    /// Unwrap after the region.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

/// An OpenMP `single` construct: the closure runs on exactly one of the
/// workers that reach it (the first), per episode. Reusable across
/// episodes via [`Single::reset`].
pub struct Single {
    taken: AtomicBool,
}

impl Single {
    pub fn new() -> Self {
        Single {
            taken: AtomicBool::new(false),
        }
    }

    /// Run `f` if this worker is the first to arrive; returns whether it
    /// ran here.
    pub fn run(&self, f: impl FnOnce()) -> bool {
        if self
            .taken
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            f();
            true
        } else {
            false
        }
    }

    /// Re-arm for the next episode (call between barriers).
    pub fn reset(&self) {
        self.taken.store(false, Ordering::Release);
    }
}

impl Default for Single {
    fn default() -> Self {
        Self::new()
    }
}

/// Convenience: a per-region helper bundling a barrier sized to the
/// context's team.
pub fn team_barrier(ctx: WorkerCtx) -> usize {
    ctx.num_threads
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ThreadPool;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn barrier_synchronizes_phases() {
        let t = 6;
        let pool = ThreadPool::new(t);
        let barrier = RegionBarrier::new(t);
        let phase1 = AtomicUsize::new(0);
        let phase2_saw = AtomicUsize::new(usize::MAX);
        pool.run(|_ctx| {
            phase1.fetch_add(1, Ordering::SeqCst);
            barrier.wait();
            // Everyone must observe the completed phase 1.
            phase2_saw.fetch_min(phase1.load(Ordering::SeqCst), Ordering::SeqCst);
            barrier.wait();
        });
        assert_eq!(phase2_saw.load(Ordering::SeqCst), t);
    }

    #[test]
    fn barrier_elects_exactly_one_leader_per_episode() {
        let t = 5;
        let pool = ThreadPool::new(t);
        let barrier = RegionBarrier::new(t);
        let leaders = AtomicUsize::new(0);
        pool.run(|_| {
            for _ in 0..10 {
                if barrier.wait() {
                    leaders.fetch_add(1, Ordering::SeqCst);
                }
            }
        });
        assert_eq!(leaders.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn barrier_many_episodes_stress() {
        let t = 4;
        let pool = ThreadPool::new(t);
        let barrier = RegionBarrier::new(t);
        let counter = AtomicU64::new(0);
        let episodes = 500u64;
        pool.run(|_| {
            for e in 0..episodes {
                counter.fetch_add(1, Ordering::SeqCst);
                barrier.wait();
                // After each barrier the counter is exactly t * (e + 1).
                assert_eq!(counter.load(Ordering::SeqCst), t as u64 * (e + 1));
                barrier.wait();
            }
        });
    }

    #[test]
    fn critical_serializes() {
        let pool = ThreadPool::new(8);
        let acc = Critical::new(Vec::new());
        pool.run(|ctx| {
            for i in 0..100 {
                acc.section(|v| v.push(ctx.id * 1000 + i));
            }
        });
        let v = acc.into_inner();
        assert_eq!(v.len(), 800);
    }

    #[test]
    fn single_runs_once_per_episode() {
        let t = 6;
        let pool = ThreadPool::new(t);
        let barrier = RegionBarrier::new(t);
        let single = Single::new();
        let runs = AtomicUsize::new(0);
        pool.run(|_| {
            for _ in 0..20 {
                single.run(|| {
                    runs.fetch_add(1, Ordering::SeqCst);
                });
                if barrier.wait() {
                    single.reset();
                }
                barrier.wait();
            }
        });
        assert_eq!(runs.load(Ordering::SeqCst), 20);
    }

    #[test]
    fn event_count_wakes_parked_waiter() {
        let flag = std::sync::Arc::new(AtomicBool::new(false));
        let ec = std::sync::Arc::new(EventCount::new());
        let (f2, e2) = (std::sync::Arc::clone(&flag), std::sync::Arc::clone(&ec));
        let h = std::thread::spawn(move || {
            e2.park_until(|| f2.load(Ordering::SeqCst));
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        flag.store(true, Ordering::SeqCst);
        ec.notify();
        h.join().unwrap();
    }

    #[test]
    fn event_count_no_lost_wakeup_storm() {
        // Hammer the notify/park window: a consumer parks on an empty
        // counter, producers bump it one at a time with a notify each.
        let count = std::sync::Arc::new(AtomicUsize::new(0));
        let ec = std::sync::Arc::new(EventCount::new());
        let rounds = 2_000usize;
        let (c2, e2) = (std::sync::Arc::clone(&count), std::sync::Arc::clone(&ec));
        let consumer = std::thread::spawn(move || {
            for want in 1..=rounds {
                e2.park_until(|| c2.load(Ordering::SeqCst) >= want);
            }
        });
        for _ in 0..rounds {
            count.fetch_add(1, Ordering::SeqCst);
            ec.notify();
        }
        consumer.join().unwrap();
        assert!(ec.parks() <= rounds as u64);
    }

    #[test]
    fn park_spin_roundtrip() {
        let before = park_spin();
        set_park_spin(7);
        assert_eq!(park_spin(), 7);
        set_park_spin(before);
    }

    #[test]
    fn team_barrier_reports_team_size() {
        let pool = ThreadPool::new(3);
        let sizes = AtomicUsize::new(0);
        pool.run(|ctx| {
            sizes.fetch_max(team_barrier(ctx), Ordering::SeqCst);
        });
        assert_eq!(sizes.load(Ordering::SeqCst), 3);
    }
}
