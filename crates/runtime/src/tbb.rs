//! TBB-style `parallel_for` over a blocked range with the three partitioners
//! of §II-C of the paper.

use crate::deque::WsDeque;
use crate::injector::{Injector, Steal};
use crate::pool::{ThreadPool, WorkerCtx};
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// TBB range partitioner.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Partitioner {
    /// `simple_partitioner`: recursively divide until `grain` is reached —
    /// "similar to the dynamic scheduling policy of OpenMP" (§II-C). The
    /// paper's coloring results use this with grain 40.
    Simple { grain: usize },
    /// `auto_partitioner`: create ~`4 t` subranges up front and split a
    /// range further only when it is stolen.
    Auto,
    /// `affinity_partitioner`: deal chunks to workers in a fixed cyclic
    /// pattern so repeated loops see the same iterations on the same
    /// worker. The mapping is deterministic, so affinity across loop
    /// executions holds by construction.
    Affinity,
}

struct Task {
    range: Range<usize>,
    /// Id of the worker that pushed this task; a different id popping it
    /// means the task was stolen (the auto partitioner's split trigger).
    owner: usize,
}

/// `tbb::parallel_for(blocked_range(...), body, partitioner)`.
pub fn tbb_parallel_for<F>(pool: &ThreadPool, range: Range<usize>, part: Partitioner, body: F)
where
    F: Fn(Range<usize>, WorkerCtx) + Sync,
{
    if range.is_empty() {
        return;
    }
    match part {
        Partitioner::Simple { grain } => {
            // Same splitting engine as cilk_for: divide-until-grain with
            // stealable halves.
            crate::cilk::cilk_for_labeled(pool, range, grain.max(1), "tbb", body);
        }
        Partitioner::Auto => auto_partition(pool, range, body),
        Partitioner::Affinity => {
            let t = pool.num_threads();
            let n = range.len();
            // TBB's affinity partitioner aims for a few chunks per thread.
            let chunks = (t * 4).min(n.max(1));
            let chunk = n.div_ceil(chunks);
            let start = range.start;
            let end = range.end;
            let body = crate::trace::timed_chunk("tbb", "affinity", body);
            pool.run(|ctx| {
                let mut c = ctx.id;
                loop {
                    let lo = start + c * chunk;
                    if lo >= end {
                        break;
                    }
                    body(lo..(lo + chunk).min(end), ctx);
                    c += t;
                }
            });
        }
    }
}

fn auto_partition<F>(pool: &ThreadPool, range: Range<usize>, body: F)
where
    F: Fn(Range<usize>, WorkerCtx) + Sync,
{
    let t = pool.num_threads();
    let n = range.len();
    let total = n;
    let body = crate::trace::timed_chunk("tbb", "auto", body);
    let injector: Injector<Task> = Injector::new();
    // Initial division: ~4 subranges per thread, dealt with owner = the
    // worker they are destined for (cyclic), so a different popper counts
    // as a steal.
    let initial = (4 * t).min(n.max(1));
    let chunk = n.div_ceil(initial);
    let mut lo = range.start;
    let mut idx = 0usize;
    while lo < range.end {
        let hi = (lo + chunk).min(range.end);
        injector.push(Task {
            range: lo..hi,
            owner: idx % t,
        });
        lo = hi;
        idx += 1;
    }
    let remaining = AtomicUsize::new(total);
    // See cilk_for: release spinning siblings if a task body panics.
    let aborted = AtomicBool::new(false);
    // Per-worker deques for split-off halves; the injector holds the
    // initial deal and any overflow.
    let deques: Vec<WsDeque<Task>> = (0..t)
        .map(|_| WsDeque::new(crate::cilk::ENGINE_DEQUE_CAP))
        .collect();

    pool.run(|ctx| {
        let mine = &deques[ctx.id];
        'outer: while remaining.load(Ordering::Acquire) > 0 {
            if aborted.load(Ordering::Acquire) {
                break;
            }
            // SAFETY (pop/push): worker `ctx.id` is the sole owner of
            // `deques[ctx.id]` — ids are unique within the region.
            let task = match unsafe { mine.pop() } {
                Some(task) => task,
                None => loop {
                    match injector.steal() {
                        Steal::Success(task) => break task,
                        Steal::Retry => {
                            std::thread::yield_now();
                            continue;
                        }
                        Steal::Empty => {}
                    }
                    let mut found = None;
                    for k in 1..t {
                        let victim = (ctx.id + k) % t;
                        match deques[victim].steal() {
                            Steal::Success(task) => {
                                found = Some(task);
                                break;
                            }
                            Steal::Retry | Steal::Empty => {}
                        }
                    }
                    if let Some(task) = found {
                        break task;
                    }
                    if remaining.load(Ordering::Acquire) == 0 || aborted.load(Ordering::Acquire) {
                        break 'outer;
                    }
                    std::hint::spin_loop();
                    std::thread::yield_now();
                },
            };
            let stolen = task.owner != ctx.id;
            if stolen {
                crate::trace::emit_steal("tbb", ctx.id, task.owner);
            }
            let mut r = task.range;
            if stolen && r.len() > 1 {
                // Split once on steal, keeping the front half and exposing
                // the back half on our deque's FIFO end — the auto
                // partitioner's defining move. Overflow spills back to the
                // shared injector.
                let mid = r.start + r.len() / 2;
                let back = Task {
                    range: mid..r.end,
                    owner: ctx.id,
                };
                if let Err(back) = unsafe { mine.push(back) } {
                    injector.push(back);
                }
                r = r.start..mid;
            }
            let len = r.len();
            if let Err(p) = catch_unwind(AssertUnwindSafe(|| body(r, ctx))) {
                aborted.store(true, Ordering::Release);
                resume_unwind(p);
            }
            remaining.fetch_sub(len, Ordering::AcqRel);
        }
    });
    crate::cilk::record_cas_retries(&deques, injector.retries());
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    fn partitioners() -> Vec<Partitioner> {
        vec![
            Partitioner::Simple { grain: 1 },
            Partitioner::Simple { grain: 40 },
            Partitioner::Auto,
            Partitioner::Affinity,
        ]
    }

    #[test]
    fn covers_every_index_once() {
        let pool = ThreadPool::new(5);
        for part in partitioners() {
            let n = 1534;
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            tbb_parallel_for(&pool, 0..n, part, |r, _| {
                for i in r {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "{part:?}"
            );
        }
    }

    #[test]
    fn sum_matches_sequential() {
        let pool = ThreadPool::new(7);
        let expected: u64 = (3..4000u64).sum();
        for part in partitioners() {
            let sum = AtomicU64::new(0);
            tbb_parallel_for(&pool, 3..4000, part, |r, _| {
                sum.fetch_add(r.map(|i| i as u64).sum::<u64>(), Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), expected, "{part:?}");
        }
    }

    #[test]
    fn simple_respects_grain() {
        let pool = ThreadPool::new(4);
        let max_leaf = AtomicUsize::new(0);
        tbb_parallel_for(&pool, 0..5000, Partitioner::Simple { grain: 64 }, |r, _| {
            max_leaf.fetch_max(r.len(), Ordering::Relaxed);
        });
        assert!(max_leaf.load(Ordering::Relaxed) <= 64);
    }

    #[test]
    fn affinity_mapping_is_deterministic() {
        let pool = ThreadPool::new(4);
        let n = 1000;
        let run = || {
            let owner: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(usize::MAX)).collect();
            tbb_parallel_for(&pool, 0..n, Partitioner::Affinity, |r, ctx| {
                for i in r {
                    owner[i].store(ctx.id, Ordering::Relaxed);
                }
            });
            owner
                .iter()
                .map(|o| o.load(Ordering::Relaxed))
                .collect::<Vec<_>>()
        };
        assert_eq!(
            run(),
            run(),
            "affinity must map iterations identically across loops"
        );
    }

    #[test]
    fn empty_range() {
        let pool = ThreadPool::new(2);
        for part in partitioners() {
            let hits = AtomicUsize::new(0);
            tbb_parallel_for(&pool, 9..9, part, |_, _| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(hits.load(Ordering::Relaxed), 0);
        }
    }
}
