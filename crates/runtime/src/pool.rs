//! A persistent, possibly over-subscribed worker pool.
//!
//! The pool executes *parallel regions*: every worker invokes the same
//! closure exactly once, with its worker id — the OpenMP `parallel`
//! construct. All higher-level loops (`parallel_for`, `cilk_for`, TBB
//! partitioners) are built from this plus shared atomics.
//!
//! The closure is passed by reference with its lifetime erased; `run`
//! blocks until every worker has finished, so the borrow can never be
//! observed after it expires. Panics in workers are caught and re-thrown
//! from `run` on the calling thread (first panic wins).
//!
//! Region dispatch is **lock-free on the hot path**: the submitter
//! publishes the job pointer, resets the `remaining` counter, advances
//! the `epoch` atomic with a `Release` store, and pings an
//! [`EventCount`](crate::sync::EventCount) — no mutex is held while
//! workers are woken, and idle workers spin `MIC_STEAL_SPIN` iterations
//! before parking. The only mutex left guards the *cold* error path
//! (first panic, dead-worker bookkeeping), which is touched at most once
//! per fault, never per region. See DESIGN.md "Lock-free structures" for
//! the publication argument.
//!
//! The pool is also a fault-injection site (see [`crate::fault`]): a hook
//! may stall a worker at region entry, panic it, or kill it outright. A
//! killed worker is bookkept in the cold state and transparently
//! respawned at the start of the next region, so a poisoned pool recovers
//! instead of deadlocking its next `run`.

use crate::sync::EventCount;
use parking_lot::Mutex;
use std::any::Any;
use std::cell::{Cell, UnsafeCell};
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Context handed to a worker inside a parallel region.
#[derive(Clone, Copy, Debug)]
pub struct WorkerCtx {
    /// Worker id in `0..num_threads`, unique within the region.
    pub id: usize,
    /// Number of workers participating in the region.
    pub num_threads: usize,
}

/// Why a `try_run` call was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PoolError {
    /// A worker tried to start a region on the pool whose region it is
    /// already inside — that would deadlock on the pool's run lock.
    Reentry {
        /// Id of the pool being re-entered.
        pool: usize,
        /// Worker id (within that pool) that attempted the nested `run`.
        worker: usize,
        /// Epoch of the region the worker is currently executing.
        epoch: u64,
    },
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::Reentry {
                pool,
                worker,
                epoch,
            } => write!(
                f,
                "worker {worker} of pool #{pool} re-entered its own pool from \
                 region epoch {epoch}; nested `run` on the same pool would \
                 deadlock (use a distinct pool for inner parallelism)"
            ),
        }
    }
}

impl std::error::Error for PoolError {}

type Job = *const (dyn Fn(WorkerCtx) + Sync);

/// Raw job pointer made sendable; validity is guaranteed by `run` blocking
/// until all workers are done with it.
#[derive(Clone, Copy)]
struct SendJob(Job);
unsafe impl Send for SendJob {}

/// Cold-path state: touched only on worker panics and injected deaths,
/// never on the per-region hot path.
#[derive(Default)]
struct ColdState {
    panic: Option<Box<dyn Any + Send>>,
    /// Worker ids whose threads exited (injected `Die` faults). Joined and
    /// respawned at the start of the next region.
    dead: Vec<usize>,
}

struct Shared {
    /// Region sequence number. Advanced with a `Release` store *after*
    /// `job` and `remaining` are written; workers `Acquire`-load it, so
    /// observing a new epoch licenses reading the job slot.
    epoch: AtomicU64,
    /// The current region's closure. Written only by the submitter while
    /// no region is live (`remaining == 0` observed with `Acquire`).
    job: UnsafeCell<Option<SendJob>>,
    /// Workers that have not finished the current region.
    remaining: AtomicUsize,
    shutdown: AtomicBool,
    /// Workers park here between regions.
    work: EventCount,
    /// The submitter parks here while a region drains.
    done: EventCount,
    cold: Mutex<ColdState>,
}

// SAFETY: `job` is the only non-atomic field. It is written by the
// submitter strictly before the epoch `Release` store and read by workers
// strictly after their epoch `Acquire` load; it is rewritten only after
// every worker's `Release` decrement of `remaining` has been observed
// with `Acquire` — so no write ever races a read (full argument in
// DESIGN.md "Lock-free structures").
unsafe impl Sync for Shared {}

thread_local! {
    /// `(pool id, worker id)` of the region this OS thread is currently
    /// inside (if any). Re-entering the *same* pool would deadlock on
    /// `run_lock`, so that is rejected with a descriptive [`PoolError`];
    /// entering a *different* pool (hierarchical composition, e.g. a
    /// pipeline stage driving its own worker pool) is safe and allowed.
    static IN_REGION: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

/// Monotonic pool ids for the same-pool re-entrancy check.
static POOL_IDS: AtomicUsize = AtomicUsize::new(0);

/// Fixed-size worker pool. See the module docs.
pub struct ThreadPool {
    shared: Arc<Shared>,
    /// Slot per worker id; `None` only transiently while a dead worker is
    /// being respawned. Behind a mutex so `run(&self)` can heal the pool.
    handles: Mutex<Vec<Option<JoinHandle<()>>>>,
    /// Serializes concurrent `run` calls from different threads. Not part
    /// of the dispatch hot path: a single driver thread takes it
    /// uncontended (one CAS), and it is never held while workers are
    /// woken or joined mid-region.
    run_lock: Mutex<()>,
    num_threads: usize,
    id: usize,
    /// Trace lane inherited from the creating thread (see
    /// [`crate::trace::set_lane`]); respawned workers rejoin it.
    lane: usize,
}

impl ThreadPool {
    /// Create a pool with `num_threads` workers (`>= 1`). More workers than
    /// hardware threads is allowed and common here: the paper's thread
    /// counts go to 121 on a 31-core chip.
    pub fn new(num_threads: usize) -> Self {
        assert!(num_threads >= 1, "pool needs at least one worker");
        let pool_id = POOL_IDS.fetch_add(1, Ordering::Relaxed);
        // Workers inherit the creating thread's trace lane so a pool built
        // by a serve shard executor stays on that shard's timeline row.
        let lane = crate::trace::current_lane();
        let shared = Arc::new(Shared {
            epoch: AtomicU64::new(0),
            job: UnsafeCell::new(None),
            remaining: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            work: EventCount::named("pool-work"),
            done: EventCount::named("pool-done"),
            cold: Mutex::new(ColdState::default()),
        });
        let handles = (0..num_threads)
            .map(|id| Some(spawn_worker(id, num_threads, pool_id, lane, &shared, 0)))
            .collect();
        ThreadPool {
            shared,
            handles: Mutex::new(handles),
            run_lock: Mutex::new(()),
            num_threads,
            id: pool_id,
            lane,
        }
    }

    /// Number of workers.
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Execute a parallel region: every worker calls `f` once. Blocks until
    /// all workers return. Panics raised inside workers are re-raised here.
    ///
    /// # Panics
    /// Panics (with the [`PoolError::Reentry`] message) if called from
    /// inside a region of the *same* pool. Regions of different pools may
    /// nest. Use [`try_run`](Self::try_run) to get the error as a value.
    pub fn run<F>(&self, f: F)
    where
        F: Fn(WorkerCtx) + Sync,
    {
        if let Err(e) = self.try_run(f) {
            panic!("{e}");
        }
    }

    /// Like [`run`](Self::run), but same-pool re-entry comes back as a
    /// [`PoolError::Reentry`] naming the pool, worker and region epoch
    /// instead of a panic — diagnosable from sweep logs. Worker panics are
    /// still re-raised on the calling thread.
    pub fn try_run<F>(&self, f: F) -> Result<(), PoolError>
    where
        F: Fn(WorkerCtx) + Sync,
    {
        if let Some((pool, worker)) = IN_REGION.with(|flag| flag.get()) {
            if pool == self.id {
                let epoch = self.shared.epoch.load(Ordering::Relaxed);
                return Err(PoolError::Reentry {
                    pool,
                    worker,
                    epoch,
                });
            }
        }
        let _serialize = self.run_lock.lock();
        self.ensure_workers();
        if mic_metrics::enabled() {
            mic_metrics::counter(
                "mic_pool_regions_total",
                "Parallel regions executed by thread pools",
                &[],
            )
            .inc();
        }
        let f_ref: &(dyn Fn(WorkerCtx) + Sync) = &f;
        // SAFETY: we erase the lifetime of `f_ref`, but `try_run` does not
        // return until `remaining == 0`, i.e. until no worker can touch the
        // job pointer again, so the borrow is live for every dereference.
        let job: Job = unsafe {
            std::mem::transmute::<*const (dyn Fn(WorkerCtx) + Sync), Job>(f_ref as *const _)
        };
        // Publish the region: job slot and remaining first, then the epoch
        // with Release, then wake. No lock is held at any point.
        //
        // SAFETY: no region is live (`run_lock` serialized the previous
        // one, which ended with `remaining == 0` observed via Acquire), so
        // no worker reads `job` until the epoch store below.
        unsafe { *self.shared.job.get() = Some(SendJob(job)) };
        self.shared
            .remaining
            .store(self.num_threads, Ordering::Relaxed);
        let epoch = self.shared.epoch.load(Ordering::Relaxed);
        self.shared.epoch.store(epoch + 1, Ordering::Release);
        self.shared.work.notify();
        // Wait for the region to drain (spin, then park on `done`).
        self.shared
            .done
            .park_until(|| self.shared.remaining.load(Ordering::Acquire) == 0);
        // SAFETY: every worker decremented `remaining` with a Release op
        // after its last use of the job pointer; the Acquire observation
        // of 0 above orders those uses before this write.
        unsafe { *self.shared.job.get() = None };
        let panic = self.shared.cold.lock().panic.take();
        if let Some(p) = panic {
            panic::resume_unwind(p);
        }
        Ok(())
    }

    /// Join and respawn any workers that died (injected `Die` faults) since
    /// the previous region. Called under `run_lock` before a region is
    /// posted, so a pool poisoned by worker loss heals instead of hanging
    /// its next `run` waiting on threads that no longer exist.
    fn ensure_workers(&self) {
        let dead: Vec<usize> = {
            let mut cold = self.shared.cold.lock();
            std::mem::take(&mut cold.dead)
        };
        if dead.is_empty() {
            return;
        }
        let epoch = self.shared.epoch.load(Ordering::Relaxed);
        let mut handles = self.handles.lock();
        for id in dead {
            if let Some(h) = handles[id].take() {
                let _ = h.join();
            }
            if mic_metrics::enabled() {
                mic_metrics::counter(
                    "mic_pool_workers_respawned_total",
                    "Dead pool workers replaced at region start",
                    &[],
                )
                .inc();
            }
            // The replacement starts at the current epoch so it waits for
            // the next region rather than chasing ones it never saw.
            if mic_obs::enabled() {
                mic_obs::flight::record(
                    mic_obs::flight::EventKind::WorkerRespawn,
                    id as u64,
                    epoch,
                    0,
                );
            }
            handles[id] = Some(spawn_worker(
                id,
                self.num_threads,
                self.id,
                self.lane,
                &self.shared,
                epoch,
            ));
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.work.notify();
        for h in self.handles.lock().iter_mut() {
            if let Some(h) = h.take() {
                let _ = h.join();
            }
        }
    }
}

fn spawn_worker(
    id: usize,
    num_threads: usize,
    pool_id: usize,
    lane: usize,
    shared: &Arc<Shared>,
    start_epoch: u64,
) -> JoinHandle<()> {
    if mic_metrics::enabled() {
        mic_metrics::counter(
            "mic_pool_workers_spawned_total",
            "Pool worker threads started (initial spawns and respawns)",
            &[],
        )
        .inc();
    }
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("mic-worker-{id}"))
        .spawn(move || {
            crate::trace::set_lane(lane);
            worker_loop(id, num_threads, pool_id, shared, start_epoch)
        })
        .expect("failed to spawn pool worker")
}

/// Decrement `remaining` as the worker's last act for this region, waking
/// the submitter when this was the final worker.
fn finish_region(shared: &Shared) {
    if shared.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
        shared.done.notify();
    }
}

fn worker_loop(id: usize, num_threads: usize, pool_id: usize, shared: Arc<Shared>, start: u64) {
    let mut seen_epoch = start;
    loop {
        // Wait for a new region (or shutdown): spin, then park. The
        // Acquire epoch load pairs with the submitter's Release store and
        // licenses the job read below.
        shared.work.park_until(|| {
            shared.shutdown.load(Ordering::Acquire)
                || shared.epoch.load(Ordering::Acquire) > seen_epoch
        });
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        seen_epoch = shared.epoch.load(Ordering::Acquire);
        // SAFETY: the epoch Acquire load above observed the submitter's
        // Release store, which happens-after the job write; the slot is
        // not rewritten until this worker decrements `remaining`.
        let job = unsafe { *shared.job.get() }.expect("job published with region epoch");
        // Region-entry fault site: an installed hook may stall this worker,
        // panic it in place of the job, or kill the thread.
        let fault = crate::fault::check(&crate::fault::FaultSite {
            runtime: "pool",
            worker: id,
            index: seen_epoch,
        });
        if let Some(crate::fault::FaultAction::Die) = fault {
            if mic_obs::enabled() {
                mic_obs::flight::record(
                    mic_obs::flight::EventKind::WorkerDeath,
                    id as u64,
                    seen_epoch,
                    0,
                );
            }
            {
                let mut cold = shared.cold.lock();
                if cold.panic.is_none() {
                    cold.panic = Some(Box::new(format!(
                        "mic-fault: pool worker {id} died at region epoch {seen_epoch}"
                    )));
                }
                cold.dead.push(id);
            }
            finish_region(&shared);
            return;
        }
        if let Some(crate::fault::FaultAction::StallMs(ms)) = &fault {
            std::thread::sleep(std::time::Duration::from_millis(*ms));
        }
        let result = if let Some(crate::fault::FaultAction::Panic(msg)) = fault {
            // The injected panic replaces the job body for this worker.
            Err(Box::new(msg) as Box<dyn Any + Send>)
        } else {
            // SAFETY: `run` keeps the closure alive until `remaining` drops
            // to zero, which happens strictly after this call returns.
            let f = unsafe { &*job.0 };
            let outer = IN_REGION.with(|flag| flag.replace(Some((pool_id, id))));
            let trace_start = crate::trace::enabled().then(crate::trace::now_us);
            let result = panic::catch_unwind(AssertUnwindSafe(|| f(WorkerCtx { id, num_threads })));
            if let Some(t0) = trace_start {
                crate::trace::emit(crate::trace::NativeEvent {
                    runtime: "pool",
                    worker: id,
                    lane: crate::trace::current_lane(),
                    start_us: t0,
                    end_us: crate::trace::now_us(),
                    kind: crate::trace::NativeEventKind::Region { epoch: seen_epoch },
                });
            }
            IN_REGION.with(|flag| flag.set(outer));
            result
        };
        if let Err(p) = result {
            let mut cold = shared.cold.lock();
            if cold.panic.is_none() {
                cold.panic = Some(p);
            }
        }
        finish_region(&shared);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_worker_runs_once() {
        let pool = ThreadPool::new(8);
        let hits = AtomicUsize::new(0);
        let mask = AtomicUsize::new(0);
        pool.run(|ctx| {
            hits.fetch_add(1, Ordering::Relaxed);
            mask.fetch_or(1 << ctx.id, Ordering::Relaxed);
            assert_eq!(ctx.num_threads, 8);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 8);
        assert_eq!(mask.load(Ordering::Relaxed), 0xFF);
    }

    #[test]
    fn regions_are_sequential_and_reusable() {
        let pool = ThreadPool::new(4);
        let counter = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.run(|_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(counter.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn borrows_local_data() {
        let pool = ThreadPool::new(3);
        let data = [1u64, 2, 3];
        let sum = AtomicUsize::new(0);
        pool.run(|ctx| {
            sum.fetch_add(data[ctx.id] as usize, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn worker_panic_propagates() {
        let pool = ThreadPool::new(4);
        let r = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(|ctx| {
                if ctx.id == 2 {
                    panic!("boom from worker");
                }
            });
        }));
        assert!(r.is_err());
        // Pool still usable afterwards.
        let ok = AtomicUsize::new(0);
        pool.run(|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn same_pool_reentry_rejected() {
        let pool = ThreadPool::new(2);
        let pool_ref = &pool;
        let r = panic::catch_unwind(AssertUnwindSafe(|| {
            pool_ref.run(|ctx| {
                if ctx.id == 0 {
                    pool_ref.run(|_| {});
                }
            });
        }));
        assert!(r.is_err(), "same-pool re-entry must panic");
    }

    #[test]
    fn reentry_error_names_pool_and_worker() {
        let pool = ThreadPool::new(3);
        let pool_ref = &pool;
        let msg = parking_lot::Mutex::new(String::new());
        pool_ref.run(|ctx| {
            if ctx.id == 1 {
                let err = pool_ref
                    .try_run(|_| {})
                    .expect_err("same-pool try_run must be rejected");
                match err {
                    PoolError::Reentry { worker, .. } => assert_eq!(worker, 1),
                }
                *msg.lock() = err.to_string();
            }
        });
        let msg = msg.into_inner();
        assert!(msg.contains("worker 1"), "got: {msg}");
        assert!(msg.contains("epoch"), "got: {msg}");
        // And the pool is still healthy: rejection happened before any
        // region state changed.
        let hits = AtomicUsize::new(0);
        pool.run(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn cross_pool_nesting_allowed() {
        let outer = ThreadPool::new(2);
        let inner = ThreadPool::new(3);
        let hits = AtomicUsize::new(0);
        outer.run(|ctx| {
            if ctx.id == 0 {
                inner.run(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn single_worker_pool() {
        let pool = ThreadPool::new(1);
        let v = AtomicUsize::new(0);
        pool.run(|ctx| {
            assert_eq!(ctx.id, 0);
            v.store(7, Ordering::Relaxed);
        });
        assert_eq!(v.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn oversubscribed_pool() {
        // Far more workers than cores on this box; must still complete.
        let pool = ThreadPool::new(64);
        let hits = AtomicUsize::new(0);
        pool.run(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn park_spin_zero_still_dispatches() {
        // With no spin budget every wait parks immediately; regions must
        // still complete (exercises the park/notify slow path heavily).
        let before = crate::sync::park_spin();
        crate::sync::set_park_spin(0);
        let pool = ThreadPool::new(4);
        let counter = AtomicUsize::new(0);
        for _ in 0..25 {
            pool.run(|_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        crate::sync::set_park_spin(before);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }
}
