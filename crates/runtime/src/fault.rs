//! Fault-injection hook points for the runtime layer.
//!
//! The runtime crates sit below the experiment harness, so they cannot see
//! `MIC_FAULT` parsing or the seeded schedule — instead they expose one
//! process-global *hook*: a function consulted at every worker boundary
//! (pool region entry, loop chunk execution) that may order the worker to
//! stall, panic, or die. The `mic-eval` fault injector installs a hook
//! translating its deterministic schedule; with no hook installed every
//! boundary costs a single relaxed atomic load.
//!
//! Sites are identified structurally — which runtime shim, which worker,
//! which chunk/epoch index — so a seeded injector can make the *same*
//! decision for the same site on every run, independent of thread timing.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// What an injected fault makes the worker do.
#[derive(Clone, Debug)]
pub enum FaultAction {
    /// Panic with this message (caught and propagated like any job panic).
    Panic(String),
    /// Sleep this long before proceeding (a straggler / OS-noise model).
    StallMs(u64),
    /// The worker thread exits. Only meaningful at pool region entry — the
    /// pool records the loss and respawns the worker on its next region;
    /// at chunk sites `Die` degrades to a panic.
    Die,
}

/// Where a fault decision is being made.
#[derive(Clone, Copy, Debug)]
pub struct FaultSite {
    /// Which runtime shim asks ("pool", "omp", "cilk", "tbb").
    pub runtime: &'static str,
    /// Worker id within the pool.
    pub worker: usize,
    /// Stable position index: the region epoch for pool sites, the chunk's
    /// first iteration index for loop sites.
    pub index: u64,
}

/// The decision function: `None` = proceed normally.
pub type FaultHook = dyn Fn(&FaultSite) -> Option<FaultAction> + Send + Sync;

static ENABLED: AtomicBool = AtomicBool::new(false);

fn hook_slot() -> &'static RwLock<Option<Arc<FaultHook>>> {
    static SLOT: OnceLock<RwLock<Option<Arc<FaultHook>>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

/// Install a process-global fault hook (replacing any previous one).
pub fn install(hook: Arc<FaultHook>) {
    *hook_slot().write().unwrap_or_else(|e| e.into_inner()) = Some(hook);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Remove the hook; all boundaries go back to the single-load fast path.
pub fn clear() {
    ENABLED.store(false, Ordering::SeqCst);
    *hook_slot().write().unwrap_or_else(|e| e.into_inner()) = None;
}

/// Consult the hook for `site`. Fast path: one relaxed load when no hook
/// is installed.
#[inline]
pub fn check(site: &FaultSite) -> Option<FaultAction> {
    if !ENABLED.load(Ordering::Relaxed) {
        return None;
    }
    let guard = hook_slot().read().unwrap_or_else(|e| e.into_inner());
    guard.as_ref().and_then(|h| h(site))
}

/// Apply a fault decision at a *chunk* site: sleep or panic in place.
/// `Die` has no meaning mid-loop and degrades to a panic.
#[inline]
pub(crate) fn apply_chunk(runtime: &'static str, worker: usize, index: u64) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    match check(&FaultSite {
        runtime,
        worker,
        index,
    }) {
        None => {}
        Some(FaultAction::StallMs(ms)) => std::thread::sleep(std::time::Duration::from_millis(ms)),
        Some(FaultAction::Panic(msg)) => panic!("{msg}"),
        Some(FaultAction::Die) => {
            panic!("mic-fault: worker {worker} ordered to die at a {runtime} chunk boundary")
        }
    }
}

fn session_lock() -> &'static Mutex<()> {
    static SESSION: OnceLock<Mutex<()>> = OnceLock::new();
    SESSION.get_or_init(|| Mutex::new(()))
}

/// Run `f` with `hook` installed, serializing concurrent callers (the hook
/// is process-global) and restoring the previous hook afterwards — the
/// test-friendly scoped variant of [`install`].
pub fn with_hook<R>(hook: Arc<FaultHook>, f: impl FnOnce() -> R) -> R {
    let _session = session_lock().lock().unwrap_or_else(|e| e.into_inner());
    let previous = hook_slot()
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .clone();
    install(hook);
    let result = f();
    match previous {
        Some(h) => install(h),
        None => clear(),
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn no_hook_means_no_faults() {
        assert!(check(&FaultSite {
            runtime: "omp",
            worker: 0,
            index: 0,
        })
        .is_none());
    }

    #[test]
    fn scoped_hook_fires_and_unwinds() {
        let hits = Arc::new(AtomicUsize::new(0));
        let hits2 = Arc::clone(&hits);
        with_hook(
            Arc::new(move |site: &FaultSite| {
                hits2.fetch_add(1, Ordering::Relaxed);
                assert_eq!(site.runtime, "tbb");
                Some(FaultAction::StallMs(0))
            }),
            || {
                let act = check(&FaultSite {
                    runtime: "tbb",
                    worker: 3,
                    index: 64,
                });
                assert!(matches!(act, Some(FaultAction::StallMs(0))));
            },
        );
        assert_eq!(hits.load(Ordering::Relaxed), 1);
        assert!(check(&FaultSite {
            runtime: "tbb",
            worker: 3,
            index: 64,
        })
        .is_none());
    }
}
