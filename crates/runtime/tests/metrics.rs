//! Metrics emitted by the native runtime layer: pool lifecycle counters,
//! per-schedule chunk latency histograms, steal counters with victim
//! labels. Every test serializes through `mic_metrics::with_session`
//! because metrics enablement is process-global.

use mic_runtime::{
    cilk_for, parallel_for_chunks, tbb_parallel_for, Partitioner, Schedule, ThreadPool,
};
use std::sync::atomic::{AtomicUsize, Ordering};

#[test]
fn pool_lifecycle_and_region_counters() {
    let ((), snap) = mic_metrics::with_session(|| {
        let pool = ThreadPool::new(4);
        for _ in 0..3 {
            pool.run(|_| {});
        }
    });
    assert_eq!(snap.value("mic_pool_workers_spawned_total", &[]), Some(4.0));
    assert_eq!(snap.value("mic_pool_regions_total", &[]), Some(3.0));
    // No faults injected, so no respawns were recorded (the counter may
    // not even exist — both spellings of zero are acceptable).
    let respawns = snap
        .value("mic_pool_workers_respawned_total", &[])
        .unwrap_or(0.0);
    assert_eq!(respawns, 0.0);
}

#[test]
fn chunk_histograms_are_labeled_per_schedule_and_count_chunks() {
    let n = 1000;
    let schedules = [
        (Schedule::Static { chunk: Some(64) }, "static"),
        (Schedule::Dynamic { chunk: 64 }, "dynamic"),
        (Schedule::Guided { min_chunk: 16 }, "guided"),
    ];
    let (chunk_counts, snap) = mic_metrics::with_session(|| {
        let pool = ThreadPool::new(4);
        schedules.map(|(sched, _)| {
            let chunks = AtomicUsize::new(0);
            parallel_for_chunks(&pool, 0..n, sched, |_, _| {
                chunks.fetch_add(1, Ordering::Relaxed);
            });
            chunks.into_inner() as f64
        })
    });
    for ((_, label), expect) in schedules.iter().zip(chunk_counts) {
        let labels = [("runtime", "omp"), ("sched", *label)];
        assert_eq!(
            snap.value("mic_runtime_chunks_total", &labels),
            Some(expect),
            "omp/{label}"
        );
        let h = snap
            .hist("mic_runtime_chunk_seconds", &labels)
            .unwrap_or_else(|| panic!("missing histogram for omp/{label}"));
        assert_eq!(
            h.count as f64, expect,
            "histogram count must equal the chunk counter for omp/{label}"
        );
        assert!(h.sum >= 0.0);
    }
    assert!(snap.self_check().is_empty(), "{:?}", snap.self_check());
}

#[test]
fn work_stealing_runtimes_record_labeled_chunks_and_valid_steals() {
    let ((), snap) = mic_metrics::with_session(|| {
        let pool = ThreadPool::new(4);
        cilk_for(&pool, 0..2000, 32, |_, _| {
            std::hint::black_box(0);
        });
        tbb_parallel_for(&pool, 0..2000, Partitioner::Auto, |_, _| {
            std::hint::black_box(0);
        });
        tbb_parallel_for(&pool, 0..2000, Partitioner::Affinity, |_, _| {});
    });
    for (runtime, sched) in [("cilk", "simple"), ("tbb", "auto"), ("tbb", "affinity")] {
        let labels = [("runtime", runtime), ("sched", sched)];
        let chunks = snap.value("mic_runtime_chunks_total", &labels).unwrap();
        assert!(chunks > 0.0, "{runtime}/{sched} recorded no chunks");
        let h = snap.hist("mic_runtime_chunk_seconds", &labels).unwrap();
        assert_eq!(h.count as f64, chunks, "{runtime}/{sched}");
    }
    // Steals are timing-dependent; any that were recorded must carry a
    // parseable victim label (worker id or "unknown").
    for (victim, count) in snap.by_label("mic_runtime_steals_total", "victim") {
        assert!(count >= 1.0);
        assert!(
            victim == "unknown" || victim.parse::<usize>().is_ok(),
            "bad victim label {victim:?}"
        );
    }
    assert!(snap.self_check().is_empty(), "{:?}", snap.self_check());
}

#[test]
fn metrics_do_not_perturb_results() {
    let n = 10_000;
    let run = || {
        let pool = ThreadPool::new(4);
        let sum = std::sync::atomic::AtomicU64::new(0);
        parallel_for_chunks(&pool, 0..n, Schedule::Dynamic { chunk: 100 }, |r, _| {
            sum.fetch_add(r.map(|i| i as u64).sum::<u64>(), Ordering::Relaxed);
        });
        sum.into_inner()
    };
    let off = run();
    let (on, _snap) = mic_metrics::with_session(run);
    assert_eq!(off, on);
}
