//! Failure injection: a panicking body anywhere in any construct must (a)
//! propagate to the caller as a panic, (b) never deadlock sibling workers,
//! and (c) leave the pool reusable.

use mic_runtime::{
    cilk_for, parallel_for, run_pipeline, tbb_parallel_for, Partitioner, Schedule, Stage,
    ThreadPool,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

fn assert_pool_still_works(pool: &ThreadPool) {
    let hits = AtomicUsize::new(0);
    parallel_for(pool, 0..100, Schedule::Dynamic { chunk: 7 }, |_, _| {
        hits.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(
        hits.load(Ordering::Relaxed),
        100,
        "pool must be reusable after a panic"
    );
}

#[test]
fn panic_in_openmp_body_propagates() {
    let pool = ThreadPool::new(4);
    for sched in [
        Schedule::Static { chunk: None },
        Schedule::Static { chunk: Some(8) },
        Schedule::Dynamic { chunk: 16 },
        Schedule::Guided { min_chunk: 4 },
    ] {
        let r = catch_unwind(AssertUnwindSafe(|| {
            parallel_for(&pool, 0..1000, sched, |i, _| {
                if i == 457 {
                    panic!("injected");
                }
            });
        }));
        assert!(r.is_err(), "{sched:?} must propagate the panic");
        assert_pool_still_works(&pool);
    }
}

#[test]
fn panic_in_cilk_body_does_not_deadlock() {
    let pool = ThreadPool::new(6);
    for _ in 0..3 {
        let r = catch_unwind(AssertUnwindSafe(|| {
            cilk_for(&pool, 0..10_000, 16, |chunk, _| {
                if chunk.contains(&5000) {
                    panic!("injected");
                }
            });
        }));
        assert!(r.is_err());
        assert_pool_still_works(&pool);
    }
}

#[test]
fn panic_in_tbb_bodies_does_not_deadlock() {
    let pool = ThreadPool::new(6);
    for part in [
        Partitioner::Simple { grain: 8 },
        Partitioner::Auto,
        Partitioner::Affinity,
    ] {
        let r = catch_unwind(AssertUnwindSafe(|| {
            tbb_parallel_for(&pool, 0..5000, part, |chunk, _| {
                if chunk.contains(&2500) {
                    panic!("injected");
                }
            });
        }));
        assert!(r.is_err(), "{part:?}");
        assert_pool_still_works(&pool);
    }
}

#[test]
fn panic_in_pipeline_stage_propagates() {
    let pool = ThreadPool::new(4);
    let mut produced = 0u64;
    let r = catch_unwind(AssertUnwindSafe(|| {
        run_pipeline(
            &pool,
            move || {
                produced += 1;
                if produced <= 50 {
                    Some(produced)
                } else {
                    None
                }
            },
            vec![Stage::parallel(|v: u64| {
                if v == 25 {
                    panic!("injected");
                }
                v
            })],
            |_| {},
            8,
        );
    }));
    assert!(r.is_err(), "pipeline must propagate a stage panic");
    assert_pool_still_works(&pool);
}

#[test]
fn repeated_panics_do_not_poison_anything() {
    // Hammer the pool with alternating panicking and clean regions.
    let pool = ThreadPool::new(4);
    for round in 0..10 {
        let r = catch_unwind(AssertUnwindSafe(|| {
            parallel_for(&pool, 0..200, Schedule::Dynamic { chunk: 3 }, |i, _| {
                if i == round * 13 {
                    panic!("round {round}");
                }
            });
        }));
        assert!(r.is_err());
    }
    assert_pool_still_works(&pool);
}
