//! Failure injection: a panicking body anywhere in any construct must (a)
//! propagate to the caller as a panic, (b) never deadlock sibling workers,
//! and (c) leave the pool reusable.

use mic_runtime::{
    cilk_for, fault, parallel_for, run_pipeline, tbb_parallel_for, FaultAction, FaultSite,
    Partitioner, Schedule, Stage, ThreadPool,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn assert_pool_still_works(pool: &ThreadPool) {
    let hits = AtomicUsize::new(0);
    parallel_for(pool, 0..100, Schedule::Dynamic { chunk: 7 }, |_, _| {
        hits.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(
        hits.load(Ordering::Relaxed),
        100,
        "pool must be reusable after a panic"
    );
}

#[test]
fn panic_in_openmp_body_propagates() {
    let pool = ThreadPool::new(4);
    for sched in [
        Schedule::Static { chunk: None },
        Schedule::Static { chunk: Some(8) },
        Schedule::Dynamic { chunk: 16 },
        Schedule::Guided { min_chunk: 4 },
    ] {
        let r = catch_unwind(AssertUnwindSafe(|| {
            parallel_for(&pool, 0..1000, sched, |i, _| {
                if i == 457 {
                    panic!("injected");
                }
            });
        }));
        assert!(r.is_err(), "{sched:?} must propagate the panic");
        assert_pool_still_works(&pool);
    }
}

#[test]
fn panic_in_cilk_body_does_not_deadlock() {
    let pool = ThreadPool::new(6);
    for _ in 0..3 {
        let r = catch_unwind(AssertUnwindSafe(|| {
            cilk_for(&pool, 0..10_000, 16, |chunk, _| {
                if chunk.contains(&5000) {
                    panic!("injected");
                }
            });
        }));
        assert!(r.is_err());
        assert_pool_still_works(&pool);
    }
}

#[test]
fn panic_in_tbb_bodies_does_not_deadlock() {
    let pool = ThreadPool::new(6);
    for part in [
        Partitioner::Simple { grain: 8 },
        Partitioner::Auto,
        Partitioner::Affinity,
    ] {
        let r = catch_unwind(AssertUnwindSafe(|| {
            tbb_parallel_for(&pool, 0..5000, part, |chunk, _| {
                if chunk.contains(&2500) {
                    panic!("injected");
                }
            });
        }));
        assert!(r.is_err(), "{part:?}");
        assert_pool_still_works(&pool);
    }
}

#[test]
fn panic_in_pipeline_stage_propagates() {
    let pool = ThreadPool::new(4);
    let mut produced = 0u64;
    let r = catch_unwind(AssertUnwindSafe(|| {
        run_pipeline(
            &pool,
            move || {
                produced += 1;
                if produced <= 50 {
                    Some(produced)
                } else {
                    None
                }
            },
            vec![Stage::parallel(|v: u64| {
                if v == 25 {
                    panic!("injected");
                }
                v
            })],
            |_| {},
            8,
        );
    }));
    assert!(r.is_err(), "pipeline must propagate a stage panic");
    assert_pool_still_works(&pool);
}

#[test]
fn injected_chunk_panic_propagates_and_pool_survives() {
    let pool = ThreadPool::new(4);
    fault::with_hook(
        Arc::new(|site: &FaultSite| {
            (site.runtime == "omp" && site.index == 64)
                .then(|| FaultAction::Panic("injected chunk fault".into()))
        }),
        || {
            let r = catch_unwind(AssertUnwindSafe(|| {
                parallel_for(&pool, 0..1000, Schedule::Dynamic { chunk: 64 }, |_, _| {});
            }));
            assert!(r.is_err(), "chunk fault must propagate as a panic");
        },
    );
    assert_pool_still_works(&pool);
}

#[test]
fn injected_chunk_stall_changes_nothing_but_timing() {
    let pool = ThreadPool::new(4);
    let hits = AtomicUsize::new(0);
    fault::with_hook(
        Arc::new(|site: &FaultSite| (site.runtime == "omp").then_some(FaultAction::StallMs(1))),
        || {
            parallel_for(&pool, 0..100, Schedule::Dynamic { chunk: 25 }, |_, _| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        },
    );
    assert_eq!(hits.load(Ordering::Relaxed), 100);
}

#[test]
fn dead_worker_is_reported_then_respawned() {
    let pool = ThreadPool::new(4);
    let killed = Arc::new(AtomicUsize::new(0));
    // First region under the hook: worker 2 dies exactly once. `run` must
    // report the loss as a panic rather than completing silently.
    fault::with_hook(
        Arc::new({
            let killed = Arc::clone(&killed);
            move |site: &FaultSite| {
                if site.runtime == "pool"
                    && site.worker == 2
                    && killed
                        .compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                {
                    Some(FaultAction::Die)
                } else {
                    None
                }
            }
        }),
        || {
            let r = catch_unwind(AssertUnwindSafe(|| {
                pool.run(|_| {});
            }));
            let msg = *r
                .expect_err("worker death must surface as a panic")
                .downcast::<String>()
                .expect("death payload is a message");
            assert!(msg.contains("worker 2"), "got: {msg}");
            // Next region: the pool respawns the dead worker and runs at
            // full strength again instead of deadlocking.
            let hits = AtomicUsize::new(0);
            let mask = AtomicUsize::new(0);
            pool.run(|ctx| {
                hits.fetch_add(1, Ordering::Relaxed);
                mask.fetch_or(1 << ctx.id, Ordering::Relaxed);
            });
            assert_eq!(hits.load(Ordering::Relaxed), 4);
            assert_eq!(mask.load(Ordering::Relaxed), 0xF, "all ids participate");
        },
    );
    assert_eq!(killed.load(Ordering::Relaxed), 1);
    assert_pool_still_works(&pool);
}

#[test]
fn repeated_panics_do_not_poison_anything() {
    // Hammer the pool with alternating panicking and clean regions.
    let pool = ThreadPool::new(4);
    for round in 0..10 {
        let r = catch_unwind(AssertUnwindSafe(|| {
            parallel_for(&pool, 0..200, Schedule::Dynamic { chunk: 3 }, |i, _| {
                if i == round * 13 {
                    panic!("round {round}");
                }
            });
        }));
        assert!(r.is_err());
    }
    assert_pool_still_works(&pool);
}
