//! Property-based tests of the scheduling constructs: every policy must
//! partition any range exactly, and the concurrent containers must never
//! lose or duplicate elements.

use mic_runtime::{
    cilk_for, parallel_for_chunks, tbb_parallel_for, BlockQueue, ConcurrentPushVec, Partitioner,
    Schedule, ThreadPool,
};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

fn arb_schedule() -> impl Strategy<Value = Schedule> {
    prop_oneof![
        Just(Schedule::Static { chunk: None }),
        (1usize..200).prop_map(|c| Schedule::Static { chunk: Some(c) }),
        (1usize..200).prop_map(|c| Schedule::Dynamic { chunk: c }),
        (1usize..100).prop_map(|c| Schedule::Guided { min_chunk: c }),
    ]
}

fn arb_partitioner() -> impl Strategy<Value = Partitioner> {
    prop_oneof![
        (1usize..200).prop_map(|g| Partitioner::Simple { grain: g }),
        Just(Partitioner::Auto),
        Just(Partitioner::Affinity),
    ]
}

fn check_exact_cover(hits: &[AtomicUsize]) -> Result<(), TestCaseError> {
    for (i, h) in hits.iter().enumerate() {
        let c = h.load(Ordering::Relaxed);
        prop_assert!(c == 1, "index {i} visited {c} times");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn openmp_covers_exactly(n in 0usize..3000, t in 1usize..9, sched in arb_schedule()) {
        let pool = ThreadPool::new(t);
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        parallel_for_chunks(&pool, 0..n, sched, |r, _| {
            for i in r {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        check_exact_cover(&hits)?;
    }

    #[test]
    fn cilk_covers_exactly(n in 0usize..3000, t in 1usize..9, grain in 1usize..300) {
        let pool = ThreadPool::new(t);
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        cilk_for(&pool, 0..n, grain, |r, _| {
            for i in r {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        check_exact_cover(&hits)?;
    }

    #[test]
    fn tbb_covers_exactly(n in 0usize..3000, t in 1usize..9, part in arb_partitioner()) {
        let pool = ThreadPool::new(t);
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        tbb_parallel_for(&pool, 0..n, part, |r, _| {
            for i in r {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        check_exact_cover(&hits)?;
    }

    #[test]
    fn push_vec_is_a_multiset(n in 0usize..2000, t in 1usize..8) {
        let pool = ThreadPool::new(t);
        let cv: ConcurrentPushVec<usize> = ConcurrentPushVec::new(n);
        parallel_for_chunks(&pool, 0..n, Schedule::Dynamic { chunk: 13 }, |r, _| {
            for i in r {
                cv.push(i);
            }
        });
        let mut cv = cv;
        let mut got = cv.drain();
        got.sort_unstable();
        let want: Vec<usize> = (0..n).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn block_queue_is_a_multiset(
        n in 0usize..3000,
        t in 1usize..8,
        block in 1usize..100,
    ) {
        let pool = ThreadPool::new(t);
        let q: BlockQueue<u32> = BlockQueue::with_writers(n, block, t, u32::MAX);
        let qr = &q;
        pool.run(|ctx| {
            let mut w = qr.writer();
            let mut i = ctx.id;
            while i < n {
                w.push(i as u32);
                i += ctx.num_threads;
            }
        });
        let mut q = q;
        let mut got = q.items();
        got.sort_unstable();
        let want: Vec<u32> = (0..n as u32).collect();
        prop_assert_eq!(got, want);
        // Sentinel accounting: raw slots are item count plus padding,
        // bounded by one block per writer.
        prop_assert!(q.raw_len() >= n);
        prop_assert!(q.raw_len() <= n + t * block);
    }
}
